#!/usr/bin/env python3
"""Post-mapping optimization: gate sizing and fanout buffering.

Maps a benchmark design onto the sky130-lite library, prints its timing
report, then runs the post-mapping optimizer and shows what changed: which
cells were up/down-sized, how many buffers were inserted, and how the maximum
delay and total area moved.  Finally the optimized netlist is exported as
mapped Verilog and Graphviz DOT next to this script.

Run with:  python examples/postmap_optimization.py [DESIGN]
"""

import sys
from pathlib import Path

from repro.designs import build_design
from repro.io import write_mapped_verilog, write_netlist_dot
from repro.library import load_sky130_lite
from repro.mapping import PostMappingOptimizer, PostOptOptions, TechnologyMapper
from repro.sta import analyze_timing, format_cell_usage, format_timing_report


def main() -> None:
    design = sys.argv[1] if len(sys.argv) > 1 else "EX08"
    library = load_sky130_lite()

    aig = build_design(design)
    print(f"design {aig.name}: {aig.num_ands} AND nodes, depth {aig.depth()}")

    netlist = TechnologyMapper(library).map(aig)
    timing = analyze_timing(netlist, po_load_ff=library.po_load_ff)
    print(f"\n=== mapped netlist ({netlist.num_gates} gates) ===")
    print(format_timing_report(netlist, timing))
    print()
    print(format_cell_usage(netlist))

    optimizer = PostMappingOptimizer(library, PostOptOptions(max_passes=3))
    optimized, report = optimizer.optimize(netlist)
    optimized_timing = analyze_timing(optimized, po_load_ff=library.po_load_ff)

    print("\n=== after post-mapping optimization ===")
    print(format_timing_report(optimized, optimized_timing))
    print()
    print(format_cell_usage(optimized))
    print()
    print(f"delay: {report.delay_before_ps:.1f} ps -> {report.delay_after_ps:.1f} ps "
          f"({report.delay_improvement_percent:+.2f}%)")
    print(f"area : {report.area_before_um2:.1f} -> {report.area_after_um2:.1f} um^2 "
          f"({report.area_change_percent:+.2f}%)")
    print(f"moves: {report.upsized_gates} upsized, {report.downsized_gates} downsized, "
          f"{report.buffers_inserted} buffers, {report.passes_run} passes")

    out_dir = Path(__file__).parent
    verilog_path = out_dir / f"{design.lower()}_postopt.v"
    dot_path = out_dir / f"{design.lower()}_postopt.dot"
    write_mapped_verilog(optimized, verilog_path)
    write_netlist_dot(optimized, dot_path, timing=optimized_timing)
    print(f"\nwrote {verilog_path.name} and {dot_path.name} (critical path highlighted)")


if __name__ == "__main__":
    main()
