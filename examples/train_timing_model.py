#!/usr/bin/env python3
"""Train the post-mapping delay predictor (the paper's Table III pipeline).

Generates labelled AIG variants for the training designs through a
:class:`repro.api.SynthesisSession` (cached, optionally parallel), fits the
gradient-boosted model, evaluates it on designs it has never seen, and saves
the trained model to JSON.

Run with:  python examples/train_timing_model.py [--samples N] [--full]

``--full`` uses all eight EXxx designs (slower); the default uses a reduced
design set so the example finishes in about a minute.
"""

import argparse
from pathlib import Path

from repro.api import SynthesisSession
from repro.experiments.report import format_table
from repro.ml import GbdtParams, GradientBoostingRegressor, percent_error_stats, save_gbdt


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=20, help="AIG variants per design")
    parser.add_argument("--full", action="store_true", help="use all eight EXxx designs")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--workers", type=int, default=None,
                        help="labelling process-pool size (default: serial)")
    parser.add_argument(
        "--output", type=Path, default=Path("delay_model.json"), help="model output path"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.full:
        train_designs = ["EX00", "EX08", "EX28", "EX68"]
        test_designs = ["EX02", "EX11", "EX16", "EX54"]
    else:
        train_designs = ["EX00", "EX68"]
        test_designs = ["EX02"]

    session = SynthesisSession(parallel_workers=args.workers)
    print(f"generating {args.samples} labelled variants for "
          f"{len(train_designs) + len(test_designs)} designs ...")
    corpora = session.generate_corpora(
        train_designs + test_designs, samples=args.samples, seed=args.seed
    )
    dataset = session.build_dataset(corpora)
    print(dataset.summary())

    train = dataset.for_designs(train_designs)
    model = GradientBoostingRegressor(
        GbdtParams(n_estimators=300, learning_rate=0.06, max_depth=6, subsample=0.8),
        rng=args.seed,
    )
    print(f"training on {len(train)} samples ...")
    model.fit(train.features, train.labels)
    session.models.register("delay", model)

    rows = []
    for design, corpus in corpora.items():
        stats = percent_error_stats(corpus.delays_ps, model.predict(corpus.features))
        role = "train" if design in train_designs else "test"
        rows.append((role, design, f"{stats.mean:.2f}%", f"{stats.max:.2f}%", f"{stats.std:.2f}%"))
    print()
    print(format_table(["role", "design", "mean %err", "max %err", "std %err"], rows,
                       title="Delay-prediction accuracy (cf. paper Table III)"))

    importance = model.feature_importance()
    names = dataset.feature_names
    top = sorted(zip(names, importance), key=lambda item: -item[1])[:8]
    print()
    print(format_table(["feature", "importance"], top, title="Top feature importances"))

    cache = session.cache_stats
    if cache is not None:
        print(f"\nlabelling cache: {cache.hits} hits / {cache.misses} misses")

    save_gbdt(model, args.output)
    print(f"model saved to {args.output}")
    session.close()


if __name__ == "__main__":
    main()
