#!/usr/bin/env python3
"""Train the post-mapping delay predictor (the paper's Table III pipeline).

Generates labelled AIG variants for the training designs, fits the
gradient-boosted model, evaluates it on designs it has never seen, and saves
the trained model to JSON.

Run with:  python examples/train_timing_model.py [--samples N] [--full]

``--full`` uses all eight EXxx designs (slower); the default uses a reduced
design set so the example finishes in about a minute.
"""

import argparse
from pathlib import Path

from repro.datagen import DatasetGenerator, GenerationConfig
from repro.experiments.report import format_table
from repro.ml import GbdtParams, GradientBoostingRegressor, percent_error_stats, save_gbdt


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=20, help="AIG variants per design")
    parser.add_argument("--full", action="store_true", help="use all eight EXxx designs")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--output", type=Path, default=Path("delay_model.json"), help="model output path"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.full:
        train_designs = ["EX00", "EX08", "EX28", "EX68"]
        test_designs = ["EX02", "EX11", "EX16", "EX54"]
    else:
        train_designs = ["EX00", "EX68"]
        test_designs = ["EX02"]

    generator = DatasetGenerator(
        GenerationConfig(samples_per_design=args.samples, seed=args.seed)
    )
    print(f"generating {args.samples} labelled variants for "
          f"{len(train_designs) + len(test_designs)} designs ...")
    corpora = generator.generate(train_designs + test_designs, rng=args.seed)
    dataset = generator.to_dataset(corpora)
    print(dataset.summary())

    train = dataset.for_designs(train_designs)
    model = GradientBoostingRegressor(
        GbdtParams(n_estimators=300, learning_rate=0.06, max_depth=6, subsample=0.8),
        rng=args.seed,
    )
    print(f"training on {len(train)} samples ...")
    model.fit(train.features, train.labels)

    rows = []
    for design, corpus in corpora.items():
        stats = percent_error_stats(corpus.delays_ps, model.predict(corpus.features))
        role = "train" if design in train_designs else "test"
        rows.append((role, design, f"{stats.mean:.2f}%", f"{stats.max:.2f}%", f"{stats.std:.2f}%"))
    print()
    print(format_table(["role", "design", "mean %err", "max %err", "std %err"], rows,
                       title="Delay-prediction accuracy (cf. paper Table III)"))

    importance = model.feature_importance()
    names = generator.extractor.feature_names
    top = sorted(zip(names, importance), key=lambda item: -item[1])[:8]
    print()
    print(format_table(["feature", "importance"], top, title="Top feature importances"))

    save_gbdt(model, args.output)
    print(f"\nmodel saved to {args.output}")


if __name__ == "__main__":
    main()
