#!/usr/bin/env python3
"""Predicting post-mapping area (the abstract's secondary target).

The paper's evaluation tables focus on delay, but the same Table II features
predict post-mapping area as well — and much better than the AND-node-count
proxy the baseline flow uses.  This example trains delay and area models on
two small designs, evaluates both on a design the models never saw, and
prints the paper-style error statistics plus the gain-based feature ranking
for each target.

Run with:  python examples/area_prediction.py
"""

import numpy as np

from repro.datagen import DatasetGenerator, GenerationConfig
from repro.ml import (
    GbdtParams,
    GradientBoostingRegressor,
    ensemble_importance,
    percent_error_stats,
)


def main() -> None:
    train_designs = ["EX68", "EX00"]
    test_design = "EX02"
    samples = 14

    print(f"labelling {samples} AIG variants for {train_designs + [test_design]} ...")
    generator = DatasetGenerator(GenerationConfig(samples_per_design=samples, seed=3))
    corpora = generator.generate(train_designs + [test_design], rng=3)
    dataset = generator.to_dataset(corpora)
    train = dataset.for_designs(train_designs)

    params = GbdtParams(n_estimators=150, learning_rate=0.08, max_depth=5)
    delay_model = GradientBoostingRegressor(params, rng=0)
    delay_model.fit(train.features, train.labels)
    area_model = GradientBoostingRegressor(params, rng=1)
    area_model.fit(train.features, np.asarray(train.areas))

    test_corpus = corpora[test_design]
    delay_stats = percent_error_stats(
        test_corpus.delays_ps, delay_model.predict(test_corpus.features)
    )
    area_stats = percent_error_stats(
        test_corpus.areas_um2, area_model.predict(test_corpus.features)
    )

    # The conventional proxy: area proportional to the AND-node count.
    train_nodes = np.array(
        [aig.num_ands for d in train_designs for aig in corpora[d].aigs], dtype=float
    )
    train_areas = np.asarray(train.areas)
    area_per_and = float(np.sum(train_nodes * train_areas) / np.sum(train_nodes**2))
    proxy_pred = np.array([aig.num_ands for aig in test_corpus.aigs]) * area_per_and
    proxy_stats = percent_error_stats(test_corpus.areas_um2, proxy_pred)

    print(f"\nunseen design {test_design}:")
    print(f"  delay model : mean %err {delay_stats.mean:5.2f}  max {delay_stats.max:5.2f}")
    print(f"  area  model : mean %err {area_stats.mean:5.2f}  max {area_stats.max:5.2f}")
    print(f"  area  proxy : mean %err {proxy_stats.mean:5.2f}  "
          f"(node count x {area_per_and:.2f} um^2)")

    names = dataset.feature_names
    print("\ntop-5 features for delay prediction (gain importance):")
    for name in ensemble_importance(delay_model, len(names), names).top(5):
        print(f"  {name}")
    print("\ntop-5 features for area prediction (gain importance):")
    for name in ensemble_importance(area_model, len(names), names).top(5):
        print(f"  {name}")


if __name__ == "__main__":
    main()
