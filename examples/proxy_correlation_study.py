#!/usr/bin/env python3
"""Reproduce the paper's motivation study (Fig. 1 and Table I).

Generates perturbed variants of a multiplier design, maps and times every
variant, and reports (a) the Pearson correlation between AIG levels and the
post-mapping delay, and (b) pairs of AIGs that are indistinguishable by the
proxy metrics yet differ in true delay.

Run with:  python examples/proxy_correlation_study.py [--samples 40]
"""

import argparse

from repro.datagen import DatasetGenerator, GenerationConfig
from repro.designs import build_design
from repro.experiments import run_fig1_correlation, run_table1_proxy_ties


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=40, help="AIG variants to generate")
    parser.add_argument("--design", default="mult")
    parser.add_argument("--seed", type=int, default=1)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    generator = DatasetGenerator(
        GenerationConfig(samples_per_design=args.samples, seed=args.seed)
    )
    corpus = generator.generate_for_aig(args.design, build_design(args.design), rng=args.seed)

    fig1 = run_fig1_correlation(design=args.design, samples=args.samples, seed=args.seed,
                                generator=generator)
    print(fig1.format_table())
    print()
    print("scatter data (level, post-mapping delay ps):")
    for level, delay in sorted(fig1.scatter_points()):
        print(f"  {level:6.0f}  {delay:10.1f}")
    print()

    table1 = run_table1_proxy_ties(corpus=corpus)
    print(table1.format_table())


if __name__ == "__main__":
    main()
