#!/usr/bin/env python3
"""Hyperparameter grid search for the delay predictor.

The paper chooses its XGBoost settings (learning rate, tree depth, estimator
count, subsampling ratio) by grid search; this example reproduces that step
at small scale with the library's model-agnostic tuning utilities: k-fold
cross-validated grid search over the GBDT hyperparameters, followed by a
final fit with the winning configuration and an unseen-design check.

Run with:  python examples/hyperparameter_tuning.py
"""

from repro.datagen import DatasetGenerator, GenerationConfig
from repro.ml import (
    GbdtParams,
    GradientBoostingRegressor,
    grid_search_gbdt,
    percent_error_stats,
)


def main() -> None:
    train_designs = ["EX68", "EX00"]
    test_design = "EX02"

    print("labelling variants ...")
    generator = DatasetGenerator(GenerationConfig(samples_per_design=14, seed=4))
    corpora = generator.generate(train_designs + [test_design], rng=4)
    dataset = generator.to_dataset(corpora)
    train = dataset.for_designs(train_designs)

    grid = {
        "max_depth": [3, 5],
        "learning_rate": [0.05, 0.15],
        "subsample": [0.8],
    }
    print(f"grid-searching {2 * 2 * 1} GBDT configurations with 3-fold CV ...")
    search = grid_search_gbdt(
        grid,
        train.features,
        train.labels,
        base_params=GbdtParams(n_estimators=120),
        k=3,
        rng=0,
    )
    print()
    print(search.format_table())
    print(f"\nbest configuration: {search.best_params} (CV RMSE {search.best_score:.2f} ps)")

    final_params = GbdtParams(n_estimators=120, **search.best_params)
    model = GradientBoostingRegressor(final_params, rng=0)
    model.fit(train.features, train.labels)

    test_corpus = corpora[test_design]
    stats = percent_error_stats(
        test_corpus.delays_ps, model.predict(test_corpus.features)
    )
    print(f"\nunseen design {test_design}: mean %err {stats.mean:.2f}, "
          f"max %err {stats.max:.2f}, std {stats.std:.2f}")


if __name__ == "__main__":
    main()
