#!/usr/bin/env python3
"""Submit an optimization job to the synthesis service and poll it to done.

Boots ``repro serve`` as a subprocess on a free port, submits a tiny BENCH
netlist through :class:`repro.service.ServiceClient`, waits for the result,
then demonstrates the service's dedup/cache contract: resubmitting the
byte-identical job returns the finished result immediately, with zero new
cell executions and zero new ground-truth evaluations (the counters are
asserted, not just printed).

The job store directory (``REPRO_SERVICE_STORE``, default
``service-store-demo``) survives the server — restart it later and the
same job id still serves from cache.

Run with:  python examples/submit_job.py
"""

import os
import subprocess
import sys

from repro.service import ServiceClient

BENCH = """\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
g = AND(a, b)
f = OR(g, c)
"""


def main() -> None:
    store = os.environ.get("REPRO_SERVICE_STORE", "service-store-demo")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "1",
         "--store", store],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        boot = server.stdout.readline().strip()
        url = boot.split("listening on ", 1)[1]
        print(f"server up at {url} (store: {store})")
        client = ServiceClient(url)
        print(f"health: {client.healthz()['status']}")

        job = client.submit(BENCH, "bench", flow="baseline", optimizer="sa",
                            iterations=6, seed=7)
        created = "created" if job["_status"] == 201 else "deduplicated"
        print(f"submitted job {job['job_id']} ({created}, state={job['state']})")

        record = client.wait(job["job_id"], timeout=300)
        print(
            f"done: delay {record['initial_delay_ps']:.1f} -> "
            f"{record['final_delay_ps']:.1f} ps, area "
            f"{record['initial_area_um2']:.2f} -> {record['final_area_um2']:.2f} um2 "
            f"({record['evaluations']} evaluations)"
        )

        before = client.stats()
        again = client.submit(BENCH, "bench", flow="baseline", optimizer="sa",
                              iterations=6, seed=7)
        after = client.stats()
        assert again["job_id"] == job["job_id"], "identical submission changed id"
        assert again["_status"] == 200 and again["state"] == "done"
        assert after["executed_cells"] == before["executed_cells"], (
            "resubmission executed a new cell"
        )
        assert (
            after["evaluations"]["cache_misses"]
            == before["evaluations"]["cache_misses"]
        ), "resubmission cost new ground-truth evaluations"
        print(
            "resubmitted identical job: served from cache, "
            "0 new cells, 0 new ground-truth evaluations"
        )
        print(f"service stats: {after['jobs']}")
    finally:
        server.terminate()
        server.wait(timeout=30)


if __name__ == "__main__":
    main()
