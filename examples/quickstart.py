#!/usr/bin/env python3
"""Quickstart: build a design, optimize it, map it, and time it.

This walks through the core objects of the library in ~40 lines:

1. build a benchmark AIG (a stand-in for the paper's IWLS designs),
2. look at the proxy metrics the baseline flow optimizes (depth, node count),
3. apply an ABC-style transformation script,
4. run technology mapping + static timing analysis (the ground truth),
5. extract the Table II features and predict delay with a freshly trained
   (tiny) model.

Run with:  python examples/quickstart.py
"""

from repro.datagen import DatasetGenerator, GenerationConfig
from repro.designs import build_design
from repro.evaluation import evaluate_aig
from repro.features import FeatureExtractor
from repro.ml import GbdtParams, GradientBoostingRegressor, percent_error_stats
from repro.sta import format_timing_report
from repro.transforms import apply_script


def main() -> None:
    # 1. Build a benchmark design (EX68: 14 inputs, 7 outputs).
    aig = build_design("EX68")
    print(f"design {aig.name}: {aig.num_pis} PIs, {aig.num_pos} POs, "
          f"{aig.num_ands} AND nodes, depth {aig.depth()}")

    # 2. Proxy metrics (what the baseline flow sees).
    print(f"proxy delay  = {aig.depth()} levels")
    print(f"proxy area   = {aig.num_ands} nodes")

    # 3. Apply the classic 'compress2' optimization script.
    optimized = apply_script(aig, "compress2", verify=True).aig
    print(f"after compress2: {optimized.num_ands} nodes, depth {optimized.depth()}")

    # 4. Ground truth: map to the sky130-lite library and run STA.
    result = evaluate_aig(optimized)
    print(f"post-mapping delay = {result.delay_ps:.1f} ps, "
          f"area = {result.area_um2:.1f} um^2, {result.num_gates} gates")
    print()
    print(format_timing_report(result.netlist, result.timing))
    print()

    # 5. Train a small delay predictor on variants of this design and use it.
    generator = DatasetGenerator(GenerationConfig(samples_per_design=15, seed=7))
    corpus = generator.generate_for_aig("EX68", aig, rng=7)
    model = GradientBoostingRegressor(
        GbdtParams(n_estimators=120, max_depth=4, learning_rate=0.08), rng=0
    )
    model.fit(corpus.features, corpus.delays_ps)
    stats = percent_error_stats(corpus.delays_ps, model.predict(corpus.features))
    print(f"delay model fit on {len(corpus.aigs)} variants: {stats}")

    features = FeatureExtractor().extract(optimized).reshape(1, -1)
    predicted = model.predict(features)[0]
    print(f"ML-predicted delay of the optimized AIG = {predicted:.1f} ps "
          f"(ground truth {result.delay_ps:.1f} ps)")


if __name__ == "__main__":
    main()
