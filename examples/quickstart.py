#!/usr/bin/env python3
"""Quickstart: one SynthesisSession serves evaluation, mapping, and training.

This walks through the service-layer API of the library in ~40 lines:

1. open a :class:`repro.api.SynthesisSession` (owns the cell library and a
   fingerprint-keyed PPA cache),
2. look at the proxy metrics the baseline flow optimizes (depth, node count),
3. apply an ABC-style transformation script,
4. run technology mapping + static timing analysis (the ground truth),
5. train a tiny delay predictor on perturbed variants and use it — noting
   how the session cache absorbs the duplicate structures along the way.

Run with:  python examples/quickstart.py
"""

from repro.api import SynthesisSession
from repro.ml import GbdtParams
from repro.sta import format_timing_report


def main() -> None:
    session = SynthesisSession()

    # 1. Build a benchmark design (EX68: 14 inputs, 7 outputs).
    aig = session.load_design("EX68")
    print(f"design {aig.name}: {aig.num_pis} PIs, {aig.num_pos} POs, "
          f"{aig.num_ands} AND nodes, depth {aig.depth()}")

    # 2. Proxy metrics (what the baseline flow sees).
    print(f"proxy delay  = {aig.depth()} levels")
    print(f"proxy area   = {aig.num_ands} nodes")

    # 3. Apply the classic 'compress2' optimization script.
    optimized = session.transform(aig, "compress2", verify=True).aig
    print(f"after compress2: {optimized.num_ands} nodes, depth {optimized.depth()}")

    # 4. Ground truth: map to the sky130-lite library and run STA.
    result = session.map(optimized)
    print(f"post-mapping delay = {result.delay_ps:.1f} ps, "
          f"area = {result.area_um2:.1f} um^2, {result.num_gates} gates")
    print()
    print(format_timing_report(result.netlist, result.timing))
    print()

    # 5. Train a small delay predictor on variants of this design and use it.
    train = session.train_model(
        [aig],
        samples=15,
        seed=7,
        params=GbdtParams(n_estimators=120, max_depth=4, learning_rate=0.08),
        register_as="quickstart-delay",
    )
    corpus = train.corpora[aig.name]
    print(f"delay model fit on {len(corpus.aigs)} variants: "
          f"mean %err {train.mean_fit_error_percent:.2f}, "
          f"max {train.max_fit_error_percent:.2f}")

    predicted = session.predict(optimized, "quickstart-delay")
    truth = session.evaluate(optimized)
    print(f"ML-predicted delay of the optimized AIG = {predicted:.1f} ps "
          f"(ground truth {truth.delay_ps:.1f} ps)")

    stats = session.cache_stats
    print(f"session PPA cache: {stats.hits} hits / {stats.misses} misses "
          f"({stats.hit_rate:.0%} hit rate)")


if __name__ == "__main__":
    main()
