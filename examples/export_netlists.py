#!/usr/bin/env python3
"""Export a design in every supported interchange format.

Builds a benchmark AIG, optimizes it, maps it, and writes out: ASCII AIGER,
BENCH, BLIF, flat AIG Verilog, and technology-mapped Verilog, plus a timing
report and cell-usage summary — the artefacts a downstream physical-design
flow would consume.

Run with:  python examples/export_netlists.py [--design EX00] [--outdir out]
"""

import argparse
from pathlib import Path

from repro.designs import build_design
from repro.evaluation import evaluate_aig
from repro.io import write_aag, write_aig_verilog, write_bench, write_blif, write_mapped_verilog
from repro.sta import format_cell_usage, format_timing_report
from repro.transforms import apply_script


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="EX00")
    parser.add_argument("--outdir", type=Path, default=Path("exported"))
    parser.add_argument("--script", default="compress", help="optimization script to apply")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    args.outdir.mkdir(parents=True, exist_ok=True)

    aig = build_design(args.design)
    optimized = apply_script(aig, args.script, verify=True).aig
    result = evaluate_aig(optimized)

    stem = args.outdir / args.design.lower()
    write_aag(optimized, stem.with_suffix(".aag"))
    write_bench(optimized, stem.with_suffix(".bench"))
    write_blif(optimized, stem.with_suffix(".blif"))
    write_aig_verilog(optimized, stem.with_suffix(".v"))
    write_mapped_verilog(result.netlist, args.outdir / f"{args.design.lower()}_mapped.v")
    (args.outdir / f"{args.design.lower()}_timing.txt").write_text(
        format_timing_report(result.netlist, result.timing)
        + "\n\n"
        + format_cell_usage(result.netlist)
        + "\n",
        encoding="utf-8",
    )

    print(f"{args.design}: {optimized.num_ands} AND nodes -> {result.num_gates} gates, "
          f"{result.delay_ps:.1f} ps, {result.area_um2:.1f} um^2")
    print(f"wrote AIGER/BENCH/BLIF/Verilog/mapped-Verilog/timing to {args.outdir}/")


if __name__ == "__main__":
    main()
