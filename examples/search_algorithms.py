#!/usr/bin/env python3
"""Driving different search algorithms with the same ML cost function.

The paper integrates its predictor into a simulated-annealing flow but notes
the model is search-algorithm agnostic.  This example trains a small delay
model on variants of one design and then lets three searches spend a similar
evaluation budget with that model in the loop:

* simulated annealing (the paper's paradigm),
* greedy steepest descent,
* a genetic algorithm over transformation sequences.

Each search's best AIG is then mapped and timed for real, so the comparison
is on ground-truth delay/area even though the searches only saw predictions.

Run with:  python examples/search_algorithms.py [DESIGN]
"""

import sys

from repro.datagen import DatasetGenerator, GenerationConfig
from repro.designs import build_design
from repro.evaluation import GroundTruthEvaluator
from repro.ml import GbdtParams, GradientBoostingRegressor
from repro.opt import (
    AnnealingConfig,
    GeneticConfig,
    GeneticOptimizer,
    GreedyConfig,
    GreedyOptimizer,
    MlCost,
    SimulatedAnnealing,
)


def main() -> None:
    design = sys.argv[1] if len(sys.argv) > 1 else "EX68"
    budget = 24  # cost evaluations per algorithm (roughly)

    aig = build_design(design)
    evaluator = GroundTruthEvaluator()
    initial = evaluator.evaluate(aig)
    print(f"design {design}: {aig.num_ands} AND nodes, "
          f"unoptimized delay {initial.delay_ps:.1f} ps, area {initial.area_um2:.1f} um^2")

    print("\ntraining a delay model on variants of this design ...")
    generator = DatasetGenerator(GenerationConfig(samples_per_design=12, seed=1))
    corpus = generator.generate_for_aig(design, aig, rng=1)
    model = GradientBoostingRegressor(
        GbdtParams(n_estimators=150, learning_rate=0.08, max_depth=5), rng=0
    )
    model.fit(corpus.features, corpus.delays_ps)

    results = {}

    annealer = SimulatedAnnealing(
        MlCost(model), AnnealingConfig(iterations=budget, keep_history=False), rng=1
    )
    sa = annealer.run(aig)
    results["simulated annealing"] = (sa.best_aig, sa.runtime_seconds, budget + 1)

    greedy = GreedyOptimizer(
        MlCost(model),
        GreedyConfig(max_steps=budget // 2, candidates_per_step=2, patience=4),
        rng=2,
    ).run(aig)
    results["greedy descent"] = (greedy.best_aig, greedy.runtime_seconds, greedy.evaluations)

    genetic = GeneticOptimizer(
        MlCost(model),
        GeneticConfig(population_size=6, generations=max(1, budget // 6), genome_length=4),
        rng=3,
    ).run(aig)
    results["genetic algorithm"] = (genetic.best_aig, genetic.runtime_seconds, genetic.evaluations)

    print(f"\n{'algorithm':<22} {'delay (ps)':>11} {'area (um2)':>11} "
          f"{'evals':>6} {'runtime':>8}")
    for name, (best_aig, runtime, evaluations) in results.items():
        ppa = evaluator.evaluate(best_aig)
        print(f"{name:<22} {ppa.delay_ps:>11.1f} {ppa.area_um2:>11.1f} "
              f"{evaluations:>6d} {runtime:>7.2f}s")
    print(f"{'(unoptimized)':<22} {initial.delay_ps:>11.1f} {initial.area_um2:>11.1f}")


if __name__ == "__main__":
    main()
