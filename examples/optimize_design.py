#!/usr/bin/env python3
"""Compare the three AIG optimization flows on one design (Fig. 3 / Fig. 5).

Runs the baseline (proxy-metric) flow, the ground-truth flow (mapping + STA
in the loop), and the ML-enhanced flow through one
:class:`repro.api.SynthesisSession` with the same annealing budget, then
reports the ground-truth delay/area each flow reaches and the per-iteration
cost that got it there.  Because all three flows share the session's
fingerprint-keyed evaluator, repeated structures (rejected SA moves,
reconverging scripts) cost a dictionary hit instead of a mapping + STA run.

Run with:  python examples/optimize_design.py [--design EX68] [--iterations 25]
"""

import argparse

from repro.api import OptimizeRequest, SynthesisSession
from repro.experiments.report import format_table
from repro.ml import GbdtParams, GradientBoostingRegressor


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="EX68", help="EXxx design name or 'mult'")
    parser.add_argument("--iterations", type=int, default=25, help="SA iterations per flow")
    parser.add_argument("--samples", type=int, default=20, help="training variants for the ML model")
    parser.add_argument("--seed", type=int, default=3)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    session = SynthesisSession()
    aig = session.load_design(args.design)
    print(f"optimizing {args.design}: {aig.num_ands} AND nodes, depth {aig.depth()}")

    # Train the delay/area predictors on perturbed variants of this design
    # (in a production setting the models would come from the shared training
    # designs; see examples/train_timing_model.py).  One train_model call
    # generates and labels the corpus; the area model is fitted from the
    # same corpus without regenerating anything.
    params = GbdtParams(n_estimators=200, max_depth=5, learning_rate=0.08)
    train = session.train_model([aig], samples=args.samples, seed=args.seed,
                                params=params, register_as="delay")
    corpus = train.corpora[aig.name]
    area_model = GradientBoostingRegressor(params, rng=args.seed)
    area_model.fit(corpus.features, corpus.areas_um2)
    session.models.register("area", area_model)

    requests = [
        OptimizeRequest(design=args.design, flow="baseline"),
        OptimizeRequest(design=args.design, flow="ground-truth"),
        OptimizeRequest(design=args.design, flow="ml",
                        delay_model="delay", area_model="area"),
    ]
    rows = []
    for request in requests:
        request.iterations = args.iterations
        request.delay_weight, request.area_weight = 2.0, 1.0
        request.seed = args.seed
        result = session.optimize(request)
        annealing = result.annealing
        rows.append(
            (
                result.flow,
                f"{result.delay_ps:.1f}",
                f"{result.area_um2:.1f}",
                f"{annealing.accepted_moves}/{annealing.iterations_run}",
                f"{annealing.seconds_per_iteration():.3f}",
                f"{annealing.stage_timer.mean('evaluation') * 1000:.2f}",
            )
        )
    print()
    print(
        format_table(
            [
                "flow",
                "best delay (ps)",
                "best area (um2)",
                "accepted",
                "s/iteration",
                "eval ms/iter",
            ],
            rows,
            title="Three-flow comparison (ground-truth PPA of the best AIG found)",
        )
    )
    stats = session.cache_stats
    print(f"\nsession PPA cache: {stats.hits} hits / {stats.misses} misses "
          f"({stats.hit_rate:.0%} hit rate)")
    print(
        "The ML flow should track the ground-truth flow's quality while its "
        "per-evaluation cost stays close to the baseline's."
    )


if __name__ == "__main__":
    main()
