#!/usr/bin/env python3
"""Compare the three AIG optimization flows on one design (Fig. 3 / Fig. 5).

Runs the baseline (proxy-metric) flow, the ground-truth flow (mapping + STA
in the loop), and the ML-enhanced flow on the same design with the same
annealing budget, then reports the ground-truth delay/area each flow reaches
and the per-iteration cost that got it there.

Run with:  python examples/optimize_design.py [--design EX68] [--iterations 25]
"""

import argparse

from repro.datagen import DatasetGenerator, GenerationConfig
from repro.designs import build_design
from repro.experiments.report import format_table
from repro.ml import GbdtParams, GradientBoostingRegressor
from repro.opt import AnnealingConfig, BaselineFlow, GroundTruthFlow, MlFlow


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="EX68", help="EXxx design name or 'mult'")
    parser.add_argument("--iterations", type=int, default=25, help="SA iterations per flow")
    parser.add_argument("--samples", type=int, default=20, help="training variants for the ML model")
    parser.add_argument("--seed", type=int, default=3)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    aig = build_design(args.design)
    print(f"optimizing {args.design}: {aig.num_ands} AND nodes, depth {aig.depth()}")

    # Train the delay/area predictors on perturbed variants of this design
    # (in a production setting the model would come from the shared training
    # designs; see examples/train_timing_model.py).
    generator = DatasetGenerator(GenerationConfig(samples_per_design=args.samples, seed=args.seed))
    corpus = generator.generate_for_aig(args.design, aig, rng=args.seed)
    delay_model = GradientBoostingRegressor(
        GbdtParams(n_estimators=200, max_depth=5, learning_rate=0.08), rng=0
    ).fit(corpus.features, corpus.delays_ps)
    area_model = GradientBoostingRegressor(
        GbdtParams(n_estimators=200, max_depth=5, learning_rate=0.08), rng=1
    ).fit(corpus.features, corpus.areas_um2)

    config = AnnealingConfig(iterations=args.iterations, seed=args.seed)
    flows = [
        BaselineFlow(),
        GroundTruthFlow(),
        MlFlow(delay_model, area_model=area_model),
    ]
    rows = []
    for flow in flows:
        result = flow.run(aig, config=config, delay_weight=2.0, area_weight=1.0, rng=args.seed)
        annealing = result.annealing
        rows.append(
            (
                flow.name,
                f"{result.delay_ps:.1f}",
                f"{result.area_um2:.1f}",
                f"{annealing.accepted_moves}/{annealing.iterations_run}",
                f"{annealing.seconds_per_iteration():.3f}",
                f"{annealing.stage_timer.mean('evaluation') * 1000:.2f}",
            )
        )
    print()
    print(
        format_table(
            [
                "flow",
                "best delay (ps)",
                "best area (um2)",
                "accepted",
                "s/iteration",
                "eval ms/iter",
            ],
            rows,
            title="Three-flow comparison (ground-truth PPA of the best AIG found)",
        )
    )
    print(
        "\nThe ML flow should track the ground-truth flow's quality while its "
        "per-evaluation cost stays close to the baseline's."
    )


if __name__ == "__main__":
    main()
