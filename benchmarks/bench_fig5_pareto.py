"""Fig. 5 benchmark — delay/area Pareto fronts of the three flows.

Paper reference: the ground-truth and ML flows dominate the proxy-driven
baseline (Sec. II-B quantifies up to 22.7 % better delay at matched area for
the ground-truth flow), and the ML front stays close to the ground-truth
front.
"""

from conftest import run_once

from repro.experiments.fig5_pareto import run_fig5_pareto
from repro.opt.sweep import SweepConfig


def test_fig5_pareto_fronts(benchmark, bench_config, bench_models, pareto_design, save_result):
    delay_model, area_model = bench_models
    sweep = SweepConfig(
        delay_weights=(1.0, 4.0),
        area_weights=(1.0,),
        temperature_decays=(0.9, 0.97),
        iterations=bench_config.sa_iterations,
        seed=bench_config.seed,
    )

    result = run_once(
        benchmark,
        lambda: run_fig5_pareto(
            delay_model,
            area_model=area_model,
            design=pareto_design,
            config=bench_config,
            sweep_config=sweep,
        ),
    )

    save_result("fig5_pareto", result.format_table())

    assert set(result.sweeps) == {"baseline", "ground_truth", "ml"}
    for sweep_result in result.sweeps.values():
        assert sweep_result.front()

    # Shape check: the ground-truth and ML flows should not be dominated by
    # the baseline — their best achievable delay is at least as good (a small
    # tolerance absorbs SA noise at the reduced iteration budget).
    baseline_best = result.sweeps["baseline"].best_delay()
    assert result.sweeps["ground_truth"].best_delay() <= baseline_best * 1.05
    assert result.sweeps["ml"].best_delay() <= baseline_best * 1.10
