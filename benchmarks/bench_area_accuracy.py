"""Extension benchmark — area-prediction accuracy (abstract's secondary target).

The paper's abstract says ML models predict post-mapping delay *and area* but
only tabulates delay accuracy; this benchmark produces the missing area table
with the same train/test protocol, and compares the learned model against the
conventional AND-node-count proxy.
"""

from conftest import run_once

from repro.experiments.area_accuracy import run_area_accuracy


def test_area_prediction_accuracy(benchmark, bench_config, bench_corpora, save_result):
    _, corpora = bench_corpora

    result = run_once(benchmark, lambda: run_area_accuracy(bench_config, corpora=corpora))

    save_result("area_accuracy", result.format_table())

    assert {row.design for row in result.rows} == set(bench_config.all_designs())
    # Area tracks structure much more directly than delay, so the learned
    # model must be clearly usable; at the default (small) training size it
    # should at least stay in the same league as the node-count proxy.
    assert result.mean_model_error < 30.0
    assert result.mean_model_error <= result.mean_proxy_error * 2.0 + 5.0
    assert result.area_per_and_um2 > 0.0
