"""Shared fixtures for the benchmark harness.

The expensive artefacts (labelled corpora for all eight designs and the
trained delay/area models) are built once per benchmark session and shared by
every table/figure benchmark.  Scale is controlled by environment variables
so the same harness can run a quick smoke pass or a paper-scale run:

* ``REPRO_BENCH_SAMPLES``  — labelled AIG variants per design (default 16)
* ``REPRO_BENCH_SA_ITERS`` — SA iterations per optimization run (default 15)
* ``REPRO_BENCH_RUNTIME_ITERS`` — iterations for runtime measurements (default 3)
* ``REPRO_BENCH_PARETO_DESIGN`` — design used for the Fig. 5 sweep (default EX02)

Formatted result tables are written to ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from a single
run of ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.datagen.generator import DatasetGenerator, GenerationConfig
from repro.experiments.config import ExperimentConfig
from repro.ml.gbdt import GbdtParams, GradientBoostingRegressor

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration used by every benchmark."""
    config = ExperimentConfig.full()
    config.samples_per_design = _env_int("REPRO_BENCH_SAMPLES", 16)
    config.sa_iterations = _env_int("REPRO_BENCH_SA_ITERS", 15)
    config.runtime_iterations = _env_int("REPRO_BENCH_RUNTIME_ITERS", 3)
    config.gbdt_params = GbdtParams(
        n_estimators=250, learning_rate=0.06, max_depth=6, subsample=0.8
    )
    return config


@pytest.fixture(scope="session")
def pareto_design() -> str:
    """Design used for the Fig. 5 Pareto sweep (a test design, as in the paper)."""
    return os.environ.get("REPRO_BENCH_PARETO_DESIGN", "EX02")


@pytest.fixture(scope="session")
def bench_corpora(bench_config):
    """Labelled AIG variants for all eight designs (generated once)."""
    generator = DatasetGenerator(
        GenerationConfig(samples_per_design=bench_config.samples_per_design, seed=bench_config.seed)
    )
    corpora = generator.generate(bench_config.all_designs(), rng=bench_config.seed)
    return generator, corpora


@pytest.fixture(scope="session")
def bench_models(bench_config, bench_corpora):
    """Delay and area models trained on the training-design corpora."""
    generator, corpora = bench_corpora
    dataset = generator.to_dataset(corpora)
    train = dataset.for_designs(bench_config.train_designs)
    delay_model = GradientBoostingRegressor(bench_config.gbdt_params, rng=bench_config.seed)
    delay_model.fit(train.features, train.labels)
    area_model = GradientBoostingRegressor(bench_config.gbdt_params, rng=bench_config.seed + 1)
    area_model.fit(train.features, np.asarray(train.areas, dtype=np.float64))
    return delay_model, area_model


@pytest.fixture(scope="session")
def save_result():
    """Callable that persists a formatted result table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _save


def run_once(benchmark, function):
    """Run *function* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)
