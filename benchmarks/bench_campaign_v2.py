"""Campaign engine v2 — persistent worker-session reuse across cells.

PR 3's engine built a fresh evaluator for every cell, throwing away the
parsed cell library, the mapper, and the PPA cache each time.  The v2
engine serves cells from a per-worker persistent
:class:`~repro.api.session.SessionPool` keyed by (evaluation context,
evaluator kind), so consecutive cells of the same design share all of that
state — the initial evaluation of every seed of a design, and every
structure the searches revisit across seeds, become cache hits.

This benchmark runs the same one-design × several-seeds matrix twice in
one process: cold (the session pool is wiped after every cell — the v1
cost model) and warm (v2 default).  It records wall clock and the number of
ground-truth mapping+STA evaluations actually performed, and asserts the
warm run's store is identical modulo timing while doing strictly fewer
evaluations.

* ``REPRO_BENCH_CAMPAIGN_ITERS`` — SA iterations per cell (default 6)
"""

import os
import time

from conftest import run_once

from repro.api.session import worker_session_pool
from repro.campaign import CampaignSpec, ResultStore, run_campaign, strip_timing
from repro.experiments.report import format_table


def _spec() -> CampaignSpec:
    iterations = int(os.environ.get("REPRO_BENCH_CAMPAIGN_ITERS", 6))
    return CampaignSpec(
        designs=("EX68",),
        flows=("ground_truth",),
        optimizers=("sa",),
        evaluators=("cached",),
        seeds=(1, 2, 3, 4),
        iterations=iterations,
    )


def _pool_misses() -> int:
    """Ground-truth evaluations performed by the pooled cached sessions."""
    pool = worker_session_pool()
    total = 0
    for key in pool.keys():
        session = pool.get(evaluator_kind=key[1], context=key[0])
        stats = session.cache_stats
        if stats is not None:
            total += stats.misses
    return total


def test_campaign_session_reuse(benchmark, save_result, tmp_path):
    spec = _spec()
    cells = len(spec.expand())

    # Warm-up pass so design construction and library parsing are cached
    # before either measured run.
    worker_session_pool().clear()
    run_campaign(spec, ResultStore(), max_workers=1)
    worker_session_pool().clear()

    cold_misses = [0]

    def per_cell_reset(record) -> None:
        # v1 behaviour: throw the session (evaluator, mapper, cache) away
        # after every cell, accounting for its evaluations first.
        cold_misses[0] += _pool_misses()
        worker_session_pool().clear()

    cold_store = ResultStore(tmp_path / "cold.jsonl")
    start = time.perf_counter()
    summary_cold = run_campaign(
        spec, cold_store, max_workers=1, on_record=per_cell_reset
    )
    cold_seconds = time.perf_counter() - start
    worker_session_pool().clear()

    def warm_run():
        store = ResultStore(tmp_path / "warm.jsonl")
        begin = time.perf_counter()
        summary = run_campaign(spec, store, max_workers=1)
        return time.perf_counter() - begin, store, summary

    warm_seconds, warm_store, summary_warm = run_once(benchmark, warm_run)
    warm_misses = _pool_misses()
    warm_sessions = len(worker_session_pool())
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else 0.0

    table = format_table(
        ["sessions", "cells", "wall clock (s)", "gt evaluations", "speedup"],
        [
            ("per-cell (v1)", cells, f"{cold_seconds:.2f}", cold_misses[0], "1.00x"),
            (
                "pooled (v2)",
                cells,
                f"{warm_seconds:.2f}",
                warm_misses,
                f"{speedup:.2f}x",
            ),
        ],
        title=(
            "Campaign v2 session reuse — 1 design × 4 seeds, ground-truth "
            "flow, one worker"
        ),
    )
    save_result("campaign_session_reuse", table)
    worker_session_pool().clear()

    assert summary_cold.ok and summary_warm.ok
    assert summary_cold.executed == cells and summary_warm.executed == cells
    # Reuse must never change results: identical stores modulo wall clock.
    assert [strip_timing(r) for r in cold_store.records] == [
        strip_timing(r) for r in warm_store.records
    ]
    # One persistent session served every cell of the shared context…
    assert warm_sessions == 1
    # …and cross-cell reuse saved real mapping+STA work: every cell of the
    # same design evaluates the same initial AIG (and the searches revisit
    # structures across seeds), so the pooled run must perform strictly
    # fewer ground-truth evaluations than the per-cell-session run.
    assert 0 < warm_misses < cold_misses[0]
