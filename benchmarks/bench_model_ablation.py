"""Model ablation benchmark — boosted trees vs GNN and simpler baselines.

Paper reference (Sec. III-B): a GNN-based predictor is ~2 % worse on average
than the decision-tree model and considerably more expensive to train,
because graph-level statistics already capture what matters for max-delay
prediction.  This benchmark trains the gradient-boosted model, the GNN-style
model, a random forest, a ridge regression, and an MLP on the same training
designs and compares their unseen-design errors and training times.
"""

import time

import numpy as np
from conftest import run_once

from repro.experiments.report import format_table
from repro.ml.forest import ForestParams, RandomForestRegressor
from repro.ml.gnn import GnnDelayRegressor, GnnParams
from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import percent_error_stats
from repro.ml.mlp import MlpParams, MlpRegressor
from repro.ml.gbdt import GradientBoostingRegressor


def _evaluate_tabular(model, corpora, designs):
    errors = []
    for design in designs:
        corpus = corpora[design]
        stats = percent_error_stats(corpus.delays_ps, model.predict(corpus.features))
        errors.append(stats.mean)
    return float(np.mean(errors))


def test_model_ablation(benchmark, bench_config, bench_corpora, save_result):
    generator, corpora = bench_corpora
    dataset = generator.to_dataset(corpora)
    train = dataset.for_designs(bench_config.train_designs)
    train_designs = list(bench_config.train_designs)
    test_designs = [d for d in bench_config.test_designs if d in corpora]

    def run():
        rows = []

        start = time.perf_counter()
        gbdt = GradientBoostingRegressor(bench_config.gbdt_params, rng=0)
        gbdt.fit(train.features, train.labels)
        gbdt_seconds = time.perf_counter() - start
        rows.append(
            (
                "gbdt (paper's model)",
                _evaluate_tabular(gbdt, corpora, train_designs),
                _evaluate_tabular(gbdt, corpora, test_designs),
                gbdt_seconds,
            )
        )

        start = time.perf_counter()
        gnn = GnnDelayRegressor(GnnParams(hops=3, epochs=250), rng=0)
        train_aigs = [aig for d in train_designs for aig in corpora[d].aigs]
        train_delays = np.concatenate([corpora[d].delays_ps for d in train_designs])
        gnn.fit(train_aigs, train_delays)
        gnn_seconds = time.perf_counter() - start
        gnn_train_err = float(
            np.mean(
                [
                    percent_error_stats(
                        corpora[d].delays_ps, gnn.predict(corpora[d].aigs)
                    ).mean
                    for d in train_designs
                ]
            )
        )
        gnn_test_err = float(
            np.mean(
                [
                    percent_error_stats(
                        corpora[d].delays_ps, gnn.predict(corpora[d].aigs)
                    ).mean
                    for d in test_designs
                ]
            )
        )
        rows.append(("gnn (message passing)", gnn_train_err, gnn_test_err, gnn_seconds))

        start = time.perf_counter()
        forest = RandomForestRegressor(ForestParams(n_estimators=80, max_depth=8), rng=0)
        forest.fit(train.features, train.labels)
        rows.append(
            (
                "random forest",
                _evaluate_tabular(forest, corpora, train_designs),
                _evaluate_tabular(forest, corpora, test_designs),
                time.perf_counter() - start,
            )
        )

        start = time.perf_counter()
        ridge = RidgeRegressor(alpha=1.0).fit(train.features, train.labels)
        rows.append(
            (
                "ridge regression",
                _evaluate_tabular(ridge, corpora, train_designs),
                _evaluate_tabular(ridge, corpora, test_designs),
                time.perf_counter() - start,
            )
        )

        start = time.perf_counter()
        mlp = MlpRegressor(MlpParams(hidden_sizes=(64, 32), epochs=200), rng=0)
        mlp.fit(train.features, train.labels)
        rows.append(
            (
                "mlp",
                _evaluate_tabular(mlp, corpora, train_designs),
                _evaluate_tabular(mlp, corpora, test_designs),
                time.perf_counter() - start,
            )
        )
        return rows

    rows = run_once(benchmark, run)

    table = format_table(
        ["model", "train mean %err", "test mean %err", "training s"],
        rows,
        title="Model ablation — delay prediction (cf. paper Sec. III-B)",
    )
    save_result("model_ablation", table)

    by_name = {row[0]: row for row in rows}
    gbdt_test = by_name["gbdt (paper's model)"][2]
    ridge_test = by_name["ridge regression"][2]
    # The boosted trees must beat the linear baseline on unseen designs, and
    # must not be clearly worse than the GNN (the paper found the opposite
    # ordering: trees slightly ahead).
    assert gbdt_test <= ridge_test * 1.1
    assert by_name["gbdt (paper's model)"][1] <= by_name["gnn (message passing)"][1] * 1.2
