"""Cold-path benchmark — vectorized cold map+STA and warm-start resume.

Two numbers back the cold-path work, and this script measures both in one
run and writes them as ``benchmarks/results/BENCH_coldmap.json``:

* **Cold map+STA**: technology mapping plus full STA on a freshly built
  design (cold per-graph caches), measured twice in the same process —
  once with ``REPRO_MAP_DP=scalar`` (the reference DP) and once with the
  vectorized DP — so the reported speedup is self-contained rather than
  pinned to another machine's reference numbers.
* **Cold-vs-warm campaign resume**: a tiny campaign runs once against a
  sharded store (writing the warm-start snapshot sidecar), then the same
  cells are re-executed into a fresh in-memory store twice from a cold
  worker pool — once without and once with the snapshot — counting
  ground-truth evaluations each way.

The script doubles as the CI gate against silent regressions: it exits
nonzero when the vectorized DP did not actually run on the benchmark
design (``last_dp_stats.used_vectorized`` false — a silent scalar
fallback) or when the warm resume fails to perform strictly fewer
ground-truth evaluations than the cold resume.

Run directly::

    PYTHONPATH=src python benchmarks/bench_coldmap.py \
        [--output benchmarks/results/BENCH_coldmap.json] [--design EX08] \
        [--repeats 3] [--tiny]

``--tiny`` is the CI smoke configuration: single repeat, smaller resume
campaign, same gates.  Numbers scale with hardware; the committed JSON was
produced by a full-size run in the development container.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    ShardedResultStore,
    engine_cells,
    ground_truth_evaluations,
    run_cells,
    warmstart_dir_for,
)
from repro.campaign.warmstart import WARMSTART_PAYLOAD_KEY, load_entries
from repro.designs.registry import build_design
from repro.library.sky130_lite import load_sky130_lite
from repro.mapping.mapper import TechnologyMapper
from repro.sta.analysis import analyze_timing


def _cold_map_sta(design: str, repeats: int, scalar: bool):
    """Best-of-N cold map+STA wall clock; returns (seconds, DpStats)."""
    library = load_sky130_lite()
    os.environ["REPRO_MAP_DP"] = "scalar" if scalar else "vector"
    try:
        best = float("inf")
        stats = None
        for _ in range(repeats):
            aig = build_design(design)  # fresh graph: cold per-graph caches
            mapper = TechnologyMapper(library)
            t0 = time.perf_counter()
            netlist = mapper.map(aig)
            analyze_timing(netlist)
            best = min(best, time.perf_counter() - t0)
            stats = mapper.last_dp_stats
        return best, stats
    finally:
        os.environ.pop("REPRO_MAP_DP", None)


def _fresh_worker_pool() -> None:
    import repro.api.session as session_module

    session_module._WORKER_SESSION_POOLS.pool = None


def _resume_campaign(spec: CampaignSpec, warm_dir: Path | None) -> int:
    """Re-run the spec's cells cold-pool into a throwaway store.

    Returns the number of ground-truth evaluations the worker performed;
    with *warm_dir* set the cells seed from the snapshot sidecar first.
    """
    from repro.api.session import worker_session_pool
    import repro.campaign.warmstart as warmstart_module

    _fresh_worker_pool()
    warmstart_module._PERSISTED.clear()
    cells = engine_cells(spec)
    if warm_dir is not None:
        cells = [
            type(cell)(
                cell_id=cell.cell_id,
                fn=cell.fn,
                payload={**cell.payload, WARMSTART_PAYLOAD_KEY: str(warm_dir)},
            )
            for cell in cells
        ]
    summary = run_cells(cells, ResultStore(), warm_start=False)
    if not summary.ok:
        raise RuntimeError(f"resume cells failed: {summary.failed}")
    return ground_truth_evaluations(worker_session_pool())


def run_warm_resume(iterations: int) -> dict:
    """Cold-vs-warm resume evaluation counts for a tiny campaign."""
    spec = CampaignSpec(
        designs=("EX00",),
        flows=("baseline",),
        optimizers=("greedy",),
        evaluators=("cached", "incremental"),
        seeds=(1, 2),
        iterations=iterations,
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = ShardedResultStore(Path(tmp) / "store")
        _fresh_worker_pool()
        summary = run_cells(engine_cells(spec), store)
        if not summary.ok:
            raise RuntimeError(f"campaign cells failed: {summary.failed}")
        warm_dir = warmstart_dir_for(store)
        snapshot_entries = len(load_entries(warm_dir))
        cold = _resume_campaign(spec, None)
        warm = _resume_campaign(spec, warm_dir)
        _fresh_worker_pool()
    return {
        "cells": len(engine_cells(spec)),
        "iterations": iterations,
        "snapshot_entries": snapshot_entries,
        "cold_ground_truth_evaluations": cold,
        "warm_ground_truth_evaluations": warm,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).parent / "results" / "BENCH_coldmap.json"),
    )
    parser.add_argument("--design", default="EX08")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: one repeat, smaller resume campaign",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.tiny else args.repeats
    resume_iters = 3 if args.tiny else 6

    aig = build_design(args.design)
    scalar_s, scalar_stats = _cold_map_sta(args.design, repeats, scalar=True)
    vector_s, vector_stats = _cold_map_sta(args.design, repeats, scalar=False)
    used_vectorized = bool(vector_stats is not None and vector_stats.used_vectorized)
    cold_map_sta = {
        "design": args.design,
        "num_ands": aig.num_ands,
        "depth": aig.depth(),
        "scalar_s": scalar_s,
        "vector_s": vector_s,
        "speedup": round(scalar_s / vector_s, 2) if vector_s > 0 else None,
        "used_vectorized": used_vectorized,
        "vector_nodes": getattr(vector_stats, "vector_nodes", 0),
        "scalar_nodes": getattr(vector_stats, "scalar_nodes", 0),
        "scalar_run_fell_back": bool(
            scalar_stats is None or not scalar_stats.used_vectorized
        ),
    }

    warm_resume = run_warm_resume(resume_iters)

    gates = {
        # A silent scalar fallback on the benchmark design fails the job.
        "vectorized_dp": used_vectorized,
        # A warm resume must do strictly fewer ground-truth evaluations.
        "warm_resume_strictly_fewer": (
            warm_resume["warm_ground_truth_evaluations"]
            < warm_resume["cold_ground_truth_evaluations"]
        ),
    }

    payload = {
        "schema": "bench_coldmap/v1",
        "config": {
            "design": args.design,
            "repeats": repeats,
            "tiny": args.tiny,
            "resume_iterations": resume_iters,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "cold_map_sta": cold_map_sta,
        "warm_resume": warm_resume,
        "gates": gates,
    }

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not all(gates.values()):
        failed = sorted(name for name, ok in gates.items() if not ok)
        print(f"GATE FAILURE: {failed}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
