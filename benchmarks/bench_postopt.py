"""Extension benchmark — post-mapping optimization across the eight designs.

Validates the synthesis substrate beyond the paper's scope: gate sizing and
fanout buffering on the mapped netlists must never degrade delay and should
recover a measurable amount on the larger designs.
"""

from conftest import run_once

from repro.experiments.postopt_study import run_postopt_study


def test_postopt_study(benchmark, bench_config, save_result):
    result = run_once(
        benchmark, lambda: run_postopt_study(bench_config, designs=bench_config.all_designs())
    )

    save_result("postopt_study", result.format_table())

    assert len(result.rows) == len(bench_config.all_designs())
    for row in result.rows:
        assert row.delay_after_ps <= row.delay_before_ps + 1e-6
    assert result.mean_delay_improvement_percent >= 0.0
