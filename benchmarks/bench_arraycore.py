"""Array-core benchmark — machine-readable before/after trajectory.

Times the exact sweeps the structure-of-arrays AIG refactor vectorizes —
whole-graph structural passes (levels / fanout counts), bit-parallel
simulation, cut-based mapping + STA (the fig. 2 "ground truth" overhead),
feature extraction + the transform step (the fig. 2 "baseline" cost and the
Table IV "ML inference" side) — and writes the numbers as
``benchmarks/results/BENCH_arraycore.json``.

Unlike the pytest benchmarks (which format human-readable tables), this
script exists to leave a *machine-readable* performance trajectory in CI
artifacts: every run embeds the pre-refactor reference numbers (measured on
the seed implementation with the same script, same sizes, same seeds) next
to the measured numbers and the resulting speedups, so a regression in any
vectorized pass is a one-line diff in the JSON rather than an archaeology
project.

Run directly::

    PYTHONPATH=src python benchmarks/bench_arraycore.py \
        [--output benchmarks/results/BENCH_arraycore.json] [--design EX08] \
        [--sa-iters 6] [--repeats 3]

Numbers scale with hardware; the committed reference values were measured in
the same container the "after" numbers first shipped from, and CI recomputes
both sides fresh — the JSON records the measured speedup, it does not assert
one (the asserting version of this contract lives in the pytest harnesses).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.designs.registry import build_design
from repro.features.extract import FeatureExtractor
from repro.library.sky130_lite import load_sky130_lite
from repro.mapping.mapper import TechnologyMapper
from repro.opt.flows import BaselineFlow, GroundTruthFlow, measure_iteration_runtime
from repro.sta.analysis import analyze_timing

#: Reference numbers measured on the pre-refactor (per-node Python dict/list)
#: implementation with this same script: design EX08, sa_iters=6, repeats=3,
#: single thread, CPython 3.12.  ``None`` means the pass did not exist yet.
SEED_REFERENCE = {
    "design": "EX08",
    "structural_sweep_s": 7.74e-4,
    "simulate_2048_s": 1.19e-3,
    "map_sta_s": 0.581,
    "feature_extraction_s": 10.5e-3,
    "fig2_baseline_s_per_iter": 3.87,
    "fig2_ground_truth_s_per_iter": 4.46,
    "fig2_evaluation_s_per_iter": 0.590,
    "mapper_dp_nodes": 1197,
}


def _time_best(fn, repeats: int) -> float:
    """Best-of-N wall clock of one call to *fn* (min over repeats)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return best


def run_bench(design: str, sa_iters: int, repeats: int) -> dict:
    """Measure every array-core pass; return the result dictionary."""
    aig = build_design(design)
    library = load_sky130_lite()
    mapper = TechnologyMapper(library)
    extractor = FeatureExtractor()

    # --- whole-graph structural sweeps (levels + fanout counts + fanouts) ---
    def structural_sweep():
        aig.levels()
        aig.fanout_counts()
        aig.fanouts()

    structural_s = _time_best(structural_sweep, max(repeats, 3) * 3)

    # --- bit-parallel random simulation, 2048 packed patterns ---
    from repro.aig.simulate import node_signatures

    # Sub-10ms measurements get extra repeats: best-of-N on a shared/noisy
    # VM needs more samples to find an undisturbed run.
    micro_repeats = max(repeats, 3) * 3
    simulate_s = _time_best(
        lambda: node_signatures(aig, num_patterns=2048, rng=7), micro_repeats
    )

    # --- mapping + STA (the fig. 2 ground-truth overhead) ---
    def map_sta():
        netlist = mapper.map(aig)
        analyze_timing(netlist)

    map_sta_s = _time_best(map_sta, repeats)

    # --- feature extraction (the Table IV ML-inference side) ---
    features_s = _time_best(lambda: extractor.extract(aig), micro_repeats)

    # --- fig. 2 style per-iteration flow runtimes (SA burst) ---
    baseline_rt = measure_iteration_runtime(BaselineFlow(library), aig, iterations=sa_iters)
    ground_rt = measure_iteration_runtime(GroundTruthFlow(library), aig, iterations=sa_iters)

    return {
        "design": design,
        "num_ands": aig.num_ands,
        "depth": aig.depth(),
        "structural_sweep_s": structural_s,
        "simulate_2048_s": simulate_s,
        "map_sta_s": map_sta_s,
        "feature_extraction_s": features_s,
        "fig2_baseline_s_per_iter": baseline_rt.total_seconds,
        "fig2_ground_truth_s_per_iter": ground_rt.total_seconds,
        "fig2_evaluation_s_per_iter": ground_rt.evaluation_seconds,
        "mapper_dp_nodes": aig.num_ands,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).parent / "results" / "BENCH_arraycore.json"),
    )
    parser.add_argument("--design", default="EX08")
    parser.add_argument("--sa-iters", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    measured = run_bench(args.design, args.sa_iters, args.repeats)

    speedups = {}
    if measured["design"] == SEED_REFERENCE["design"]:
        for key, before in SEED_REFERENCE.items():
            after = measured.get(key)
            if (
                key.endswith(("_s", "_s_per_iter"))
                and isinstance(before, (int, float))
                and isinstance(after, (int, float))
                and after > 0
            ):
                speedups[key] = round(before / after, 2)

    payload = {
        "schema": "bench_arraycore/v1",
        "config": {
            "design": args.design,
            "sa_iters": args.sa_iters,
            "repeats": args.repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "seed_reference": SEED_REFERENCE,
        "measured": measured,
        "speedup_vs_seed": speedups,
    }

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload["measured"], indent=2, sort_keys=True))
    if speedups:
        print("speedup vs seed reference:")
        for key, value in sorted(speedups.items()):
            print(f"  {key}: {value}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
