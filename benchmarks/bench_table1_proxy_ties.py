"""Table I benchmark — identical proxy metrics, different post-mapping PPA.

Paper reference: two AIGs with the same level and node count differ by ~1.3x
in post-mapping delay.
"""

from conftest import run_once

from repro.datagen.generator import DatasetGenerator, GenerationConfig
from repro.designs.registry import build_design
from repro.experiments.table1_proxy_ties import run_table1_proxy_ties


def test_table1_proxy_ties(benchmark, bench_config, save_result):
    samples = max(2 * bench_config.samples_per_design, 40)
    generator = DatasetGenerator(
        GenerationConfig(samples_per_design=samples, seed=bench_config.seed + 17)
    )

    def run():
        corpus = generator.generate_for_aig(
            "mult", build_design("mult"), rng=bench_config.seed + 17
        )
        return run_table1_proxy_ties(corpus=corpus)

    result = run_once(benchmark, run)
    save_result("table1_proxy_ties", result.format_table())

    assert result.samples >= 20
    if result.ties:
        worst = result.worst_tie
        # Proxy-identical AIGs whose true delay differs — the paper's point.
        assert worst.delay_gap_ratio > 1.0
