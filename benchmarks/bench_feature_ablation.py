"""Feature-group ablation — which Table II features carry the signal?

The paper motivates three feature groups (critical-path depths, fanout
statistics, per-output path counts) from the two sources of proxy/ground-truth
miscorrelation.  This benchmark retrains the delay model with each group
removed (and with only the bare proxy features) and reports the unseen-design
error, quantifying how much each group contributes beyond the plain
node-count/level proxies.
"""

import time

import numpy as np
from conftest import run_once

from repro.experiments.report import format_table
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.metrics import percent_error_stats

FEATURE_GROUPS = {
    "depths": lambda name: "path_depth" in name,
    "fanout stats": lambda name: name.startswith("fanout_") or name.startswith("long_path_fanout_"),
    "path counts": lambda name: name.startswith("num_of_paths"),
}


def _column_indices(names, predicate):
    return [i for i, name in enumerate(names) if predicate(name)]


def _train_and_score(features, labels, corpora, columns, train_designs, test_designs, params):
    train_rows = features
    model = GradientBoostingRegressor(params, rng=0)
    model.fit(train_rows[:, columns], labels)
    errors = []
    for design in test_designs:
        corpus = corpora[design]
        predictions = model.predict(corpus.features[:, columns])
        errors.append(percent_error_stats(corpus.delays_ps, predictions).mean)
    return float(np.mean(errors))


def test_feature_group_ablation(benchmark, bench_config, bench_corpora, save_result):
    generator, corpora = bench_corpora
    dataset = generator.to_dataset(corpora)
    train = dataset.for_designs(bench_config.train_designs)
    names = dataset.feature_names
    all_columns = list(range(len(names)))
    test_designs = [d for d in bench_config.test_designs if d in corpora]
    params = bench_config.gbdt_params

    def run():
        rows = []
        full_error = _train_and_score(
            train.features, train.labels, corpora, all_columns,
            bench_config.train_designs, test_designs, params,
        )
        rows.append(("all Table II features", len(all_columns), full_error))

        for group, predicate in FEATURE_GROUPS.items():
            removed = _column_indices(names, predicate)
            kept = [i for i in all_columns if i not in removed]
            error = _train_and_score(
                train.features, train.labels, corpora, kept,
                bench_config.train_designs, test_designs, params,
            )
            rows.append((f"without {group}", len(kept), error))

        proxy_columns = [names.index("number_of_node"), names.index("aig_level")]
        proxy_error = _train_and_score(
            train.features, train.labels, corpora, proxy_columns,
            bench_config.train_designs, test_designs, params,
        )
        rows.append(("proxy features only (nodes, level)", len(proxy_columns), proxy_error))
        return rows, full_error, proxy_error

    rows, full_error, proxy_error = run_once(benchmark, run)

    table = format_table(
        ["feature set", "#features", "unseen-design mean %err"],
        rows,
        title="Feature-group ablation (delay model, unseen designs)",
    )
    save_result("feature_ablation", table)

    # The full Table II feature set must not be worse than the bare proxies.
    assert full_error <= proxy_error * 1.05
