"""Table III benchmark — delay-prediction accuracy on train and unseen designs.

Paper reference: mean absolute %error of 4.03 % averaged over the eight
designs, worst-case sample error 39.85 %, average per-design std 3.27 %; the
model generalises to four designs never seen in training.
"""

from conftest import run_once

from repro.experiments.table3_accuracy import run_table3_accuracy


def test_table3_prediction_accuracy(benchmark, bench_config, bench_corpora, save_result):
    _, corpora = bench_corpora

    result = run_once(
        benchmark,
        lambda: run_table3_accuracy(
            bench_config, include_gnn=False, include_area_model=True, corpora=corpora
        ),
    )

    save_result("table3_accuracy", result.format_table())

    assert {row.design for row in result.rows} == set(bench_config.all_designs())
    # Shape of the paper's result: single-digit-ish mean error on training
    # designs and a finite, larger-but-usable error on unseen designs.
    train_mean = sum(
        row.stats.mean for row in result.rows if row.role == "train"
    ) / max(1, sum(1 for row in result.rows if row.role == "train"))
    assert train_mean < 15.0
    assert result.mean_error_all < 40.0
    assert result.max_error_all < 200.0
    assert result.area_model is not None
