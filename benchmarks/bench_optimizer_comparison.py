"""Extension benchmark — SA vs greedy vs genetic search under the ML cost.

Supports the paper's claim that the trained predictors are not tied to
simulated annealing: the same ML cost function drives three search
algorithms with a comparable evaluation budget, and the best AIGs are
compared on ground-truth post-mapping delay/area.

The "no worse than the unoptimized design" guard is gated by the evaluation
budget via :func:`delay_guard_tolerance`: at full scale it is the historical
±10 % band, at tiny ``REPRO_BENCH_SA_ITERS`` smoke sizes it widens — with a
handful of evaluations the searches are still in their random opening moves,
and the old fixed band flaked.
"""

from conftest import run_once

from repro.experiments.optimizer_comparison import (
    delay_guard_tolerance,
    run_optimizer_comparison,
)


def test_optimizer_comparison(
    benchmark, bench_config, bench_models, pareto_design, save_result
):
    delay_model, area_model = bench_models

    result = run_once(
        benchmark,
        lambda: run_optimizer_comparison(
            delay_model,
            config=bench_config,
            design=pareto_design,
            area_model=area_model,
            include_proxy_baseline=True,
        ),
    )

    save_result("optimizer_comparison", result.format_table())

    algorithms = {(row.algorithm, row.cost_function) for row in result.rows}
    assert ("simulated_annealing", "ml") in algorithms
    assert ("greedy", "ml") in algorithms
    assert ("genetic", "ml") in algorithms
    # No algorithm may return something worse than the unoptimized design by
    # more than a budget-dependent tolerance (they all keep the best
    # candidate seen, but tiny smoke budgets are dominated by noise).
    budget = max(bench_config.sa_iterations, 4)
    tolerance = delay_guard_tolerance(budget)
    for row in result.rows:
        assert row.ground_truth_delay_ps <= result.initial_delay_ps * tolerance
        assert row.cost_evaluations > 0
