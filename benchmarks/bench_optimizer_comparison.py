"""Extension benchmark — SA vs greedy vs genetic search under the ML cost.

Supports the paper's claim that the trained predictors are not tied to
simulated annealing: the same ML cost function drives three search
algorithms with a comparable evaluation budget, and the best AIGs are
compared on ground-truth post-mapping delay/area.
"""

from conftest import run_once

from repro.experiments.optimizer_comparison import run_optimizer_comparison


def test_optimizer_comparison(
    benchmark, bench_config, bench_models, pareto_design, save_result
):
    delay_model, area_model = bench_models

    result = run_once(
        benchmark,
        lambda: run_optimizer_comparison(
            delay_model,
            config=bench_config,
            design=pareto_design,
            area_model=area_model,
            include_proxy_baseline=True,
        ),
    )

    save_result("optimizer_comparison", result.format_table())

    algorithms = {(row.algorithm, row.cost_function) for row in result.rows}
    assert ("simulated_annealing", "ml") in algorithms
    assert ("greedy", "ml") in algorithms
    assert ("genetic", "ml") in algorithms
    # No algorithm may return something worse than the unoptimized design by
    # more than a small tolerance (they all keep the best candidate seen).
    for row in result.rows:
        assert row.ground_truth_delay_ps <= result.initial_delay_ps * 1.10
        assert row.cost_evaluations > 0
