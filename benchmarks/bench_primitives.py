"""Micro-benchmarks of the per-iteration primitives.

These are the operations whose relative cost drives Fig. 2 and Table IV:
graph processing (proxy metrics), feature extraction + ML inference, and
technology mapping + STA.  Unlike the table/figure benchmarks these use
pytest-benchmark's normal repeated measurement, so the numbers are stable
enough to compare across machines and library versions.
"""

import pytest

from repro.designs.registry import build_design
from repro.evaluation import GroundTruthEvaluator
from repro.features.extract import FeatureExtractor
from repro.library.sky130_lite import load_sky130_lite
from repro.mapping.mapper import TechnologyMapper
from repro.ml.gbdt import GbdtParams, GradientBoostingRegressor
from repro.sta.analysis import analyze_timing
from repro.transforms.engine import apply_script


@pytest.fixture(scope="module")
def small_design():
    return build_design("EX68")


@pytest.fixture(scope="module")
def large_design():
    return build_design("EX16")


@pytest.fixture(scope="module")
def library():
    return load_sky130_lite()


@pytest.fixture(scope="module")
def trained_small_model(small_design):
    extractor = FeatureExtractor()
    import numpy as np

    rng = np.random.default_rng(0)
    base = extractor.extract(small_design)
    features = base + rng.normal(0.0, 0.05 * (np.abs(base) + 1.0), size=(64, base.size))
    labels = 1000.0 + 5.0 * features[:, 1] + rng.normal(0.0, 10.0, size=64)
    model = GradientBoostingRegressor(GbdtParams(n_estimators=150, max_depth=5), rng=0)
    model.fit(features, labels)
    return model, extractor


def test_proxy_metric_evaluation(benchmark, large_design):
    """Baseline flow cost evaluation: depth + node count."""
    benchmark(lambda: (large_design.depth(), large_design.num_ands))


def test_feature_extraction(benchmark, large_design):
    """Table II feature extraction on a large design."""
    extractor = FeatureExtractor()
    benchmark(extractor.extract, large_design)


def test_ml_inference(benchmark, small_design, trained_small_model):
    """Feature extraction + GBDT inference (the ML flow's per-iteration cost)."""
    model, extractor = trained_small_model

    def infer():
        features = extractor.extract(small_design).reshape(1, -1)
        return model.predict(features)[0]

    benchmark(infer)


def test_technology_mapping(benchmark, small_design, library):
    """Cut-based mapping of a small design."""
    mapper = TechnologyMapper(library)
    benchmark(mapper.map, small_design)


def test_mapping_plus_sta(benchmark, large_design, library):
    """Full ground-truth evaluation (mapping + STA) on a large design."""
    evaluator = GroundTruthEvaluator(library)
    benchmark(evaluator.evaluate, large_design)


def test_sta_only(benchmark, large_design, library):
    """STA on an already mapped netlist."""
    netlist = TechnologyMapper(library).map(large_design)
    benchmark(lambda: analyze_timing(netlist, po_load_ff=library.po_load_ff))


def test_balance_transform(benchmark, large_design):
    """The cheapest structural transform (balance)."""
    benchmark(lambda: apply_script(large_design, "b").aig)


def test_compress_script(benchmark, small_design):
    """A composite optimization script on a small design."""
    benchmark(lambda: apply_script(small_design, "compress").aig)
