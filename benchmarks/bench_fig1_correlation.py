"""Fig. 1 benchmark — proxy (AIG level) vs post-mapping delay correlation.

Paper reference: Pearson correlation ~0.74 on a multiplier's AIG variants,
with the best post-mapping delay not at the minimum level.
"""

from conftest import run_once

from repro.experiments.fig1_correlation import run_fig1_correlation


def test_fig1_proxy_correlation(benchmark, bench_config, save_result):
    samples = max(bench_config.samples_per_design, 24)

    result = run_once(
        benchmark,
        lambda: run_fig1_correlation(design="mult", samples=samples, seed=bench_config.seed),
    )

    save_result("fig1_correlation", result.format_table())
    # Shape checks mirroring the paper's observations: the proxy is positively
    # but imperfectly correlated with the true delay.
    assert 0.0 < result.pearson < 1.0
    assert result.best_delay_ps <= result.delay_at_min_level_ps
    assert len(result.levels) >= 10
