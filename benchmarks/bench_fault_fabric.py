"""Fault-fabric overhead — leases and progress journals must be near-free.

The lease fabric (claim files, heartbeats, audit logs) and the progress
journal add filesystem traffic per executed cell; the fault hooks add one
env lookup per call site.  This benchmark prices all three against the
plain sharded engine on a matrix of trivial cells, so a regression that
makes the robustness layer expensive shows up as a number, not a feeling.

* ``REPRO_BENCH_FABRIC_CELLS`` — matrix size (default 64)
"""

import os
import time

from conftest import run_once

from repro.campaign import EngineCell, ShardedResultStore, run_cells, strip_timing
from repro.campaign.store import canonical_records
from repro.devtools.faults import fault_hook
from repro.experiments.report import format_table


def tiny_cell(payload):
    return {"value": int(payload["x"]) * 2 + 1}


def _cells(count):
    return [
        EngineCell(f"cell-{index:03d}", "bench_fault_fabric:tiny_cell", {"x": index})
        for index in range(count)
    ]


def _run(tmp_path, name, **kwargs):
    store = ShardedResultStore(tmp_path / name, shard="w1")
    start = time.perf_counter()
    summary = run_cells(_cells(_cell_count()), store, **kwargs)
    elapsed = time.perf_counter() - start
    assert summary.ok
    return store, elapsed


def _cell_count():
    try:
        return int(os.environ.get("REPRO_BENCH_FABRIC_CELLS", 64))
    except ValueError:
        return 64


def test_lease_fabric_overhead(benchmark, tmp_path, save_result):
    plain_store, plain_s = _run(tmp_path, "plain")

    def leased():
        return _run(tmp_path / "runs", "leased", lease_ttl_s=30.0,
                    quarantine_after=3)

    leased_store, leased_s = run_once(benchmark, leased)

    # The fabric must not change a single record (modulo wall clock).
    assert [strip_timing(r) for r in canonical_records(leased_store)] == [
        strip_timing(r) for r in canonical_records(plain_store)
    ]

    count = _cell_count()
    per_cell_us = (leased_s - plain_s) / count * 1e6
    rows = [
        ("plain sharded", f"{plain_s:.3f}", "-"),
        ("lease fabric", f"{leased_s:.3f}", f"{per_cell_us:+.0f}"),
    ]
    save_result(
        "fault_fabric_overhead",
        format_table(
            ("engine", "wall s", "delta us/cell"),
            rows,
            title=f"Lease-fabric overhead ({count} trivial cells)",
        ),
    )


def test_fault_hook_is_free_when_unarmed(benchmark, save_result):
    os.environ.pop("REPRO_FAULT_PLAN", None)
    calls = 100_000

    def hammer():
        for index in range(calls):
            fault_hook("cell", key="bench")
        return calls

    run_once(benchmark, hammer)
    per_call_ns = benchmark.stats["mean"] / calls * 1e9
    save_result(
        "fault_hook_overhead",
        format_table(
            ("calls", "ns/call"),
            [(str(calls), f"{per_call_ns:.0f}")],
            title="Unarmed fault_hook cost",
        ),
    )
    # One env lookup: anything beyond a few microseconds means the fast
    # path grew real work.
    assert per_call_ns < 5_000
