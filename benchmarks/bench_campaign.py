"""Campaign engine scaling — serial vs 4-worker wall clock on a tiny matrix.

The campaign engine's pitch is that suite runs (the paper's Fig. 2 /
Table III/IV sweeps) stop being single-core: independent cells fan out
across a process pool while the crash-safe store keeps the run resumable.
This benchmark runs the same 8-cell matrix (2 designs × 2 flows × 2 seeds)
at 1 and at 4 workers, records the measured speedup, and — the engine's
harder guarantee — checks the two stores are identical modulo wall-clock
fields.

On a ≥4-core machine (e.g. the CI runners) the speedup is near-linear and
asserted to be ≥2x; on smaller hosts the measured number is still recorded
so the table shows what the hardware allowed.

* ``REPRO_BENCH_CAMPAIGN_ITERS`` — SA iterations per cell (default 6)
"""

import os
import time

from conftest import run_once

from repro.campaign import CampaignSpec, ResultStore, run_campaign, strip_timing
from repro.experiments.report import format_table


def _spec() -> CampaignSpec:
    iterations = int(os.environ.get("REPRO_BENCH_CAMPAIGN_ITERS", 6))
    return CampaignSpec(
        designs=("EX68", "EX00"),
        flows=("baseline", "ground_truth"),
        optimizers=("sa",),
        evaluators=("cached",),
        seeds=(1, 2),
        iterations=iterations,
    )


def test_campaign_worker_scaling(benchmark, save_result, tmp_path):
    spec = _spec()
    cells = len(spec.expand())

    # Warm-up pass so library parsing / design construction caches are hot
    # for both measurements (pool workers fork from this warmed process).
    run_campaign(spec, ResultStore(), max_workers=1)

    serial_store = ResultStore(tmp_path / "serial.jsonl")
    start = time.perf_counter()
    summary_serial = run_campaign(spec, serial_store, max_workers=1)
    serial_seconds = time.perf_counter() - start

    def parallel_run():
        store = ResultStore(tmp_path / "parallel.jsonl")
        begin = time.perf_counter()
        summary = run_campaign(spec, store, max_workers=4)
        return time.perf_counter() - begin, store, summary

    parallel_seconds, parallel_store, summary_parallel = run_once(
        benchmark, parallel_run
    )
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0

    table = format_table(
        ["workers", "cells", "wall clock (s)", "speedup"],
        [
            (1, cells, f"{serial_seconds:.2f}", "1.00x"),
            (4, cells, f"{parallel_seconds:.2f}", f"{speedup:.2f}x"),
        ],
        title=(
            "Campaign engine scaling — 2 designs × 2 flows × 2 seeds "
            f"(host: {os.cpu_count() or 1} CPUs)"
        ),
    )
    save_result("campaign_speedup", table)

    assert summary_serial.ok and summary_parallel.ok
    assert summary_serial.executed == cells and summary_parallel.executed == cells
    # Reproducibility at any worker count: same records, same order, modulo
    # the wall-clock fields.
    assert [strip_timing(r) for r in serial_store.records] == [
        strip_timing(r) for r in parallel_store.records
    ]
    # Near-linear scaling is only physically possible with enough cores.
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0
