"""Table IV benchmark — per-iteration runtime of the three flows.

Paper reference: replacing mapping+STA with feature extraction + ML inference
cuts the per-iteration overhead by 80.8 % on average (max 88.8 %) while the
baseline column (transform + graph processing) is unchanged across flows.
"""

from conftest import run_once

from repro.experiments.table4_runtime import run_table4_runtime


def test_table4_flow_runtimes(benchmark, bench_config, bench_models, save_result):
    delay_model, _ = bench_models

    result = run_once(
        benchmark,
        lambda: run_table4_runtime(delay_model, bench_config, repeats=3),
    )

    save_result("table4_runtime", result.format_table())

    assert len(result.rows) == len(bench_config.all_designs())
    for row in result.rows:
        # ML inference must be cheaper than mapping + STA on every design.
        assert row.ml_inference_seconds < row.mapping_sta_seconds
    # Paper reports ~81 % average reduction; require a comfortable margin of
    # the same effect rather than the exact number.
    assert result.mean_reduction > 0.5
    assert result.max_reduction > result.mean_reduction
