"""Extension benchmark — learning curve over the training-set size.

The paper trains on 40 000 variants per design; this harness defaults to a
few dozen.  The learning curve quantifies the accuracy cost of that scaling
knob: unseen-design error at increasing samples-per-design, reusing the same
labelled corpora for every point.
"""

from conftest import run_once

from repro.experiments.learning_curve import run_learning_curve


def test_learning_curve(benchmark, bench_config, bench_corpora, save_result):
    _, corpora = bench_corpora
    largest = bench_config.samples_per_design
    counts = sorted({max(4, largest // 4), max(6, largest // 2), largest})

    result = run_once(
        benchmark,
        lambda: run_learning_curve(bench_config, sample_counts=counts, corpora=corpora),
    )

    save_result("learning_curve", result.format_table())

    assert len(result.points) == len(counts)
    # More data must not make the unseen-design error dramatically worse:
    # the largest training set should be within 25% of the best point seen.
    final = result.points[-1].test_error_percent
    assert final <= result.best_test_error * 1.25 + 1.0
    # Training error stays small at every size (the model can fit its data).
    assert all(point.train_error_percent < 25.0 for point in result.points)
