"""Fig. 2 benchmark — per-iteration runtime, baseline vs ground-truth flow.

Paper reference: the ground-truth flow is up to ~20x slower per iteration,
with the gap growing with design size.  In this pure-Python stack the
transformation step is relatively more expensive than in ABC, so the absolute
ratio is smaller; the shape (ground truth strictly slower, overhead grows
with design size) is asserted here.
"""

import os

from conftest import run_once

from repro.experiments.fig2_runtime import run_fig2_incremental, run_fig2_runtime


def test_fig2_runtime_comparison(benchmark, bench_config, save_result):
    result = run_once(benchmark, lambda: run_fig2_runtime(bench_config))

    save_result("fig2_runtime", result.format_table())

    assert len(result.rows) == len(bench_config.all_designs())
    for row in result.rows:
        assert row.ground_truth_seconds > row.baseline_seconds
    assert result.max_slowdown > 1.0

    # The mapping+STA overhead should grow with design size: the largest
    # design's absolute overhead must exceed the smallest design's.
    ordered = sorted(result.rows, key=lambda r: r.num_ands)
    overhead_small = ordered[0].ground_truth_seconds - ordered[0].baseline_seconds
    overhead_large = ordered[-1].ground_truth_seconds - ordered[-1].baseline_seconds
    assert overhead_large > overhead_small


def test_fig2_incremental_visit_reduction(benchmark, bench_config, save_result):
    """SA on the largest seed design with the incremental evaluator.

    At full scale (>= 100 SA iterations; override with
    ``REPRO_BENCH_INC_ITERS``) the incremental engine must perform at most
    half the match-DP node visits a from-scratch evaluator would: revisited
    structures are free and locally perturbed candidates only re-map their
    dirty cone.  Quick/smoke runs only assert the accounting invariants —
    with just a handful of iterations the state pool never warms up.
    """
    try:
        iterations = int(os.environ.get("REPRO_BENCH_INC_ITERS", 120))
    except ValueError:
        iterations = 120
    result = run_once(
        benchmark, lambda: run_fig2_incremental(bench_config, iterations=iterations)
    )

    save_result("fig2_incremental", result.format_table())

    assert len(result.rows) == 1
    row = result.rows[0]
    assert row.dp_nodes_evaluated <= row.dp_nodes_possible
    assert row.evaluations >= iterations
    if iterations >= 100:
        assert row.visit_reduction >= 2.0
