"""Command-line interface.

A thin argparse front end over the library so common one-off tasks do not
require writing a script::

    python -m repro stats EX68
    python -m repro optimize EX00 --script compress2
    python -m repro map mult --verilog mapped.v
    python -m repro postopt EX08
    python -m repro features EX68
    python -m repro train EX00 EX68 --samples 20 --model delay.json
    python -m repro predict EX68 --model delay.json --ppa
    python -m repro flow EX68 --flow ml --model delay.json --iterations 30
    python -m repro convert design.aag --bench design.bench --dot design.dot

Design arguments accept either a registered benchmark name (EX00…EX68,
``mult``) or a path to an AIGER (ASCII ``.aag`` / binary ``.aig``), BENCH, or
BLIF file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.api import OptimizeRequest, SynthesisSession, default_session
from repro.api.session import load_design
from repro.campaign import (
    DEFAULT_QUARANTINE_AFTER,
    CampaignSpec,
    campaign_report,
    campaign_status,
    diff_stores,
    merge_store,
    open_store,
    requeue_cells,
    run_campaign,
)
from repro.designs.registry import ALL_DESIGNS
from repro.errors import ReproError
from repro.features.extract import FeatureExtractor
from repro.io.aiger import write_aag
from repro.io.aiger_binary import write_aig_binary
from repro.io.bench import write_bench
from repro.io.blif import write_blif
from repro.io.dot import write_aig_dot
from repro.io.verilog import write_aig_verilog, write_mapped_verilog
from repro.sta.report import format_cell_usage, format_timing_report
from repro.transforms.scripts import NAMED_SCRIPTS


def _session() -> SynthesisSession:
    """The shared session every CLI command runs against."""
    return default_session()


def _cmd_stats(args: argparse.Namespace) -> int:
    session = _session()
    aig = session.load_design(args.design)
    stats = aig.stats()
    print(f"design   : {stats.name}")
    print(f"inputs   : {stats.num_pis}")
    print(f"outputs  : {stats.num_pos}")
    print(f"and nodes: {stats.num_ands}")
    print(f"depth    : {stats.depth}")
    if args.ppa:
        result = session.evaluate(aig)
        print(f"mapped gates     : {result.num_gates}")
        print(f"post-map delay   : {result.delay_ps:.1f} ps")
        print(f"post-map area    : {result.area_um2:.1f} um^2")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    session = _session()
    aig = session.load_design(args.design)
    before = aig.stats()
    result = session.transform(aig, args.script, verify=args.verify)
    after = result.final_stats
    print(result.summary())
    print(
        f"total: ands {before.num_ands} -> {after.num_ands}, "
        f"depth {before.depth} -> {after.depth}"
    )
    if args.output:
        write_aag(result.aig, args.output)
        print(f"wrote optimized AIG to {args.output}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    result = _session().map(args.design)
    print(format_timing_report(result.netlist, result.timing))
    print()
    print(format_cell_usage(result.netlist))
    if args.verilog:
        write_mapped_verilog(result.netlist, args.verilog)
        print(f"\nwrote mapped Verilog to {args.verilog}")
    return 0


def _cmd_features(args: argparse.Namespace) -> int:
    aig = load_design(args.design)
    extractor = FeatureExtractor()
    for name, value in extractor.extract_dict(aig).items():
        print(f"{name:42s} {value:14.4f}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    aig = load_design(args.design)
    wrote = False
    if args.aag:
        write_aag(aig, args.aag)
        print(f"wrote {args.aag}")
        wrote = True
    if args.aig:
        write_aig_binary(aig, args.aig)
        print(f"wrote {args.aig}")
        wrote = True
    if args.bench:
        write_bench(aig, args.bench)
        print(f"wrote {args.bench}")
        wrote = True
    if args.blif:
        write_blif(aig, args.blif)
        print(f"wrote {args.blif}")
        wrote = True
    if args.verilog:
        write_aig_verilog(aig, args.verilog)
        print(f"wrote {args.verilog}")
        wrote = True
    if args.dot:
        write_aig_dot(aig, args.dot)
        print(f"wrote {args.dot}")
        wrote = True
    if not wrote:
        print(
            "nothing to do: pass at least one of "
            "--aag/--aig/--bench/--blif/--verilog/--dot"
        )
        return 1
    return 0


def _cmd_postopt(args: argparse.Namespace) -> int:
    from repro.mapping.mapper import TechnologyMapper
    from repro.mapping.postopt import PostMappingOptimizer, PostOptOptions

    session = _session()
    aig = session.load_design(args.design)
    library = session.library
    netlist = TechnologyMapper(library).map(aig)
    options = PostOptOptions(
        enable_sizing=not args.no_sizing,
        enable_area_recovery=not args.no_area_recovery,
        enable_buffering=not args.no_buffering,
        max_passes=args.passes,
    )
    optimized, report = PostMappingOptimizer(library, options).optimize(netlist)
    print(f"design            : {aig.name} ({netlist.num_gates} gates mapped)")
    print(f"delay before      : {report.delay_before_ps:.1f} ps")
    print(f"delay after       : {report.delay_after_ps:.1f} ps "
          f"({report.delay_improvement_percent:+.2f}% better)")
    print(f"area before       : {report.area_before_um2:.1f} um^2")
    print(f"area after        : {report.area_after_um2:.1f} um^2 "
          f"({report.area_change_percent:+.2f}%)")
    print(f"upsized gates     : {report.upsized_gates}")
    print(f"downsized gates   : {report.downsized_gates}")
    print(f"buffers inserted  : {report.buffers_inserted}")
    if args.verilog:
        write_mapped_verilog(optimized, args.verilog)
        print(f"wrote optimized mapped Verilog to {args.verilog}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.ml.gbdt import GbdtParams
    from repro.ml.model_io import save_gbdt

    result = _session().train_model(
        args.designs,
        samples=args.samples,
        target=args.target,
        seed=args.seed,
        params=GbdtParams(
            n_estimators=args.estimators,
            learning_rate=args.learning_rate,
            max_depth=args.max_depth,
        ),
    )
    for name, corpus in result.corpora.items():
        print(f"labelled {len(corpus.aigs)} variants of {name}")
    print(
        f"training fit ({args.target}): mean %err "
        f"{result.mean_fit_error_percent:.2f}, max {result.max_fit_error_percent:.2f}"
    )
    save_gbdt(result.model, args.model)
    print(f"wrote model to {args.model}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    session = _session()
    aig = session.load_design(args.design)
    predicted = session.predict(aig, args.model)
    print(f"predicted post-mapping delay = {predicted:.1f} ps")
    if args.ppa:
        result = session.evaluate(aig)
        error = abs(predicted - result.delay_ps) / result.delay_ps * 100.0
        print(f"ground-truth delay           = {result.delay_ps:.1f} ps  (error {error:.2f}%)")
        print(f"ground-truth area            = {result.area_um2:.1f} um^2")
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    if args.flow in ("ml", "hybrid") and not args.model:
        print("error: --model is required for the ml and hybrid flows", file=sys.stderr)
        return 2
    if args.evaluator is None:
        # Default: the shared session (cached ground-truth evaluation).
        session = _session()
    else:
        session = SynthesisSession(evaluator_kind=args.evaluator)
    needs_model = args.flow in ("ml", "hybrid")
    result = session.optimize(
        OptimizeRequest(
            design=args.design,
            flow=args.flow,
            iterations=args.iterations,
            delay_weight=args.delay_weight,
            area_weight=args.area_weight,
            seed=args.seed,
            delay_model=args.model if needs_model else None,
            validate_every=args.validate_every,
        )
    )
    initial = result.initial
    print(f"flow               : {result.flow}")
    print(f"iterations         : {args.iterations}")
    print(f"initial delay/area : {initial.delay_ps:.1f} ps / {initial.area_um2:.1f} um^2")
    print(f"final   delay/area : {result.delay_ps:.1f} ps / {result.area_um2:.1f} um^2")
    print(f"accepted moves     : {result.annealing.accepted_moves}")
    print(f"runtime            : {result.annealing.runtime_seconds:.2f} s")
    flow = result.flow_instance
    last_cost = getattr(flow, "last_cost", None)
    if args.flow == "hybrid" and last_cost is not None:
        summary = last_cost.validation_summary()
        print(
            f"hybrid validation  : {summary.checks} checks, "
            f"mean %err {summary.mean_delay_error_percent:.2f}, "
            f"correction {summary.final_correction:.3f}"
        )
    if args.evaluator == "incremental":
        stats = session.evaluator_stats
        if stats is not None:
            print(
                f"incremental eval   : {stats.incremental_maps} incremental / "
                f"{stats.full_maps} full / {stats.structural_hits} hits, "
                f"node visits {stats.dp_nodes_evaluated}/{stats.dp_nodes_possible} "
                f"({stats.dp_visit_reduction:.2f}x reduction)"
            )
    if args.output:
        write_aag(result.best_aig, args.output)
        print(f"wrote optimized AIG to {args.output}")
    return 0


def _campaign_spec(args: argparse.Namespace) -> CampaignSpec:
    return CampaignSpec(
        designs=tuple(args.designs),
        flows=tuple(args.flows),
        optimizers=tuple(args.optimizers),
        evaluators=tuple(args.evaluators),
        seeds=tuple(args.seeds),
        iterations=args.iterations,
        delay_weight=args.delay_weight,
        area_weight=args.area_weight,
        delay_model=str(args.model) if args.model else None,
        area_model=str(args.area_model) if args.area_model else None,
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = _campaign_spec(args)
    store = open_store(args.store, shard=args.shard)

    def progress(record) -> None:
        status = record.get("status")
        label = f"cell {record['cell_id']}"
        if status == "ok":
            print(f"{label}: ok ({record.get('cell_seconds', 0.0):.2f}s)")
        else:
            print(f"{label}: FAILED — {record.get('error')}")

    summary = run_campaign(
        spec,
        store,
        max_workers=args.workers,
        on_record=progress,
        scheduler=args.scheduler,
        timeout_s=args.timeout,
        retries=args.retries,
        lease_ttl_s=args.lease_ttl,
        quarantine_after=args.quarantine_after,
        warm_start=not args.no_warm_start,
    )
    extras = ""
    if summary.recovered:
        extras += f", {summary.recovered} recovered from journal"
    if summary.quarantined:
        extras += f", {len(summary.quarantined)} quarantined"
    print(
        f"campaign: {summary.total} cells, {summary.skipped} already done, "
        f"{summary.executed} executed, {len(summary.failed)} failed{extras}"
    )
    for cell_id in summary.quarantined:
        print(f"  quarantined {cell_id} (repro campaign requeue to re-arm)")
    print(f"store: {store.path}")
    return 0 if summary.ok else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    store = open_store(args.store)
    if args.designs:
        status = campaign_status(_campaign_spec(args), store)
        print(f"total cells : {status.total}")
        print(f"completed   : {status.completed}")
        print(f"failed      : {status.failed}")
        print(f"pending     : {status.pending}")
        if status.quarantined:
            print(f"quarantined : {status.quarantined}")
        if status.pending and args.verbose:
            for cell_id in status.pending_ids:
                print(f"  pending {cell_id}")
        for cell_id in status.quarantined_ids:
            print(f"  quarantined {cell_id} (repro campaign requeue to re-arm)")
        return 0 if status.done else 1
    from repro.campaign import quarantine_markers

    latest = store.latest()
    ok = sum(1 for record in latest.values() if record.get("status") == "ok")
    quarantined = quarantine_markers(store)
    print(f"records     : {len(store)} ({len(latest)} distinct cells)")
    print(f"completed   : {ok}")
    print(f"failed      : {len(latest) - ok}")
    if quarantined:
        print(f"quarantined : {len(quarantined)}")
        for record in quarantined:
            print(
                f"  quarantined {record['cell_id']} "
                f"({record.get('failed_attempts', '?')} failed attempts)"
            )
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    store = open_store(args.store)
    if len(store) == 0:
        print(f"error: store {args.store} is empty or missing", file=sys.stderr)
        return 2
    if args.baseline is not None:
        baseline = open_store(args.baseline)
        if len(baseline) == 0:
            print(
                f"error: baseline store {args.baseline} is empty or missing",
                file=sys.stderr,
            )
            return 2
        diff = diff_stores(store, baseline, tolerance_percent=args.tolerance)
        print(diff.format_report())
        return 0 if diff.ok else 1
    print(campaign_report(store).format_report())
    return 0


def _cmd_campaign_requeue(args: argparse.Namespace) -> int:
    store = open_store(args.store, shard=args.shard)
    if not args.all and not args.cell:
        print("error: pass --cell ID (repeatable) or --all", file=sys.stderr)
        return 2
    cleared = requeue_cells(
        store,
        cell_ids=None if args.all else args.cell,
        threshold=args.quarantine_after,
    )
    if not cleared:
        print("no quarantined cells matched; nothing requeued")
        return 0
    for cell_id in cleared:
        print(f"requeued {cell_id}")
    print(f"{len(cleared)} cell(s) will run again on the next campaign run")
    return 0


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    source = open_store(args.store)
    if len(source) == 0:
        print(f"error: store {args.store} is empty or missing", file=sys.stderr)
        return 2
    merged = merge_store(source, args.output)
    print(f"merged {len(source)} records into {len(merged)} cells: {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import create_service

    overrides = {
        "host": args.host,
        "port": args.port,
        "workers": args.workers,
        "store": str(args.store) if args.store else None,
        "max_queue": args.max_queue,
        "max_budget": args.max_budget,
        "retries": args.retries,
    }
    if args.timeout is not None:
        overrides["timeout_s"] = args.timeout
    service = create_service(**overrides)
    # Machine-parsable boot lines: tests and scripts read the bound URL.
    print(f"repro service listening on {service.url}", flush=True)
    print(f"repro service store: {service.manager.store_dir}", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # The lint tool owns its full argument surface (it is also runnable as
    # ``python -m repro.devtools.lint.cli``); forward everything verbatim.
    from repro.devtools.lint.cli import main as lint_main

    return lint_main(args.lint_args)


def _add_campaign_matrix_args(parser: argparse.ArgumentParser, required: bool) -> None:
    parser.add_argument(
        "--designs",
        nargs="+",
        required=required,
        default=None if required else [],
        help="registry names (EX00…EX68, mult) and/or .aag/.aig/.bench/.blif/.v files",
    )
    parser.add_argument("--flows", nargs="+", default=["baseline"])
    parser.add_argument(
        "--optimizers", nargs="+", default=["sa"], help="any of: sa, greedy, genetic"
    )
    parser.add_argument("--evaluators", nargs="+", default=["cached"])
    parser.add_argument("--seeds", nargs="+", type=int, default=[0])
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument("--delay-weight", type=float, default=1.0)
    parser.add_argument("--area-weight", type=float, default=1.0)
    parser.add_argument("--model", type=Path, help="delay model JSON (ml/hybrid flows)")
    parser.add_argument("--area-model", type=Path, help="area model JSON")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AIG logic optimization with ML-based timing prediction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser("stats", help="print AIG statistics")
    stats.add_argument("design", help=f"design name ({', '.join(ALL_DESIGNS)}, mult) or file")
    stats.add_argument("--ppa", action="store_true", help="also run mapping + STA")
    stats.set_defaults(handler=_cmd_stats)

    optimize = subparsers.add_parser("optimize", help="apply a transformation script")
    optimize.add_argument("design")
    optimize.add_argument(
        "--script", default="compress2", help=f"script name {sorted(NAMED_SCRIPTS)} or primitive"
    )
    optimize.add_argument("--verify", action="store_true", help="check equivalence per step")
    optimize.add_argument("--output", type=Path, help="write the optimized AIG (AIGER)")
    optimize.set_defaults(handler=_cmd_optimize)

    map_cmd = subparsers.add_parser("map", help="technology-map a design and run STA")
    map_cmd.add_argument("design")
    map_cmd.add_argument("--verilog", type=Path, help="write the mapped netlist as Verilog")
    map_cmd.set_defaults(handler=_cmd_map)

    features = subparsers.add_parser("features", help="print the Table II feature vector")
    features.add_argument("design")
    features.set_defaults(handler=_cmd_features)

    convert = subparsers.add_parser("convert", help="convert between circuit formats")
    convert.add_argument("design")
    convert.add_argument("--aag", type=Path)
    convert.add_argument("--aig", type=Path, help="binary AIGER output")
    convert.add_argument("--bench", type=Path)
    convert.add_argument("--blif", type=Path)
    convert.add_argument("--verilog", type=Path)
    convert.add_argument("--dot", type=Path, help="Graphviz DOT output")
    convert.set_defaults(handler=_cmd_convert)

    postopt = subparsers.add_parser(
        "postopt", help="map a design and run post-mapping sizing/buffering"
    )
    postopt.add_argument("design")
    postopt.add_argument("--passes", type=int, default=3)
    postopt.add_argument("--no-sizing", action="store_true")
    postopt.add_argument("--no-area-recovery", action="store_true")
    postopt.add_argument("--no-buffering", action="store_true")
    postopt.add_argument("--verilog", type=Path, help="write the optimized mapped Verilog")
    postopt.set_defaults(handler=_cmd_postopt)

    train = subparsers.add_parser(
        "train", help="train a delay/area predictor on design variants"
    )
    train.add_argument("designs", nargs="+", help="design names or circuit files")
    train.add_argument("--model", type=Path, required=True, help="output model JSON path")
    train.add_argument("--target", choices=("delay", "area"), default="delay")
    train.add_argument("--samples", type=int, default=30, help="variants per design")
    train.add_argument("--estimators", type=int, default=250)
    train.add_argument("--learning-rate", type=float, default=0.06)
    train.add_argument("--max-depth", type=int, default=6)
    train.add_argument("--seed", type=int, default=2025)
    train.set_defaults(handler=_cmd_train)

    predict = subparsers.add_parser(
        "predict", help="predict post-mapping delay with a trained model"
    )
    predict.add_argument("design")
    predict.add_argument("--model", type=Path, required=True, help="model JSON from 'train'")
    predict.add_argument("--ppa", action="store_true", help="also run mapping + STA to compare")
    predict.set_defaults(handler=_cmd_predict)

    flow = subparsers.add_parser(
        "flow", help="run a simulated-annealing optimization flow"
    )
    flow.add_argument("design")
    flow.add_argument(
        "--flow",
        choices=("baseline", "ground-truth", "ml", "hybrid"),
        default="baseline",
        dest="flow",
    )
    flow.add_argument("--model", type=Path, help="trained delay model (ml / hybrid flows)")
    flow.add_argument(
        "--evaluator",
        choices=("ground-truth", "cached", "parallel", "incremental"),
        default=None,
        help="PPA evaluation strategy (default: the shared cached evaluator); "
        "'incremental' re-maps and re-times only the dirty cone per candidate",
    )
    flow.add_argument("--iterations", type=int, default=30)
    flow.add_argument("--delay-weight", type=float, default=1.0)
    flow.add_argument("--area-weight", type=float, default=1.0)
    flow.add_argument("--validate-every", type=int, default=10, help="hybrid flow only")
    flow.add_argument("--seed", type=int, default=1)
    flow.add_argument("--output", type=Path, help="write the best AIG (AIGER)")
    flow.set_defaults(handler=_cmd_flow)

    campaign = subparsers.add_parser(
        "campaign",
        help="resumable suite runs: designs × flows × optimizers × seeds",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="run (or resume) a campaign against a JSONL result store"
    )
    campaign_run.add_argument(
        "--store",
        type=Path,
        required=True,
        help="result store: a .jsonl file (single writer) or a directory "
        "(sharded, one file per writer — several machines can share it)",
    )
    _add_campaign_matrix_args(campaign_run, required=True)
    campaign_run.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = in-process)"
    )
    campaign_run.add_argument(
        "--scheduler",
        choices=("matrix", "cost"),
        default="matrix",
        help="cell submission order: legacy matrix order, or slowest "
        "expected cost first (refined from observed runtimes in the store)",
    )
    campaign_run.add_argument(
        "--shard",
        default=None,
        help="writer name inside a sharded store directory "
        "(default: <hostname>-<pid>)",
    )
    campaign_run.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell timeout in seconds (a timed-out cell records an "
        "error result and frees its worker slot; default: no timeout)",
    )
    campaign_run.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a failed cell this many times with backoff before "
        "its error record is final",
    )
    campaign_run.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help="claim cells via TTL'd leases (seconds) before executing, so "
        "concurrent writers on one sharded store never duplicate work and "
        "a dead writer's cells are stolen after the TTL (sharded stores "
        "only; default: no leases)",
    )
    campaign_run.add_argument(
        "--quarantine-after",
        type=int,
        default=None,
        help="quarantine a cell after this many failed attempts across all "
        "writers (timeouts and writer crashes count); quarantined cells "
        "are skipped until 'campaign requeue' (default: never)",
    )
    campaign_run.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable the warm-start sidecars next to the store (PPA cache "
        "snapshots seeded into worker sessions on resume, and observed "
        "runtime calibration for the cost scheduler); results are "
        "identical either way, cold resumes just recompute more",
    )
    campaign_run.set_defaults(handler=_cmd_campaign_run)

    campaign_status_p = campaign_sub.add_parser(
        "status", help="progress of a store (vs a matrix when --designs is given)"
    )
    campaign_status_p.add_argument("--store", type=Path, required=True)
    campaign_status_p.add_argument(
        "--verbose", action="store_true", help="list pending cell ids"
    )
    _add_campaign_matrix_args(campaign_status_p, required=False)
    campaign_status_p.set_defaults(handler=_cmd_campaign_status)

    campaign_report_p = campaign_sub.add_parser(
        "report", help="aggregate a store into a suite report (or diff two stores)"
    )
    campaign_report_p.add_argument("--store", type=Path, required=True)
    campaign_report_p.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline store to diff against, with per-cell regressions "
        "highlighted (single-file or sharded; exit code 1 on regressions)",
    )
    campaign_report_p.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="regression tolerance in percent for --baseline diffs",
    )
    campaign_report_p.set_defaults(handler=_cmd_campaign_report)

    campaign_requeue = campaign_sub.add_parser(
        "requeue",
        help="clear quarantined poison cells so the next run retries them",
    )
    campaign_requeue.add_argument(
        "--store", type=Path, required=True, help="result store (file or shard dir)"
    )
    campaign_requeue.add_argument(
        "--cell",
        action="append",
        default=[],
        metavar="ID",
        help="requeue this cell id (repeatable)",
    )
    campaign_requeue.add_argument(
        "--all", action="store_true", help="requeue every quarantined cell"
    )
    campaign_requeue.add_argument(
        "--quarantine-after",
        type=int,
        default=DEFAULT_QUARANTINE_AFTER,
        help="failure threshold the quarantine was derived with "
        f"(default {DEFAULT_QUARANTINE_AFTER})",
    )
    campaign_requeue.add_argument(
        "--shard",
        default=None,
        help="writer name for the requeue markers in a sharded store "
        "(default: <hostname>-<pid>)",
    )
    campaign_requeue.set_defaults(handler=_cmd_campaign_requeue)

    campaign_merge = campaign_sub.add_parser(
        "merge",
        help="compact a store (e.g. a shard directory) into one canonical "
        "JSONL file, latest record per cell, sorted by cell id",
    )
    campaign_merge.add_argument(
        "--store", type=Path, required=True, help="source store (file or shard dir)"
    )
    campaign_merge.add_argument(
        "--output", type=Path, required=True, help="merged single-file store to write"
    )
    campaign_merge.set_defaults(handler=_cmd_campaign_merge)

    serve = subparsers.add_parser(
        "serve",
        help="run the synthesis job service (HTTP, campaign engine backend)",
    )
    serve.add_argument("--host", default=None, help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None, help="bind port; 0 picks a free port"
    )
    serve.add_argument(
        "--workers", type=int, default=None, help="background worker threads"
    )
    serve.add_argument(
        "--store",
        type=Path,
        default=None,
        help="job store directory (journal + results + uploads); jobs "
        "resume from it after a crash or restart",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None, help="unfinished-job cap before 429"
    )
    serve.add_argument(
        "--max-budget",
        type=int,
        default=None,
        help="per-job optimizer iteration cap (over-budget submissions are "
        "rejected at submit time)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, help="per-job cell timeout in seconds"
    )
    serve.add_argument(
        "--retries", type=int, default=None, help="per-job retry count on failure"
    )
    serve.set_defaults(handler=_cmd_serve)

    lint = subparsers.add_parser(
        "lint",
        help="static analysis: determinism & concurrency invariants "
        "(rules D1-D5, C1-C3; see `repro lint --list-rules`)",
        add_help=False,
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:]) if argv is None else list(argv)
    if arguments[:1] == ["lint"]:
        # Dispatch before argparse: the lint tool owns its own option
        # surface, and argparse's REMAINDER refuses leading option strings.
        from repro.devtools.lint.cli import main as lint_main

        return lint_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
