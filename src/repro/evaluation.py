"""Ground-truth PPA evaluation: technology mapping followed by STA.

This is the expensive step of the paper's ground-truth optimization flow and
the label generator for the ML dataset: given an AIG, map it onto the cell
library and run static timing analysis, returning the post-mapping maximum
delay and total cell area.

The :class:`Evaluator` protocol defined here is the seam the service layer
(:mod:`repro.api`) plugs into: :class:`GroundTruthEvaluator` is the reference
implementation, and :class:`repro.api.evaluators.CachedEvaluator` /
:class:`repro.api.evaluators.ParallelEvaluator` wrap it with memoisation and
process-pool fan-out without the optimization flows having to care which one
they were handed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, runtime_checkable

from repro.aig.graph import Aig
from repro.library.library import CellLibrary
from repro.library.sky130_lite import load_sky130_lite
from repro.mapping.mapper import MappingOptions, TechnologyMapper
from repro.mapping.netlist import MappedNetlist
from repro.sta.analysis import TimingReport, analyze_timing


@dataclass(frozen=True)
class PpaResult:
    """Post-mapping performance and area of one AIG."""

    delay_ps: float
    area_um2: float
    num_gates: int
    netlist: Optional[MappedNetlist] = None
    timing: Optional[TimingReport] = None

    def as_tuple(self) -> tuple:
        """(delay_ps, area_um2) pair used by cost functions."""
        return (self.delay_ps, self.area_um2)


@runtime_checkable
class Evaluator(Protocol):
    """Anything that can turn AIGs into :class:`PpaResult` records.

    Implementations must expose the cell library they report PPA against so
    flows can hand the same library to reports and post-mapping steps.
    """

    @property
    def library(self) -> CellLibrary:  # pragma: no cover - protocol
        """The cell library the PPA numbers refer to."""
        ...

    def evaluate(self, aig: Aig) -> PpaResult:  # pragma: no cover - protocol
        """Return the post-mapping delay/area of *aig*."""
        ...

    def evaluate_many(self, aigs: Sequence[Aig]) -> List[PpaResult]:  # pragma: no cover
        """Evaluate a batch of AIGs, preserving order."""
        ...


class GroundTruthEvaluator:
    """Maps AIGs and runs STA, reusing one mapper/library across calls."""

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        mapping_options: Optional[MappingOptions] = None,
        keep_netlist: bool = False,
    ) -> None:
        self._library = library if library is not None else load_sky130_lite()
        self.mapper = TechnologyMapper(self._library, mapping_options)
        self.keep_netlist = keep_netlist

    @property
    def library(self) -> CellLibrary:
        """The cell library all evaluations map onto."""
        return self._library

    def evaluate(self, aig: Aig, keep_netlist: Optional[bool] = None) -> PpaResult:
        """Map *aig*, run STA, and return its post-mapping delay and area.

        *keep_netlist* overrides the instance default for this one call so a
        shared evaluator can serve both lightweight PPA queries and netlist
        exports.
        """
        keep = self.keep_netlist if keep_netlist is None else keep_netlist
        netlist = self.mapper.map(aig)
        report = analyze_timing(
            netlist, po_load_ff=self._library.po_load_ff, with_critical_path=False
        )
        return PpaResult(
            delay_ps=report.max_delay_ps,
            area_um2=netlist.area_um2(),
            num_gates=netlist.num_gates,
            netlist=netlist if keep else None,
            timing=report if keep else None,
        )

    def evaluate_many(self, aigs: Sequence[Aig]) -> List[PpaResult]:
        """Evaluate a batch of AIGs serially, preserving order."""
        return [self.evaluate(aig) for aig in aigs]

    def __call__(self, aig: Aig) -> PpaResult:
        return self.evaluate(aig)


_DEFAULT_EVALUATOR: Optional[GroundTruthEvaluator] = None


def default_evaluator() -> GroundTruthEvaluator:
    """The process-wide default evaluator (sky130-lite, netlists kept).

    Built on first use and reused afterwards, so repeated one-shot
    :func:`evaluate_aig` calls do not rebuild the cell library index and
    mapper every time.
    """
    global _DEFAULT_EVALUATOR
    if _DEFAULT_EVALUATOR is None:
        _DEFAULT_EVALUATOR = GroundTruthEvaluator(keep_netlist=True)
    return _DEFAULT_EVALUATOR


def evaluate_aig(
    aig: Aig,
    library: Optional[CellLibrary] = None,
    mapping_options: Optional[MappingOptions] = None,
) -> PpaResult:
    """One-shot convenience wrapper around :class:`GroundTruthEvaluator`.

    With default arguments this routes through the shared
    :func:`default_evaluator`, so the library and mapper are built once per
    process rather than once per call.
    """
    if library is None and mapping_options is None:
        return default_evaluator().evaluate(aig)
    return GroundTruthEvaluator(library, mapping_options, keep_netlist=True).evaluate(aig)
