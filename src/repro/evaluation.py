"""Ground-truth PPA evaluation: technology mapping followed by STA.

This is the expensive step of the paper's ground-truth optimization flow and
the label generator for the ML dataset: given an AIG, map it onto the cell
library and run static timing analysis, returning the post-mapping maximum
delay and total cell area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aig.graph import Aig
from repro.library.library import CellLibrary
from repro.library.sky130_lite import load_sky130_lite
from repro.mapping.mapper import MappingOptions, TechnologyMapper
from repro.mapping.netlist import MappedNetlist
from repro.sta.analysis import TimingReport, analyze_timing


@dataclass(frozen=True)
class PpaResult:
    """Post-mapping performance and area of one AIG."""

    delay_ps: float
    area_um2: float
    num_gates: int
    netlist: Optional[MappedNetlist] = None
    timing: Optional[TimingReport] = None

    def as_tuple(self) -> tuple:
        """(delay_ps, area_um2) pair used by cost functions."""
        return (self.delay_ps, self.area_um2)


class GroundTruthEvaluator:
    """Maps AIGs and runs STA, reusing one mapper/library across calls."""

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        mapping_options: Optional[MappingOptions] = None,
        keep_netlist: bool = False,
    ) -> None:
        self.library = library if library is not None else load_sky130_lite()
        self.mapper = TechnologyMapper(self.library, mapping_options)
        self.keep_netlist = keep_netlist

    def evaluate(self, aig: Aig) -> PpaResult:
        """Map *aig*, run STA, and return its post-mapping delay and area."""
        netlist = self.mapper.map(aig)
        report = analyze_timing(
            netlist, po_load_ff=self.library.po_load_ff, with_critical_path=False
        )
        return PpaResult(
            delay_ps=report.max_delay_ps,
            area_um2=netlist.area_um2(),
            num_gates=netlist.num_gates,
            netlist=netlist if self.keep_netlist else None,
            timing=report if self.keep_netlist else None,
        )

    def __call__(self, aig: Aig) -> PpaResult:
        return self.evaluate(aig)


def evaluate_aig(
    aig: Aig,
    library: Optional[CellLibrary] = None,
    mapping_options: Optional[MappingOptions] = None,
) -> PpaResult:
    """One-shot convenience wrapper around :class:`GroundTruthEvaluator`."""
    return GroundTruthEvaluator(library, mapping_options, keep_netlist=True).evaluate(aig)
