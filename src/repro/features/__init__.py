"""Graph-level AIG feature extraction (Table II of the paper)."""

from repro.features.depth import (
    nth_binary_weighted_path_depths,
    nth_long_path_depths,
    nth_weighted_path_depths,
)
from repro.features.extract import FeatureConfig, FeatureExtractor, extract_features
from repro.features.fanout import (
    distribution_stats,
    fanout_stats,
    long_path_fanout_stats,
)
from repro.features.groups import (
    GROUP_NAMES,
    columns_for_groups,
    drop_groups,
    feature_groups,
    group_of,
)
from repro.features.paths import top_path_counts

__all__ = [
    "FeatureConfig",
    "FeatureExtractor",
    "GROUP_NAMES",
    "columns_for_groups",
    "distribution_stats",
    "drop_groups",
    "extract_features",
    "fanout_stats",
    "feature_groups",
    "group_of",
    "long_path_fanout_stats",
    "nth_binary_weighted_path_depths",
    "nth_long_path_depths",
    "nth_weighted_path_depths",
    "top_path_counts",
]
