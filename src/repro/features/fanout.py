"""Fanout-distribution features (Table II, rows 6-7 of the paper).

High-fanout nodes carry large capacitive loads after mapping and therefore
large gate delays.  Two groups of statistics are extracted: the fanout
distribution over the whole AIG, and the fanout distribution restricted to
nodes lying on a longest (critical) path, where uneven fanout translates
most directly into post-mapping delay.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.aig.analysis import critical_path_nodes
from repro.aig.graph import Aig


def distribution_stats(values: Sequence[float]) -> Dict[str, float]:
    """Mean, max, standard deviation, and sum of *values* (zeros if empty)."""
    data = [float(v) for v in values]
    if not data:
        return {"mean": 0.0, "max": 0.0, "std": 0.0, "sum": 0.0}
    total = sum(data)
    mean = total / len(data)
    variance = sum((v - mean) ** 2 for v in data) / len(data)
    return {
        "mean": mean,
        "max": max(data),
        "std": math.sqrt(variance),
        "sum": total,
    }


def fanout_stats(aig: Aig) -> Dict[str, float]:
    """``fanout_{mean,max,std,sum}`` over every node (PIs and ANDs)."""
    fanouts = aig.fanout_counts()
    values = [fanouts[var] for var in range(1, aig.size)]
    return distribution_stats(values)


def long_path_fanout_stats(aig: Aig) -> Dict[str, float]:
    """``long_path_fanout_{mean,max,std,sum}`` over critical-path nodes.

    "Long path" follows the paper's definition: nodes whose path depth equals
    the AIG level, i.e. nodes lying on at least one maximum-depth path.
    """
    fanouts = aig.fanout_counts()
    critical = critical_path_nodes(aig)
    values = [fanouts[var] for var in critical]
    return distribution_stats(values)
