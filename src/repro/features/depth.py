"""Path-depth features (Table II, rows 2-5 of the paper).

Three flavours of per-output depth are extracted, all computed on the AIG:

* plain depth — number of nodes between a PI and the PO (PI included, PO
  marker excluded), exactly the annotation of Fig. 4(a);
* fanout-weighted depth — each node on the path contributes its fanout count
  instead of 1, modelling the extra load a path accumulates (Fig. 4(b));
* binary-weighted depth — each node contributes 1 when its fanout is >= 2 and
  0 otherwise, modelling which nodes are unlikely to be absorbed into larger
  cells during mapping (Fig. 4(c)).

For each flavour the top-n values over all primary outputs are used as
features (n = 3 in the paper and by default here).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.aig.analysis import po_depths, weighted_po_depths
from repro.aig.graph import Aig


def _top_n(values: Sequence[float], n: int) -> List[float]:
    ordered = sorted((float(v) for v in values), reverse=True)
    ordered += [0.0] * max(0, n - len(ordered))
    return ordered[:n]


def nth_long_path_depths(aig: Aig, n: int = 3) -> List[float]:
    """Top-*n* plain PO depths (``aig_nth_long_path_depth``)."""
    report = po_depths(aig)
    return _top_n(report.po_depths, n)


def nth_weighted_path_depths(aig: Aig, n: int = 3) -> List[float]:
    """Top-*n* fanout-weighted PO depths (``aig_nth_weighted_path_depth``)."""
    fanouts = aig.fanout_counts()
    weights = [float(f) for f in fanouts]
    return _top_n(weighted_po_depths(aig, weights), n)


def nth_binary_weighted_path_depths(aig: Aig, n: int = 3) -> List[float]:
    """Top-*n* binary-weighted PO depths (``aig_nth_binary_weighted_path_depth``).

    Nodes with fanout >= 2 weigh 1 (they are unlikely to be merged into a
    larger cell during mapping), all other nodes weigh 0.
    """
    fanouts = aig.fanout_counts()
    weights = [1.0 if f >= 2 else 0.0 for f in fanouts]
    return _top_n(weighted_po_depths(aig, weights), n)
