"""Path-count features (Table II, last row of the paper).

The number of distinct PI-to-PO paths in a primary output's cone
approximates the probability that the output has several critical or
near-critical paths after mapping, without explicitly enumerating them.
The top-n largest per-PO path counts are used as features; counts are taken
in log scale because path counts grow exponentially with reconvergence.
"""

from __future__ import annotations

import math
from typing import List

from repro.aig.analysis import count_paths_per_po
from repro.aig.graph import Aig


def top_path_counts(aig: Aig, n: int = 3, log_scale: bool = True) -> List[float]:
    """Top-*n* per-PO path counts (optionally ``log1p``-compressed)."""
    counts = count_paths_per_po(aig)
    ordered = sorted((float(c) for c in counts), reverse=True)
    ordered += [0.0] * max(0, n - len(ordered))
    values = ordered[:n]
    if log_scale:
        values = [math.log1p(v) for v in values]
    return values
