"""Graph-level feature extraction (Table II of the paper).

The :class:`FeatureExtractor` turns an AIG into a fixed-length numeric vector
combining node/level counts, the three flavours of per-output path depth,
fanout-distribution statistics over the whole graph and over the critical
path, and per-output path counts.  These are exactly the features the paper
feeds to its XGBoost delay predictor; the extractor is also what the ML flow
runs at every optimization iteration, so it is written to need only a few
linear passes over the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.aig.graph import Aig
from repro.errors import FeatureError
from repro.features.depth import (
    nth_binary_weighted_path_depths,
    nth_long_path_depths,
    nth_weighted_path_depths,
)
from repro.features.fanout import fanout_stats, long_path_fanout_stats
from repro.features.paths import top_path_counts


@dataclass(frozen=True)
class FeatureConfig:
    """Configuration of the Table II feature set."""

    top_n_depths: int = 3
    top_n_paths: int = 3
    log_path_counts: bool = True

    def __post_init__(self) -> None:
        if self.top_n_depths < 1:
            raise FeatureError("top_n_depths must be at least 1")
        if self.top_n_paths < 1:
            raise FeatureError("top_n_paths must be at least 1")


class FeatureExtractor:
    """Extracts the paper's graph-level AIG features as a numpy vector."""

    def __init__(self, config: FeatureConfig = FeatureConfig()) -> None:
        self.config = config
        self._names = self._build_names()

    # ------------------------------------------------------------------ #
    def _build_names(self) -> List[str]:
        names = ["number_of_node", "aig_level"]
        for n in range(1, self.config.top_n_depths + 1):
            names.append(f"aig_{n}th_long_path_depth")
        for n in range(1, self.config.top_n_depths + 1):
            names.append(f"aig_{n}th_weighted_path_depth")
        for n in range(1, self.config.top_n_depths + 1):
            names.append(f"aig_{n}th_binary_weighted_path_depth")
        for stat in ("mean", "max", "std", "sum"):
            names.append(f"fanout_{stat}")
        for stat in ("mean", "max", "std", "sum"):
            names.append(f"long_path_fanout_{stat}")
        for n in range(1, self.config.top_n_paths + 1):
            names.append(f"num_of_paths_{n}")
        return names

    @property
    def feature_names(self) -> List[str]:
        """Names of the vector entries, in order."""
        return list(self._names)

    @property
    def num_features(self) -> int:
        """Length of the feature vector."""
        return len(self._names)

    # ------------------------------------------------------------------ #
    def extract_dict(self, aig: Aig) -> Dict[str, float]:
        """Features of *aig* as an ordered name -> value dictionary."""
        if aig.num_pos == 0:
            raise FeatureError("cannot extract features from an AIG with no outputs")
        config = self.config
        values: Dict[str, float] = {
            "number_of_node": float(aig.num_ands),
            "aig_level": float(aig.depth()),
        }
        for n, value in enumerate(nth_long_path_depths(aig, config.top_n_depths), start=1):
            values[f"aig_{n}th_long_path_depth"] = value
        for n, value in enumerate(
            nth_weighted_path_depths(aig, config.top_n_depths), start=1
        ):
            values[f"aig_{n}th_weighted_path_depth"] = value
        for n, value in enumerate(
            nth_binary_weighted_path_depths(aig, config.top_n_depths), start=1
        ):
            values[f"aig_{n}th_binary_weighted_path_depth"] = value
        for stat, value in fanout_stats(aig).items():
            values[f"fanout_{stat}"] = value
        for stat, value in long_path_fanout_stats(aig).items():
            values[f"long_path_fanout_{stat}"] = value
        path_counts = top_path_counts(aig, config.top_n_paths, config.log_path_counts)
        for n, value in enumerate(path_counts, start=1):
            values[f"num_of_paths_{n}"] = value
        return values

    def extract(self, aig: Aig) -> np.ndarray:
        """Features of *aig* as a 1-D ``float64`` array ordered by name."""
        values = self.extract_dict(aig)
        return np.array([values[name] for name in self._names], dtype=np.float64)

    def extract_many(self, aigs: Sequence[Aig]) -> np.ndarray:
        """Feature matrix (one row per AIG)."""
        if not aigs:
            return np.zeros((0, self.num_features), dtype=np.float64)
        return np.vstack([self.extract(aig) for aig in aigs])


def extract_features(aig: Aig, config: FeatureConfig = FeatureConfig()) -> np.ndarray:
    """One-shot convenience wrapper around :class:`FeatureExtractor`."""
    return FeatureExtractor(config).extract(aig)
