"""Named groups of the Table II features.

The paper organises its features into three categories — critical-path depth
features, fanout-distribution features, and per-output path-count features —
on top of the two bare proxy metrics (node count and AIG level).  The
feature-ablation benchmark, the importance analysis, and the examples all
need that grouping; this module is its single source of truth so the group
definitions cannot drift apart.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import FeatureError
from repro.features.extract import FeatureConfig, FeatureExtractor

#: Canonical group names, in presentation order.
GROUP_NAMES = ("proxy", "depth", "fanout", "long_path_fanout", "path_count")


def feature_groups(config: FeatureConfig = FeatureConfig()) -> Dict[str, List[str]]:
    """Map each group name to its feature names for the given configuration."""
    groups: Dict[str, List[str]] = {name: [] for name in GROUP_NAMES}
    for feature in FeatureExtractor(config).feature_names:
        groups[group_of(feature)].append(feature)
    return groups


def group_of(feature_name: str) -> str:
    """The group a single Table II feature belongs to."""
    if feature_name in ("number_of_node", "aig_level"):
        return "proxy"
    if "path_depth" in feature_name:
        return "depth"
    if feature_name.startswith("long_path_fanout_"):
        return "long_path_fanout"
    if feature_name.startswith("fanout_"):
        return "fanout"
    if feature_name.startswith("num_of_paths"):
        return "path_count"
    raise FeatureError(f"unknown Table II feature {feature_name!r}")


def columns_for_groups(
    feature_names: Sequence[str], groups: Sequence[str]
) -> List[int]:
    """Column indices of *feature_names* belonging to any of *groups*."""
    unknown = set(groups) - set(GROUP_NAMES)
    if unknown:
        raise FeatureError(f"unknown feature groups {sorted(unknown)}; known: {GROUP_NAMES}")
    wanted = set(groups)
    return [
        index for index, name in enumerate(feature_names) if group_of(name) in wanted
    ]


def drop_groups(
    features: np.ndarray, feature_names: Sequence[str], groups: Sequence[str]
) -> np.ndarray:
    """Copy of the feature matrix with the listed groups' columns removed.

    Used by the ablation study: retraining on ``drop_groups(X, names, ["depth"])``
    measures how much the depth features contribute beyond the rest.
    """
    data = np.asarray(features, dtype=np.float64)
    if data.ndim != 2 or data.shape[1] != len(feature_names):
        raise FeatureError("feature matrix does not match the feature-name list")
    dropped = set(columns_for_groups(feature_names, groups))
    keep = [index for index in range(data.shape[1]) if index not in dropped]
    if not keep:
        raise FeatureError("cannot drop every feature group")
    return data[:, keep]
