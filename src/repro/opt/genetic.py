"""Genetic-algorithm logic optimization over transformation sequences.

The paper's introduction lists genetic algorithms among the conventional
search paradigms its cost-function change applies to.  Here an individual's
genome is a bounded-length sequence of primitive transformation names; its
fitness is the flow cost (proxy, ground-truth, or ML) of the AIG obtained by
applying that sequence to the initial design.  Standard operators are used:
tournament selection, one-point crossover, per-gene mutation, and elitism.

Fitness evaluations are cached per genome, so the expensive cost functions
(ground truth, and to a lesser degree the ML predictor) are only invoked once
per distinct transformation sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.graph import Aig
from repro.errors import OptimizationError
from repro.opt.cost import CostBreakdown, CostFunction
from repro.transforms.engine import apply_script
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timer import StageTimer, Timer

#: Default gene alphabet: the ABC-style primitives used by the move catalog.
DEFAULT_GENES: Tuple[str, ...] = ("b", "rw", "rwz", "rf", "rfz", "rs")


@dataclass
class GeneticConfig:
    """Hyperparameters of the genetic algorithm."""

    population_size: int = 12
    generations: int = 8
    genome_length: int = 6
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.15
    elitism: int = 1
    keep_history: bool = True

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise OptimizationError("population_size must be at least 2")
        if self.generations < 1:
            raise OptimizationError("generations must be at least 1")
        if self.genome_length < 1:
            raise OptimizationError("genome_length must be at least 1")
        if not 1 <= self.tournament_size <= self.population_size:
            raise OptimizationError("tournament_size must be in [1, population_size]")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise OptimizationError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise OptimizationError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elitism < self.population_size:
            raise OptimizationError("elitism must be in [0, population_size)")


@dataclass
class GenerationRecord:
    """Per-generation statistics (for convergence plots)."""

    generation: int
    best_cost: float
    mean_cost: float
    best_genome: List[str]


@dataclass
class GeneticResult:
    """Outcome of a genetic-algorithm optimization run."""

    best_aig: Aig
    best_genome: List[str]
    best_breakdown: CostBreakdown
    initial_breakdown: CostBreakdown
    generations_run: int
    evaluations: int
    runtime_seconds: float
    stage_timer: StageTimer
    history: List[GenerationRecord] = field(default_factory=list)

    @property
    def cost_improvement(self) -> float:
        """Relative cost reduction versus the initial AIG."""
        initial = self.initial_breakdown.cost
        if initial == 0:
            return 0.0
        return (initial - self.best_breakdown.cost) / initial


class GeneticOptimizer:
    """Genetic algorithm over transformation-script genomes."""

    def __init__(
        self,
        cost_function: CostFunction,
        config: Optional[GeneticConfig] = None,
        genes: Sequence[str] = DEFAULT_GENES,
        rng: RngLike = None,
    ) -> None:
        self.cost_function = cost_function
        self.config = config or GeneticConfig()
        self.genes = tuple(genes)
        if not self.genes:
            raise OptimizationError("gene alphabet is empty")
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ #
    def run(self, initial: Aig) -> GeneticResult:
        """Evolve transformation sequences for *initial*."""
        config = self.config
        stage_timer = StageTimer()
        total_timer = Timer()
        total_timer.start()

        self.cost_function.calibrate(initial)
        with stage_timer.time("evaluation"):
            initial_breakdown = self.cost_function.evaluate(initial)

        cache: Dict[Tuple[str, ...], Tuple[Aig, CostBreakdown]] = {}
        evaluations = 0

        def evaluate(genome: Tuple[str, ...]) -> Tuple[Aig, CostBreakdown]:
            nonlocal evaluations
            if genome in cache:
                return cache[genome]
            with stage_timer.time("transform"):
                candidate = apply_script(initial, list(genome)).aig
            with stage_timer.time("evaluation"):
                breakdown = self.cost_function.evaluate(candidate)
            evaluations += 1
            cache[genome] = (candidate, breakdown)
            return cache[genome]

        population = [self._random_genome() for _ in range(config.population_size)]
        best_genome = population[0]
        best_aig, best_breakdown = evaluate(best_genome)
        history: List[GenerationRecord] = []

        for generation in range(config.generations):
            scored = [(genome, evaluate(genome)[1]) for genome in population]
            scored.sort(key=lambda item: item[1].cost)
            if scored[0][1].cost < best_breakdown.cost:
                best_genome = scored[0][0]
                best_aig, best_breakdown = evaluate(best_genome)
            if config.keep_history:
                costs = [breakdown.cost for _, breakdown in scored]
                history.append(
                    GenerationRecord(
                        generation=generation,
                        best_cost=min(costs),
                        mean_cost=sum(costs) / len(costs),
                        best_genome=list(scored[0][0]),
                    )
                )
            population = self._next_generation(scored)

        runtime = total_timer.stop()
        return GeneticResult(
            best_aig=best_aig,
            best_genome=list(best_genome),
            best_breakdown=best_breakdown,
            initial_breakdown=initial_breakdown,
            generations_run=config.generations,
            evaluations=evaluations,
            runtime_seconds=runtime,
            stage_timer=stage_timer,
            history=history,
        )

    # ------------------------------------------------------------------ #
    # Genetic operators
    # ------------------------------------------------------------------ #
    def _random_genome(self) -> Tuple[str, ...]:
        return tuple(
            self.genes[self._rng.randrange(len(self.genes))]
            for _ in range(self.config.genome_length)
        )

    def _tournament(self, scored: List[Tuple[Tuple[str, ...], CostBreakdown]]) -> Tuple[str, ...]:
        contenders = [
            scored[self._rng.randrange(len(scored))]
            for _ in range(self.config.tournament_size)
        ]
        return min(contenders, key=lambda item: item[1].cost)[0]

    def _crossover(
        self, parent_a: Tuple[str, ...], parent_b: Tuple[str, ...]
    ) -> Tuple[str, ...]:
        if len(parent_a) <= 1 or self._rng.random() >= self.config.crossover_rate:
            return parent_a
        point = self._rng.randrange(1, len(parent_a))
        return parent_a[:point] + parent_b[point:]

    def _mutate(self, genome: Tuple[str, ...]) -> Tuple[str, ...]:
        mutated = list(genome)
        for index in range(len(mutated)):
            if self._rng.random() < self.config.mutation_rate:
                mutated[index] = self.genes[self._rng.randrange(len(self.genes))]
        return tuple(mutated)

    def _next_generation(
        self, scored: List[Tuple[Tuple[str, ...], CostBreakdown]]
    ) -> List[Tuple[str, ...]]:
        config = self.config
        next_population: List[Tuple[str, ...]] = [
            genome for genome, _ in scored[: config.elitism]
        ]
        while len(next_population) < config.population_size:
            parent_a = self._tournament(scored)
            parent_b = self._tournament(scored)
            child = self._mutate(self._crossover(parent_a, parent_b))
            next_population.append(child)
        return next_population
