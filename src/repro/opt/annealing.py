"""Simulated-annealing logic optimization.

The optimizer follows the SA paradigm the paper builds on: at every iteration
a transformation script is drawn at random from the move catalog (the
combinations of ABC primitives), applied to the current AIG, and the new AIG
is accepted according to the Metropolis criterion on the flow's cost
function.  Cost-increasing moves are accepted with probability
``exp(-delta / T)`` so the search can climb out of local optima; the
temperature decays geometrically.

The engine also keeps a per-stage wall-clock breakdown (transformation,
graph processing, cost evaluation) because the runtime comparison of Fig. 2
and Table IV is expressed in exactly those terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.aig.graph import Aig
from repro.errors import OptimizationError
from repro.opt.cost import CostBreakdown, CostFunction
from repro.transforms.engine import apply_script
from repro.transforms.scripts import script_catalog
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timer import StageTimer, Timer


@dataclass
class AnnealingConfig:
    """Hyperparameters of one SA run."""

    iterations: int = 60
    initial_temperature: float = 0.05
    temperature_decay: float = 0.95
    min_temperature: float = 1e-6
    seed: Optional[int] = None
    keep_history: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise OptimizationError("iterations must be at least 1")
        if not 0.0 < self.temperature_decay <= 1.0:
            raise OptimizationError("temperature_decay must be in (0, 1]")
        if self.initial_temperature <= 0:
            raise OptimizationError("initial_temperature must be positive")
        if self.min_temperature <= 0:
            # A non-positive floor reaches max(temperature, min_temperature)
            # once the decay bottoms out and divides the Metropolis test by
            # zero (or flips its sign).
            raise OptimizationError("min_temperature must be positive")


@dataclass
class IterationRecord:
    """One SA step, for history plots and debugging."""

    iteration: int
    script: List[str]
    cost: float
    delay: float
    area: float
    accepted: bool
    temperature: float


@dataclass
class AnnealingResult:
    """Outcome of one SA run."""

    best_aig: Aig
    best_breakdown: CostBreakdown
    initial_breakdown: CostBreakdown
    iterations_run: int
    accepted_moves: int
    runtime_seconds: float
    stage_timer: StageTimer
    history: List[IterationRecord] = field(default_factory=list)

    @property
    def cost_improvement(self) -> float:
        """Relative cost reduction versus the initial AIG."""
        initial = self.initial_breakdown.cost
        if initial == 0:
            return 0.0
        return (initial - self.best_breakdown.cost) / initial

    def seconds_per_iteration(self) -> float:
        """Mean wall-clock seconds per SA iteration."""
        if self.iterations_run == 0:
            return 0.0
        return self.runtime_seconds / self.iterations_run


class SimulatedAnnealing:
    """SA optimizer parameterised by a cost function and a move catalog."""

    def __init__(
        self,
        cost_function: CostFunction,
        config: Optional[AnnealingConfig] = None,
        catalog: Optional[Sequence[List[str]]] = None,
        rng: RngLike = None,
    ) -> None:
        self.cost_function = cost_function
        self.config = config or AnnealingConfig()
        self.catalog = list(catalog) if catalog is not None else script_catalog()
        if not self.catalog:
            raise OptimizationError("move catalog is empty")
        seed = self.config.seed
        self._rng = ensure_rng(rng if rng is not None else seed)

    # ------------------------------------------------------------------ #
    def run(self, initial: Aig) -> AnnealingResult:
        """Optimize *initial* and return the best AIG found."""
        config = self.config
        stage_timer = StageTimer()
        total_timer = Timer()
        total_timer.start()

        # Calibration (reference measurement + initial cost) is booked under
        # its own stage so "evaluation" counts exactly the in-loop
        # evaluations — per-iteration statistics divide by it directly.
        with stage_timer.time("calibration"):
            self.cost_function.calibrate(initial)
            current_breakdown = self.cost_function.evaluate(initial)
        initial_breakdown = current_breakdown
        current = initial
        best = initial
        best_breakdown = current_breakdown

        temperature = config.initial_temperature
        accepted_moves = 0
        history: List[IterationRecord] = []

        for iteration in range(config.iterations):
            script = self.catalog[self._rng.randrange(len(self.catalog))]
            with stage_timer.time("transform"):
                candidate = apply_script(current, script).aig
            with stage_timer.time("evaluation"):
                breakdown = self.cost_function.evaluate(candidate)
            delta = breakdown.cost - current_breakdown.cost
            accepted = delta <= 0 or self._rng.random() < math.exp(
                -delta / max(temperature, config.min_temperature)
            )
            if accepted:
                current = candidate
                current_breakdown = breakdown
                accepted_moves += 1
                if breakdown.cost < best_breakdown.cost:
                    best = candidate
                    best_breakdown = breakdown
            if config.keep_history:
                history.append(
                    IterationRecord(
                        iteration=iteration,
                        script=list(script),
                        cost=breakdown.cost,
                        delay=breakdown.delay,
                        area=breakdown.area,
                        accepted=accepted,
                        temperature=temperature,
                    )
                )
            temperature = max(temperature * config.temperature_decay, config.min_temperature)

        runtime = total_timer.stop()
        return AnnealingResult(
            best_aig=best,
            best_breakdown=best_breakdown,
            initial_breakdown=initial_breakdown,
            iterations_run=config.iterations,
            accepted_moves=accepted_moves,
            runtime_seconds=runtime,
            stage_timer=stage_timer,
            history=history,
        )
