"""Greedy (steepest-descent) logic optimization.

The paper frames its contribution as a cost-function change that is agnostic
to the search algorithm ("our models can also be integrated into other
conventional approaches besides SA").  This module provides the simplest such
alternative: at every step a small set of candidate transformation scripts is
drawn from the move catalog, all candidates are evaluated with the flow's
cost function, and the best one is taken if it improves the current cost.
The search stops when no sampled move improves the cost for *patience*
consecutive steps; optional random restarts re-launch it from the initial
AIG with a different sampling stream.

Compared to simulated annealing the greedy search converges faster but
cannot escape local optima — the optimizer-comparison benchmark quantifies
that trade-off under the proxy, ground-truth, and ML cost functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.aig.graph import Aig
from repro.errors import OptimizationError
from repro.opt.cost import CostBreakdown, CostFunction
from repro.transforms.engine import apply_script
from repro.transforms.scripts import script_catalog
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.timer import StageTimer, Timer


@dataclass
class GreedyConfig:
    """Hyperparameters of the greedy search."""

    max_steps: int = 40
    candidates_per_step: int = 4
    patience: int = 3
    restarts: int = 1
    keep_history: bool = True

    def __post_init__(self) -> None:
        if self.max_steps < 1:
            raise OptimizationError("max_steps must be at least 1")
        if self.candidates_per_step < 1:
            raise OptimizationError("candidates_per_step must be at least 1")
        if self.patience < 1:
            raise OptimizationError("patience must be at least 1")
        if self.restarts < 1:
            raise OptimizationError("restarts must be at least 1")


@dataclass
class GreedyStep:
    """One accepted or rejected greedy step (for history/debugging)."""

    step: int
    restart: int
    script: List[str]
    cost: float
    delay: float
    area: float
    accepted: bool


@dataclass
class GreedyResult:
    """Outcome of a greedy optimization run."""

    best_aig: Aig
    best_breakdown: CostBreakdown
    initial_breakdown: CostBreakdown
    steps_run: int
    evaluations: int
    accepted_moves: int
    runtime_seconds: float
    stage_timer: StageTimer
    history: List[GreedyStep] = field(default_factory=list)

    @property
    def cost_improvement(self) -> float:
        """Relative cost reduction versus the initial AIG."""
        initial = self.initial_breakdown.cost
        if initial == 0:
            return 0.0
        return (initial - self.best_breakdown.cost) / initial


class GreedyOptimizer:
    """Steepest-descent optimizer over the transformation-script catalog."""

    def __init__(
        self,
        cost_function: CostFunction,
        config: Optional[GreedyConfig] = None,
        catalog: Optional[Sequence[List[str]]] = None,
        rng: RngLike = None,
    ) -> None:
        self.cost_function = cost_function
        self.config = config or GreedyConfig()
        self.catalog = list(catalog) if catalog is not None else script_catalog()
        if not self.catalog:
            raise OptimizationError("move catalog is empty")
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ #
    def run(self, initial: Aig) -> GreedyResult:
        """Optimize *initial* and return the best AIG found over all restarts."""
        config = self.config
        stage_timer = StageTimer()
        total_timer = Timer()
        total_timer.start()

        self.cost_function.calibrate(initial)
        with stage_timer.time("evaluation"):
            initial_breakdown = self.cost_function.evaluate(initial)

        best = initial
        best_breakdown = initial_breakdown
        history: List[GreedyStep] = []
        steps_run = 0
        evaluations = 1
        accepted_moves = 0

        for restart in range(config.restarts):
            current = initial
            current_breakdown = initial_breakdown
            stalled = 0
            for step in range(config.max_steps):
                if stalled >= config.patience:
                    break
                steps_run += 1
                best_candidate = None
                best_candidate_breakdown = None
                best_candidate_script: List[str] = []
                for _ in range(config.candidates_per_step):
                    script = self.catalog[self._rng.randrange(len(self.catalog))]
                    with stage_timer.time("transform"):
                        candidate = apply_script(current, script).aig
                    with stage_timer.time("evaluation"):
                        breakdown = self.cost_function.evaluate(candidate)
                    evaluations += 1
                    if (
                        best_candidate_breakdown is None
                        or breakdown.cost < best_candidate_breakdown.cost
                    ):
                        best_candidate = candidate
                        best_candidate_breakdown = breakdown
                        best_candidate_script = list(script)
                improved = best_candidate_breakdown.cost < current_breakdown.cost
                if improved:
                    current = best_candidate
                    current_breakdown = best_candidate_breakdown
                    accepted_moves += 1
                    stalled = 0
                    if current_breakdown.cost < best_breakdown.cost:
                        best = current
                        best_breakdown = current_breakdown
                else:
                    stalled += 1
                if config.keep_history:
                    history.append(
                        GreedyStep(
                            step=step,
                            restart=restart,
                            script=best_candidate_script,
                            cost=best_candidate_breakdown.cost,
                            delay=best_candidate_breakdown.delay,
                            area=best_candidate_breakdown.area,
                            accepted=improved,
                        )
                    )

        runtime = total_timer.stop()
        return GreedyResult(
            best_aig=best,
            best_breakdown=best_breakdown,
            initial_breakdown=initial_breakdown,
            steps_run=steps_run,
            evaluations=evaluations,
            accepted_moves=accepted_moves,
            runtime_seconds=runtime,
            stage_timer=stage_timer,
            history=history,
        )
