"""The three AIG optimization flows of Fig. 3.

Each flow wraps the SA engine with a particular cost function:

* :class:`BaselineFlow` — proxy metrics (AIG depth / node count);
* :class:`GroundTruthFlow` — mapping + STA inside the loop;
* :class:`MlFlow` — trained delay (and optionally area) models inside the loop.

All flows report the *ground-truth* PPA of their best AIG (a single mapping +
STA run after optimization finishes), so flow quality is always compared on
the same scale regardless of what the cost function used internally.
:func:`measure_iteration_runtime` provides the per-iteration stage breakdown
behind Fig. 2 and Table IV.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.aig.graph import Aig
from repro.errors import OptimizationError
from repro.evaluation import Evaluator, GroundTruthEvaluator, PpaResult
from repro.features.extract import FeatureExtractor
from repro.library.library import CellLibrary
from repro.opt.annealing import AnnealingConfig, AnnealingResult, SimulatedAnnealing
from repro.opt.cost import CostFunction, GroundTruthCost, MlCost, ProxyCost
from repro.utils.rng import RngLike
from repro.utils.timer import Timer


@dataclass
class FlowResult:
    """Outcome of running one flow on one design."""

    flow: str
    annealing: AnnealingResult
    ground_truth: PpaResult
    delay_weight: float
    area_weight: float

    @property
    def delay_ps(self) -> float:
        """Ground-truth post-mapping delay of the best AIG."""
        return self.ground_truth.delay_ps

    @property
    def area_um2(self) -> float:
        """Ground-truth post-mapping area of the best AIG."""
        return self.ground_truth.area_um2


class OptimizationFlow(abc.ABC):
    """Base class for the three flows."""

    name: str = "flow"

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        evaluator: Optional[Evaluator] = None,
    ) -> None:
        self._evaluator: Evaluator = (
            evaluator if evaluator is not None else GroundTruthEvaluator(library)
        )

    @property
    def evaluator(self) -> Evaluator:
        """The injected PPA evaluator (ground-truth, cached, or parallel)."""
        return self._evaluator

    @property
    def library(self) -> CellLibrary:
        """Cell library used for final (and, where applicable, in-loop) PPA."""
        return self._evaluator.library

    @abc.abstractmethod
    def make_cost(self, delay_weight: float, area_weight: float) -> CostFunction:
        """Build this flow's cost function with the given weights."""

    def run(
        self,
        aig: Aig,
        config: Optional[AnnealingConfig] = None,
        delay_weight: float = 1.0,
        area_weight: float = 1.0,
        rng: RngLike = None,
        catalog: Optional[Sequence[List[str]]] = None,
    ) -> FlowResult:
        """Optimize *aig* with this flow and report ground-truth PPA."""
        cost = self.make_cost(delay_weight, area_weight)
        annealer = SimulatedAnnealing(cost, config, catalog=catalog, rng=rng)
        result = annealer.run(aig)
        ground_truth = self._evaluator.evaluate(result.best_aig)
        return FlowResult(
            flow=self.name,
            annealing=result,
            ground_truth=ground_truth,
            delay_weight=delay_weight,
            area_weight=area_weight,
        )


class BaselineFlow(OptimizationFlow):
    """The original flow driven by proxy metrics."""

    name = "baseline"

    def make_cost(self, delay_weight: float, area_weight: float) -> CostFunction:
        return ProxyCost(delay_weight=delay_weight, area_weight=area_weight)


class GroundTruthFlow(OptimizationFlow):
    """The flow that maps and times every candidate AIG."""

    name = "ground_truth"

    def make_cost(self, delay_weight: float, area_weight: float) -> CostFunction:
        return GroundTruthCost(
            delay_weight=delay_weight,
            area_weight=area_weight,
            evaluator=self._evaluator,
        )


class MlFlow(OptimizationFlow):
    """The ML-enhanced flow using trained delay/area predictors."""

    name = "ml"

    def __init__(
        self,
        delay_model,
        area_model=None,
        extractor: Optional[FeatureExtractor] = None,
        library: Optional[CellLibrary] = None,
        evaluator: Optional[Evaluator] = None,
    ) -> None:
        super().__init__(library, evaluator=evaluator)
        if delay_model is None:
            raise OptimizationError("MlFlow requires a trained delay model")
        self.delay_model = delay_model
        self.area_model = area_model
        self.extractor = extractor if extractor is not None else FeatureExtractor()

    def make_cost(self, delay_weight: float, area_weight: float) -> CostFunction:
        return MlCost(
            delay_model=self.delay_model,
            area_model=self.area_model,
            extractor=self.extractor,
            delay_weight=delay_weight,
            area_weight=area_weight,
        )


# --------------------------------------------------------------------------- #
# Per-iteration runtime measurement (Fig. 2, Table IV)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class IterationRuntime:
    """Mean per-iteration wall-clock breakdown of one flow on one design."""

    flow: str
    design: str
    transform_seconds: float
    evaluation_seconds: float
    iterations: int

    @property
    def total_seconds(self) -> float:
        """Mean total seconds per iteration."""
        return self.transform_seconds + self.evaluation_seconds


def measure_iteration_runtime(
    flow: OptimizationFlow,
    aig: Aig,
    iterations: int = 10,
    rng: RngLike = 0,
    config: Optional[AnnealingConfig] = None,
) -> IterationRuntime:
    """Run a short SA burst and report the mean per-iteration stage times."""
    run_config = config or AnnealingConfig(iterations=iterations, keep_history=False)
    result = flow.run(aig, config=run_config, rng=rng)
    timer = result.annealing.stage_timer
    # The SA engine books the pre-loop cost calibration under its own
    # "calibration" stage, so "evaluation" holds exactly one entry per SA
    # iteration regardless of history or calibration settings.
    evaluations = max(timer.counts.get("evaluation", 0), 1)
    transforms = max(timer.counts.get("transform", 0), 1)
    return IterationRuntime(
        flow=flow.name,
        design=aig.name,
        transform_seconds=timer.total("transform") / transforms,
        evaluation_seconds=timer.total("evaluation") / evaluations,
        iterations=run_config.iterations,
    )
