"""Cost functions for the three optimization flows of Fig. 3.

All three flows minimise the same weighted, normalised objective

    cost = w_delay * delay / delay_ref  +  w_area * area / area_ref

but differ in where *delay* and *area* come from:

* :class:`ProxyCost` — the baseline flow's proxies: AIG depth for delay and
  AND-node count for area (graph processing only, very cheap);
* :class:`GroundTruthCost` — exact post-mapping delay and area from the
  technology mapper and STA (accurate but expensive);
* :class:`MlCost` — delay (and optionally area) predicted by trained ML
  models from the Table II features (nearly as accurate, much cheaper).

Reference values are taken from the initial AIG via :meth:`calibrate`, so
the weights express relative importance rather than unit conversions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.aig.graph import Aig
from repro.errors import OptimizationError
from repro.evaluation import Evaluator, GroundTruthEvaluator
from repro.features.extract import FeatureExtractor
from repro.library.library import CellLibrary


@dataclass(frozen=True)
class CostBreakdown:
    """Delay/area estimates and the resulting scalar cost of one AIG."""

    delay: float
    area: float
    cost: float


class CostFunction(abc.ABC):
    """Base class: weighted normalised delay/area objective."""

    #: Short name used in reports ("proxy", "ground_truth", "ml").
    name: str = "cost"

    def __init__(self, delay_weight: float = 1.0, area_weight: float = 1.0) -> None:
        if delay_weight < 0 or area_weight < 0:
            raise OptimizationError("cost weights must be non-negative")
        if delay_weight == 0 and area_weight == 0:
            raise OptimizationError("at least one cost weight must be positive")
        self.delay_weight = delay_weight
        self.area_weight = area_weight
        self._delay_ref: Optional[float] = None
        self._area_ref: Optional[float] = None

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def measure(self, aig: Aig) -> tuple:
        """Return the raw ``(delay, area)`` estimate for *aig*."""

    def calibrate(self, aig: Aig) -> None:
        """Set normalisation references from the initial AIG."""
        delay, area = self.measure(aig)
        self._delay_ref = max(float(delay), 1e-9)
        self._area_ref = max(float(area), 1e-9)

    def evaluate(self, aig: Aig) -> CostBreakdown:
        """Measure *aig* and combine the estimates into a scalar cost."""
        delay, area = self.measure(aig)
        if self._delay_ref is None or self._area_ref is None:
            self._delay_ref = max(float(delay), 1e-9)
            self._area_ref = max(float(area), 1e-9)
        cost = (
            self.delay_weight * float(delay) / self._delay_ref
            + self.area_weight * float(area) / self._area_ref
        )
        return CostBreakdown(delay=float(delay), area=float(area), cost=cost)

    def __call__(self, aig: Aig) -> CostBreakdown:
        return self.evaluate(aig)


class ProxyCost(CostFunction):
    """Baseline flow: AIG depth as delay proxy, node count as area proxy."""

    name = "proxy"

    def measure(self, aig: Aig) -> tuple:
        return float(aig.depth()), float(aig.num_ands)


class GroundTruthCost(CostFunction):
    """Ground-truth flow: full technology mapping + STA per evaluation."""

    name = "ground_truth"

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        delay_weight: float = 1.0,
        area_weight: float = 1.0,
        evaluator: Optional[Evaluator] = None,
    ) -> None:
        super().__init__(delay_weight, area_weight)
        self._evaluator: Evaluator = (
            evaluator if evaluator is not None else GroundTruthEvaluator(library)
        )

    @property
    def evaluator(self) -> Evaluator:
        """The underlying mapper + STA evaluator (possibly cached/parallel)."""
        return self._evaluator

    def measure(self, aig: Aig) -> tuple:
        result = self._evaluator.evaluate(aig)
        return result.delay_ps, result.area_um2


class MlCost(CostFunction):
    """ML flow: feature extraction + model inference per evaluation.

    The delay model is mandatory (it is the paper's contribution); the area
    model is optional — when absent, the AND-node count scaled by
    *area_per_and* is used, which is the proxy the paper keeps for area.
    """

    name = "ml"

    def __init__(
        self,
        delay_model,
        area_model=None,
        extractor: Optional[FeatureExtractor] = None,
        delay_weight: float = 1.0,
        area_weight: float = 1.0,
        area_per_and_um2: float = 2.2,
    ) -> None:
        super().__init__(delay_weight, area_weight)
        if delay_model is None:
            raise OptimizationError("MlCost requires a trained delay model")
        self.delay_model = delay_model
        self.area_model = area_model
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        self.area_per_and_um2 = area_per_and_um2

    def measure(self, aig: Aig) -> tuple:
        features = self.extractor.extract(aig).reshape(1, -1)
        delay = float(self.delay_model.predict(features)[0])
        if self.area_model is not None:
            area = float(self.area_model.predict(features)[0])
        else:
            area = aig.num_ands * self.area_per_and_um2
        return delay, area
