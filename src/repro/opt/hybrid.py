"""Hybrid ML + periodic-ground-truth cost function and flow.

A practical concern with the pure ML flow is model drift: as the optimizer
walks away from the region the training variants covered, prediction errors
can grow unnoticed.  The hybrid cost keeps the ML model in the loop for speed
but re-runs technology mapping + STA every *validate_every* evaluations.
Each validation is used two ways:

* the observed prediction error is recorded, so a run reports how trustworthy
  the model was over the trajectory it actually explored, and
* a slowly-adapting multiplicative correction factor (an exponential moving
  average of ``true / predicted``) is applied to subsequent predictions,
  which removes any systematic bias at a small amortised cost.

With ``validate_every=1`` the hybrid cost degenerates into the ground-truth
flow; with a very large value it degenerates into the ML flow, so the knob
spans the paper's accuracy/runtime trade-off continuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.aig.graph import Aig
from repro.errors import OptimizationError
from repro.evaluation import Evaluator, GroundTruthEvaluator
from repro.features.extract import FeatureExtractor
from repro.library.library import CellLibrary
from repro.opt.cost import CostFunction
from repro.opt.flows import OptimizationFlow


@dataclass(frozen=True)
class ValidationRecord:
    """One ground-truth check performed by the hybrid cost."""

    evaluation_index: int
    predicted_delay: float
    true_delay: float
    predicted_area: float
    true_area: float

    @property
    def delay_error_percent(self) -> float:
        """Absolute delay prediction error relative to the ground truth."""
        if self.true_delay == 0:
            return 0.0
        return abs(self.predicted_delay - self.true_delay) / self.true_delay * 100.0


@dataclass
class ValidationSummary:
    """Aggregate statistics over all ground-truth checks of one run."""

    checks: int
    mean_delay_error_percent: float
    max_delay_error_percent: float
    final_correction: float


class HybridMlCost(CostFunction):
    """ML-predicted cost with periodic ground-truth validation and correction."""

    name = "hybrid_ml"

    def __init__(
        self,
        delay_model,
        area_model=None,
        validate_every: int = 10,
        correction_smoothing: float = 0.5,
        extractor: Optional[FeatureExtractor] = None,
        evaluator: Optional[Evaluator] = None,
        library: Optional[CellLibrary] = None,
        delay_weight: float = 1.0,
        area_weight: float = 1.0,
        area_per_and_um2: float = 2.2,
    ) -> None:
        super().__init__(delay_weight, area_weight)
        if delay_model is None:
            raise OptimizationError("HybridMlCost requires a trained delay model")
        if validate_every < 1:
            raise OptimizationError("validate_every must be at least 1")
        if not 0.0 < correction_smoothing <= 1.0:
            raise OptimizationError("correction_smoothing must be in (0, 1]")
        self.delay_model = delay_model
        self.area_model = area_model
        self.validate_every = validate_every
        self.correction_smoothing = correction_smoothing
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        self.evaluator = evaluator if evaluator is not None else GroundTruthEvaluator(library)
        self.area_per_and_um2 = area_per_and_um2
        self.delay_correction: float = 1.0
        self.validations: List[ValidationRecord] = []
        self._evaluation_count: int = 0

    # ------------------------------------------------------------------ #
    def measure(self, aig: Aig) -> tuple:
        features = self.extractor.extract(aig).reshape(1, -1)
        predicted_delay = float(self.delay_model.predict(features)[0])
        if self.area_model is not None:
            predicted_area = float(self.area_model.predict(features)[0])
        else:
            predicted_area = aig.num_ands * self.area_per_and_um2

        self._evaluation_count += 1
        if self._evaluation_count % self.validate_every == 0:
            truth = self.evaluator.evaluate(aig)
            self.validations.append(
                ValidationRecord(
                    evaluation_index=self._evaluation_count,
                    predicted_delay=predicted_delay,
                    true_delay=truth.delay_ps,
                    predicted_area=predicted_area,
                    true_area=truth.area_um2,
                )
            )
            if predicted_delay > 0:
                observed_ratio = truth.delay_ps / predicted_delay
                self.delay_correction = (
                    (1.0 - self.correction_smoothing) * self.delay_correction
                    + self.correction_smoothing * observed_ratio
                )
            # The validated sample's exact values are the best estimate we have.
            return truth.delay_ps, truth.area_um2

        return predicted_delay * self.delay_correction, predicted_area

    # ------------------------------------------------------------------ #
    @property
    def evaluation_count(self) -> int:
        """Total number of cost evaluations performed so far."""
        return self._evaluation_count

    def validation_summary(self) -> ValidationSummary:
        """Aggregate prediction-error statistics over the validations so far."""
        if not self.validations:
            return ValidationSummary(
                checks=0,
                mean_delay_error_percent=0.0,
                max_delay_error_percent=0.0,
                final_correction=self.delay_correction,
            )
        errors = np.array([record.delay_error_percent for record in self.validations])
        return ValidationSummary(
            checks=len(self.validations),
            mean_delay_error_percent=float(errors.mean()),
            max_delay_error_percent=float(errors.max()),
            final_correction=self.delay_correction,
        )


class HybridFlow(OptimizationFlow):
    """The ML flow with periodic ground-truth validation inside the loop."""

    name = "hybrid_ml"

    def __init__(
        self,
        delay_model,
        area_model=None,
        validate_every: int = 10,
        correction_smoothing: float = 0.5,
        extractor: Optional[FeatureExtractor] = None,
        library: Optional[CellLibrary] = None,
        evaluator: Optional[Evaluator] = None,
    ) -> None:
        super().__init__(library, evaluator=evaluator)
        if delay_model is None:
            raise OptimizationError("HybridFlow requires a trained delay model")
        self.delay_model = delay_model
        self.area_model = area_model
        self.validate_every = validate_every
        self.correction_smoothing = correction_smoothing
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        #: cost function of the most recent ``run`` (exposes validation stats).
        self.last_cost: Optional[HybridMlCost] = None

    def make_cost(self, delay_weight: float, area_weight: float) -> CostFunction:
        cost = HybridMlCost(
            delay_model=self.delay_model,
            area_model=self.area_model,
            validate_every=self.validate_every,
            correction_smoothing=self.correction_smoothing,
            extractor=self.extractor,
            evaluator=self._evaluator,
            delay_weight=delay_weight,
            area_weight=area_weight,
        )
        self.last_cost = cost
        return cost
