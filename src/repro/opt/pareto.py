"""Pareto-front utilities for the delay/area trade-off plots (Fig. 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate solution in the delay/area plane."""

    delay: float
    area: float
    payload: Any = None

    def dominates(self, other: "ParetoPoint") -> bool:
        """True when this point is no worse in both metrics and better in one."""
        no_worse = self.delay <= other.delay and self.area <= other.area
        better = self.delay < other.delay or self.area < other.area
        return no_worse and better


def pareto_front(points: Iterable[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset of *points*, sorted by increasing delay."""
    candidates = list(points)
    front: List[ParetoPoint] = []
    for point in candidates:
        if any(other.dominates(point) for other in candidates if other is not point):
            continue
        front.append(point)
    # Deduplicate identical (delay, area) pairs while keeping the first payload.
    unique: List[ParetoPoint] = []
    seen = set()
    for point in sorted(front, key=lambda p: (p.delay, p.area)):
        key = (round(point.delay, 9), round(point.area, 9))
        if key in seen:
            continue
        seen.add(key)
        unique.append(point)
    return unique


def hypervolume_2d(
    front: Sequence[ParetoPoint], reference: Tuple[float, float]
) -> float:
    """Area dominated by *front* relative to a reference (worst) point.

    A standard scalar summary of Pareto-front quality: larger is better.
    Points beyond the reference contribute nothing.
    """
    ref_delay, ref_area = reference
    usable = [p for p in front if p.delay <= ref_delay and p.area <= ref_area]
    if not usable:
        return 0.0
    # Integrate the staircase from left (smallest delay) to the reference.
    volume = 0.0
    ordered_front = pareto_front(usable)
    for index, point in enumerate(ordered_front):
        right = ordered_front[index + 1].delay if index + 1 < len(ordered_front) else ref_delay
        width = max(0.0, right - point.delay)
        height = max(0.0, ref_area - point.area)
        volume += width * height
    return volume


def delay_at_matched_area(
    front_a: Sequence[ParetoPoint],
    front_b: Sequence[ParetoPoint],
) -> Optional[float]:
    """Largest relative delay advantage of front A over front B at equal-or-smaller area.

    For every point of front B the best (smallest-delay) point of front A with
    area not exceeding B's area is found; the maximum relative improvement
    ``(delay_b - delay_a) / delay_b`` is returned.  This is the paper's
    "up to 22.7 % better delay at the same area" comparison.  ``None`` when no
    comparable pair exists.
    """
    best_improvement: Optional[float] = None
    for b in front_b:
        candidates = [a for a in front_a if a.area <= b.area * 1.0001]
        if not candidates or b.delay <= 0:
            continue
        best_a = min(candidates, key=lambda p: p.delay)
        improvement = (b.delay - best_a.delay) / b.delay
        if best_improvement is None or improvement > best_improvement:
            best_improvement = improvement
    return best_improvement
