"""Evaluation-budget-fair configurations for the non-SA search algorithms.

The optimizer comparison (and the campaign engine's ``greedy``/``genetic``
cells) give every algorithm approximately the same number of cost
evaluations as an SA run of *budget* iterations.  Both call sites derive
their configurations here so the "same algorithm" never silently runs with
two different tunings.
"""

from __future__ import annotations

from repro.opt.genetic import GeneticConfig
from repro.opt.greedy import GreedyConfig

#: candidates scored per greedy step (keeps steps × candidates ≈ budget).
GREEDY_CANDIDATES_PER_STEP = 2


def greedy_config_for_budget(budget: int) -> GreedyConfig:
    """Greedy-search configuration spending ~*budget* cost evaluations."""
    return GreedyConfig(
        max_steps=max(1, budget // GREEDY_CANDIDATES_PER_STEP),
        candidates_per_step=GREEDY_CANDIDATES_PER_STEP,
        patience=max(2, budget // 4),
        keep_history=False,
    )


def genetic_config_for_budget(budget: int) -> GeneticConfig:
    """GA configuration with population × generations ≈ *budget*."""
    population = max(4, min(8, budget))
    return GeneticConfig(
        population_size=population,
        generations=max(1, budget // population),
        genome_length=4,
        keep_history=False,
    )
