"""Hyperparameter sweeps over the SA flows (the Fig. 5 experiment).

The paper obtains each flow's Pareto front by sweeping the relative
delay/area weights of the cost function and the annealing temperature decay
rate, running one SA optimization per setting, and collecting the
ground-truth delay/area of every resulting best AIG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.aig.graph import Aig
from repro.opt.annealing import AnnealingConfig
from repro.opt.flows import FlowResult, OptimizationFlow
from repro.opt.pareto import ParetoPoint, pareto_front
from repro.utils.rng import RngLike, ensure_rng, spawn_rng


@dataclass
class SweepConfig:
    """Grid swept for every flow."""

    delay_weights: Tuple[float, ...] = (1.0, 2.0, 4.0)
    area_weights: Tuple[float, ...] = (1.0,)
    temperature_decays: Tuple[float, ...] = (0.9, 0.97)
    iterations: int = 40
    initial_temperature: float = 0.05
    seed: int = 7

    def settings(self) -> List[Tuple[float, float, float]]:
        """All (delay_weight, area_weight, decay) combinations."""
        grid = []
        for dw in self.delay_weights:
            for aw in self.area_weights:
                for decay in self.temperature_decays:
                    grid.append((dw, aw, decay))
        return grid


@dataclass
class SweepRun:
    """Lightweight outcome of one sweep setting.

    Campaign cells report these (a full :class:`FlowResult` drags the best
    AIG and SA trace along, which result stores neither need nor persist);
    :class:`SweepResult` accepts either kind interchangeably.
    """

    delay_ps: float
    area_um2: float
    runtime_seconds: float


def _run_runtime_seconds(run) -> float:
    """Optimization wall-clock of a :class:`FlowResult` or :class:`SweepRun`."""
    annealing = getattr(run, "annealing", None)
    if annealing is not None:
        return annealing.runtime_seconds
    return run.runtime_seconds


@dataclass
class SweepResult:
    """All runs of one flow plus the derived Pareto front.

    ``runs`` holds :class:`FlowResult` objects (from :func:`run_sweep`) or
    :class:`SweepRun` records (reassembled from campaign result stores);
    both expose the ground-truth ``delay_ps``/``area_um2`` this class reads.
    """

    flow: str
    runs: List = field(default_factory=list)

    def points(self) -> List[ParetoPoint]:
        """Ground-truth (delay, area) of every run."""
        return [
            ParetoPoint(delay=r.delay_ps, area=r.area_um2, payload=r) for r in self.runs
        ]

    def front(self) -> List[ParetoPoint]:
        """Pareto-optimal subset of the runs."""
        return pareto_front(self.points())

    def best_delay(self) -> float:
        """Smallest ground-truth delay reached by any run."""
        return min(r.delay_ps for r in self.runs)

    def best_area(self) -> float:
        """Smallest ground-truth area reached by any run."""
        return min(r.area_um2 for r in self.runs)

    def total_runtime_seconds(self) -> float:
        """Total optimization wall-clock across the sweep."""
        return sum(_run_runtime_seconds(r) for r in self.runs)


def run_sweep_setting(
    flow: OptimizationFlow,
    aig: Aig,
    config: SweepConfig,
    index: int,
    rng: RngLike = None,
) -> FlowResult:
    """Run *flow* for the *index*-th sweep setting.

    Without an explicit *rng* the run's stream is derived from the sweep
    seed exactly as :func:`run_sweep` derives it — ``spawn_rng`` children
    are a pure function of (parent state, stream index) — so a single
    setting executed in isolation (a campaign cell) reproduces the
    corresponding run of the full serial sweep bit for bit.
    """
    settings = config.settings()
    if not 0 <= index < len(settings):
        raise IndexError(f"sweep setting index {index} out of range")
    delay_weight, area_weight, decay = settings[index]
    annealing_config = AnnealingConfig(
        iterations=config.iterations,
        initial_temperature=config.initial_temperature,
        temperature_decay=decay,
        keep_history=False,
    )
    run_rng = (
        ensure_rng(rng)
        if rng is not None
        else spawn_rng(ensure_rng(config.seed), stream=index)
    )
    return flow.run(
        aig,
        config=annealing_config,
        delay_weight=delay_weight,
        area_weight=area_weight,
        rng=run_rng,
    )


def run_sweep(
    flow: OptimizationFlow,
    aig: Aig,
    config: Optional[SweepConfig] = None,
    rng: RngLike = None,
) -> SweepResult:
    """Run *flow* once per sweep setting and collect the results."""
    sweep = config or SweepConfig()
    generator = ensure_rng(rng if rng is not None else sweep.seed)
    result = SweepResult(flow=flow.name)
    for index in range(len(sweep.settings())):
        result.runs.append(
            run_sweep_setting(
                flow, aig, sweep, index, rng=spawn_rng(generator, stream=index)
            )
        )
    return result
