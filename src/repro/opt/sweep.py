"""Hyperparameter sweeps over the SA flows (the Fig. 5 experiment).

The paper obtains each flow's Pareto front by sweeping the relative
delay/area weights of the cost function and the annealing temperature decay
rate, running one SA optimization per setting, and collecting the
ground-truth delay/area of every resulting best AIG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.aig.graph import Aig
from repro.opt.annealing import AnnealingConfig
from repro.opt.flows import FlowResult, OptimizationFlow
from repro.opt.pareto import ParetoPoint, pareto_front
from repro.utils.rng import RngLike, ensure_rng, spawn_rng


@dataclass
class SweepConfig:
    """Grid swept for every flow."""

    delay_weights: Tuple[float, ...] = (1.0, 2.0, 4.0)
    area_weights: Tuple[float, ...] = (1.0,)
    temperature_decays: Tuple[float, ...] = (0.9, 0.97)
    iterations: int = 40
    initial_temperature: float = 0.05
    seed: int = 7

    def settings(self) -> List[Tuple[float, float, float]]:
        """All (delay_weight, area_weight, decay) combinations."""
        grid = []
        for dw in self.delay_weights:
            for aw in self.area_weights:
                for decay in self.temperature_decays:
                    grid.append((dw, aw, decay))
        return grid


@dataclass
class SweepResult:
    """All runs of one flow plus the derived Pareto front."""

    flow: str
    runs: List[FlowResult] = field(default_factory=list)

    def points(self) -> List[ParetoPoint]:
        """Ground-truth (delay, area) of every run."""
        return [
            ParetoPoint(delay=r.delay_ps, area=r.area_um2, payload=r) for r in self.runs
        ]

    def front(self) -> List[ParetoPoint]:
        """Pareto-optimal subset of the runs."""
        return pareto_front(self.points())

    def best_delay(self) -> float:
        """Smallest ground-truth delay reached by any run."""
        return min(r.delay_ps for r in self.runs)

    def best_area(self) -> float:
        """Smallest ground-truth area reached by any run."""
        return min(r.area_um2 for r in self.runs)

    def total_runtime_seconds(self) -> float:
        """Total optimization wall-clock across the sweep."""
        return sum(r.annealing.runtime_seconds for r in self.runs)


def run_sweep(
    flow: OptimizationFlow,
    aig: Aig,
    config: Optional[SweepConfig] = None,
    rng: RngLike = None,
) -> SweepResult:
    """Run *flow* once per sweep setting and collect the results."""
    sweep = config or SweepConfig()
    generator = ensure_rng(rng if rng is not None else sweep.seed)
    result = SweepResult(flow=flow.name)
    for index, (delay_weight, area_weight, decay) in enumerate(sweep.settings()):
        annealing_config = AnnealingConfig(
            iterations=sweep.iterations,
            initial_temperature=sweep.initial_temperature,
            temperature_decay=decay,
            keep_history=False,
        )
        run_rng = spawn_rng(generator, stream=index)
        result.runs.append(
            flow.run(
                aig,
                config=annealing_config,
                delay_weight=delay_weight,
                area_weight=area_weight,
                rng=run_rng,
            )
        )
    return result
