"""Logic optimization: cost functions, SA/greedy/genetic search engines, flows."""

from repro.opt.annealing import (
    AnnealingConfig,
    AnnealingResult,
    IterationRecord,
    SimulatedAnnealing,
)
from repro.opt.cost import CostBreakdown, CostFunction, GroundTruthCost, MlCost, ProxyCost
from repro.opt.flows import (
    BaselineFlow,
    FlowResult,
    GroundTruthFlow,
    IterationRuntime,
    MlFlow,
    OptimizationFlow,
    measure_iteration_runtime,
)
from repro.opt.genetic import (
    GenerationRecord,
    GeneticConfig,
    GeneticOptimizer,
    GeneticResult,
)
from repro.opt.greedy import GreedyConfig, GreedyOptimizer, GreedyResult, GreedyStep
from repro.opt.hybrid import HybridFlow, HybridMlCost, ValidationRecord, ValidationSummary
from repro.opt.pareto import (
    ParetoPoint,
    delay_at_matched_area,
    hypervolume_2d,
    pareto_front,
)
from repro.opt.sweep import SweepConfig, SweepResult, run_sweep

__all__ = [
    "AnnealingConfig",
    "AnnealingResult",
    "BaselineFlow",
    "CostBreakdown",
    "CostFunction",
    "FlowResult",
    "GenerationRecord",
    "GeneticConfig",
    "GeneticOptimizer",
    "GeneticResult",
    "GreedyConfig",
    "GreedyOptimizer",
    "GreedyResult",
    "GreedyStep",
    "GroundTruthCost",
    "GroundTruthFlow",
    "HybridFlow",
    "HybridMlCost",
    "IterationRecord",
    "IterationRuntime",
    "MlCost",
    "MlFlow",
    "OptimizationFlow",
    "ParetoPoint",
    "ProxyCost",
    "SimulatedAnnealing",
    "SweepConfig",
    "SweepResult",
    "ValidationRecord",
    "ValidationSummary",
    "delay_at_matched_area",
    "hypervolume_2d",
    "measure_iteration_runtime",
    "pareto_front",
    "run_sweep",
]
