"""Array-form k-feasible cut enumeration with on-the-fly cut functions.

:func:`repro.aig.cuts.enumerate_cuts` is the cold-path bottleneck of
technology mapping: per node it crosses two Python cut lists, dedups leaf
tuples through a set, prunes dominated cuts pairwise, and sorts — all in the
interpreter — and the mapper then walks every cut's cone again to obtain its
truth table.  This module produces **exactly the same cut sets** (same
leaves, same per-node order, same truth tables) with per-level-wave numpy
batches:

* **merging** crosses all fanin cut pairs of a whole level wave at once
  (sorted-union of padded leaf rows, feasibility by unique count);
* **dedup / prune / sort** exploit that the scalar pipeline's output is
  *canonical*: a merged leaf set is kept iff no other distinct merged leaf
  set of the node is a strict subset of it, and the survivors are sorted by
  ``(size, leaves)`` and truncated — insertion order never matters, so one
  stable sort on a packed ``(size, leaves)`` key plus a batched subset test
  reproduces the scalar result bit for bit.  Because a strict subset is
  strictly smaller, only the leading ``size < k`` rows of each node's
  sorted candidate block can dominate anything, which keeps the pairwise
  subset test to ``dominators x candidates`` instead of ``candidates²``;
* **truth tables** are composed from the producing fanin cuts' tables by
  variable expansion instead of walking the cone.  Composition is only
  valid when no merged leaf lies strictly *inside* a producing cone (the
  scalar walk would stop at such a leaf and treat it as a free variable);
  every cut therefore carries an interior bitmask, suspicious merges are
  detected exactly, and those rare cuts fall back to the scalar
  :func:`~repro.aig.simulate.cone_truth_table` walk.

The result is cached on the graph's :class:`~repro.aig.arrays.AigArrays`
snapshot (``dp_cache``), i.e. with the same lifetime and sharing rules as
the scalar cut cache.  ``tests/test_dp_arrays.py`` holds the differential
suite asserting cut-set and table equality against the scalar path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.aig.cuts import Cut
from repro.aig.graph import Aig
from repro.aig.simulate import cone_truth_table
from repro.errors import AigError

#: Leaf-column padding.  Chosen as ``2**13 - 1`` so a whole ``(size,
#: leaves)`` sort key packs into one int64 (13 bits per leaf, pads sort
#: last); the array path therefore requires every variable id to stay
#: below it (see :data:`MAX_VECTOR_GRAPH_SIZE`).
SENTINEL = 8191

#: Largest graph (variable count) the array path accepts.  Bounded by the
#: 13-bit leaf packing above — and interior bitmasks cost
#: ``O(cuts * size / 8)`` bytes, so huge graphs are better served by the
#: scalar enumeration anyway.
MAX_VECTOR_GRAPH_SIZE = SENTINEL

#: Full truth-table masks indexed by support size 0..4.
_FULL_MASK = np.asarray([(1 << (1 << s)) - 1 for s in range(5)], dtype=np.int64)

#: Bit positions of the packed (size, l0, l1, l2, l3) sort key.
_PACK_SHIFTS = np.asarray([39, 26, 13, 0], dtype=np.int64)
_PACK_SIZE_SHIFT = 52

def _build_subset_tables() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Packed-key generators for every proper nonempty subset of 4 slots.

    For leaf-slot mask ``m`` (1..14), a cut's subset key is
    ``leaves @ W[:, m] + B[m]``: each selected slot lands at its rank's
    13-bit field, the unselected tail is SENTINEL-padded, and the popcount
    becomes the size field — i.e. exactly the packed ``(size, leaves)`` key
    the subset would have *if it were a candidate cut*.  Looking the key up
    in the node's sorted candidate keys is therefore an exact strict-subset
    test (guarded by ``popcount < size``; keys containing SENTINEL in a
    leading slot can never match a real cut because variable ids stay below
    SENTINEL).
    """
    masks = [m for m in range(1, 15)]
    weight = np.zeros((4, 14), dtype=np.int64)
    base = np.zeros(14, dtype=np.int64)
    popcnt = np.zeros(14, dtype=np.int64)
    for col, mask in enumerate(masks):
        rank = 0
        for slot in range(4):
            if (mask >> slot) & 1:
                weight[slot, col] = np.int64(1) << int(_PACK_SHIFTS[rank])
                rank += 1
        popcnt[col] = rank
        base[col] = rank << _PACK_SIZE_SHIFT
        for pad_rank in range(rank, 4):
            base[col] += SENTINEL << int(_PACK_SHIFTS[pad_rank])
    return weight, base, popcnt


_SUB_W, _SUB_B, _SUB_PC = _build_subset_tables()

#: Largest per-wave node count the subset-lookup prune can serve: the
#: compound (group, packed-key) search key holds the group index above the
#: 55-bit packed key, leaving 9 bits.  Wider waves use the pairwise prune.
_MAX_LOOKUP_WAVE = 512


def _build_perm_lut() -> np.ndarray:
    """``_PERM[s, code]`` = 16-entry minterm permutation for a fanin cut.

    ``code`` packs the fanin cut's four leaf positions within the merged
    cut (2 bits each); entry ``x`` is the fanin-local minterm composed from
    merged minterm ``x``, with columns ``j >= s`` (pads) contributing 0 —
    the same value the inline broadcast chain used to compute per row.
    """
    codes = np.arange(256, dtype=np.int64)
    pos = (codes[:, None] >> (2 * np.arange(4, dtype=np.int64)[None, :])) & 3
    x = np.arange(16, dtype=np.int64)
    bits = ((x[None, None, :] >> pos[:, :, None]) & 1) << np.arange(
        4, dtype=np.int64
    )[None, :, None]
    lut = np.zeros((5, 256, 16), dtype=np.int64)
    for s in range(1, 5):
        lut[s] = bits[:, :s, :].sum(axis=1)
    return lut


_PERM = _build_perm_lut()
_CODE_MULT = np.asarray([1, 4, 16, 64], dtype=np.int64)


class CutArrays:
    """Flattened cut sets of one graph snapshot.

    Row layout: one row per cut; rows of a variable are contiguous
    (``start[var] .. start[var] + count[var]``), non-trivial cuts first in
    ``(size, leaves)`` order, trivial cut last — the exact per-node order of
    :func:`~repro.aig.cuts.merge_node_cuts`.
    """

    __slots__ = (
        "size",
        "leaves",
        "sizes",
        "tables",
        "start",
        "count",
        "num_rows",
        "hazard_fallbacks",
        "wave_row_ranges",
    )

    def __init__(
        self,
        size: int,
        leaves: np.ndarray,
        sizes: np.ndarray,
        tables: np.ndarray,
        start: np.ndarray,
        count: np.ndarray,
        num_rows: int,
        hazard_fallbacks: int,
        wave_row_ranges: List[Tuple[int, int]],
    ) -> None:
        self.size = size
        self.leaves = leaves
        self.sizes = sizes
        self.tables = tables
        self.start = start
        self.count = count
        self.num_rows = num_rows
        self.hazard_fallbacks = hazard_fallbacks
        #: Per level wave (same order as ``and_level_groups()``), the
        #: ``[begin, end)`` row range holding that wave's cut rows.
        self.wave_row_ranges = wave_row_ranges

    # ------------------------------------------------------------------ #
    def node_rows(self, var: int) -> range:
        """Row index range of *var*'s cut list."""
        begin = int(self.start[var])
        return range(begin, begin + int(self.count[var]))

    def to_cut_dict(self, aig: Aig) -> Dict[int, List[Cut]]:
        """Materialise the scalar ``enumerate_cuts`` dictionary.

        Produces the same keys in the same insertion order with the same
        per-node cut lists, so callers needing :class:`Cut` objects (the
        incremental mapper's baseline state) can switch over wholesale.
        """
        leaves_list = self.leaves.tolist()
        sizes_list = self.sizes.tolist()
        start_list = self.start.tolist()
        count_list = self.count.tolist()
        cuts: Dict[int, List[Cut]] = {0: [Cut(0, (0,))]}
        for var in aig.pi_vars:
            cuts[var] = [Cut(var, (var,))]
        for var in aig.arrays().and_vars.tolist():
            begin = start_list[var]
            node_cuts = []
            for row in range(begin, begin + count_list[var]):
                node_cuts.append(
                    Cut(var, tuple(leaves_list[row][: sizes_list[row]]))
                )
            cuts[var] = node_cuts
        return cuts


def _segmented_arange(counts: np.ndarray, total: int) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the Python loop."""
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _interior_walk(aig: Aig, root: int, leaves: Tuple[int, ...]) -> List[int]:
    """AND nodes the cone walk of *root* over *leaves* assigns values to."""
    leaf_set = set(leaves)
    seen: set = set()
    stack = [root]
    f0v, f1v = aig.arrays().fanin_var_lists()
    while stack:
        var = stack.pop()
        if var in seen or var in leaf_set or not aig.is_and(var):
            continue
        seen.add(var)
        stack.append(f0v[var])
        stack.append(f1v[var])
    return sorted(seen)


def build_cut_arrays(aig: Aig, k: int, max_cuts_per_node: int) -> CutArrays:
    """Enumerate cuts (with tables) for *aig* in level-wave numpy batches.

    Matches ``enumerate_cuts(aig, k, max_cuts_per_node, include_trivial=True)``
    cut-for-cut; memoised on the graph snapshot.
    """
    if not 2 <= k <= 4:
        raise AigError(f"array cut enumeration supports 2 <= k <= 4, got {k}")
    arrays = aig.arrays()
    if arrays.size > MAX_VECTOR_GRAPH_SIZE:
        raise AigError(
            f"array cut enumeration limited to {MAX_VECTOR_GRAPH_SIZE} "
            f"variables, got {arrays.size}"
        )
    cache_key = ("cuts", k, max_cuts_per_node)
    cached = arrays.dp_cache.get(cache_key)
    if cached is not None:
        return cached  # type: ignore[return-value]

    size = arrays.size
    num_words = (size + 63) >> 6 if size else 1
    capacity = 1 + len(arrays.pi_vars) + aig.num_ands * (max_cuts_per_node + 1)
    leaves_buf = np.full((capacity, 4), SENTINEL, dtype=np.int64)
    sizes_buf = np.zeros(capacity, dtype=np.int64)
    tables_buf = np.zeros(capacity, dtype=np.int64)
    interior_buf = np.zeros((capacity, num_words), dtype=np.uint64)
    start = np.zeros(size, dtype=np.int64)
    count = np.zeros(size, dtype=np.int64)

    # Base rows: the constant node and every PI carry just their trivial
    # cut.  Constant node included because the scalar cone walk overrides a
    # leaf's value even when the leaf is the constant, so its "table" is
    # the identity, like a PI's.
    cursor = 0
    base_vars = [0] + arrays.pi_vars.tolist() if size else []
    for var in base_vars:
        leaves_buf[cursor, 0] = var
        sizes_buf[cursor] = 1
        tables_buf[cursor] = 0b10
        start[var] = cursor
        count[var] = 1
        cursor += 1

    fanin0_var = arrays.fanin0_var
    fanin1_var = arrays.fanin1_var
    fanin0_comp = arrays.fanin0_comp
    fanin1_comp = arrays.fanin1_comp
    hazard_fallbacks = 0
    wave_row_ranges: List[Tuple[int, int]] = []
    xv = np.arange(16, dtype=np.int64)
    xrow = xv[None, :]
    one_u64 = np.uint64(1)

    for nodes in arrays.and_level_groups():
        wave_begin = cursor
        num_nodes = len(nodes)
        f0 = fanin0_var[nodes]
        f1 = fanin1_var[nodes]
        n1 = count[f1]
        ppn = count[f0] * n1
        num_pairs = int(ppn.sum())
        node_of = np.repeat(nodes, ppn)
        local = _segmented_arange(ppn, num_pairs)
        n1_rep = np.repeat(n1, ppn)
        pair_i = local // n1_rep
        row0 = np.repeat(start[f0], ppn) + pair_i
        row1 = np.repeat(start[f1], ppn) + (local - pair_i * n1_rep)

        # ---- merge: sorted-unique union of the two padded leaf rows ---- #
        cat = np.concatenate((leaves_buf[row0], leaves_buf[row1]), axis=1)
        cat.sort(axis=1)
        valid = np.empty(cat.shape, dtype=bool)
        valid[:, 0] = cat[:, 0] != SENTINEL
        valid[:, 1:] = (cat[:, 1:] != cat[:, :-1]) & (cat[:, 1:] != SENTINEL)
        merged_size = valid.sum(axis=1)
        feasible = np.nonzero(merged_size <= k)[0]
        cat = cat[feasible]
        valid = valid[feasible]
        merged_size = merged_size[feasible]
        node_of = node_of[feasible]
        row0 = row0[feasible]
        row1 = row1[feasible]
        num_cand = len(feasible)
        merged = np.full((num_cand, 4), SENTINEL, dtype=np.int64)
        col = valid.cumsum(axis=1) - 1
        rows_nz, cols_nz = np.nonzero(valid)
        merged[rows_nz, col[rows_nz, cols_nz]] = cat[rows_nz, cols_nz]

        # ---- one stable sort on the packed (size, leaves) key ---- #
        # Equal leaf sets land adjacent (equal leaves => equal size), and
        # the surviving order after dedup + prune is already the scalar
        # pipeline's final (size, leaves) order.  Stability makes the
        # first row of each duplicate run the lowest (i, j) producing
        # pair — the instance the scalar dedup keeps.
        packed = (merged_size << _PACK_SIZE_SHIFT) | (
            (merged << _PACK_SHIFTS[None, :]).sum(axis=1)
        )
        order = np.lexsort((packed, node_of))
        s_node = node_of[order]
        s_packed = packed[order]
        first = np.empty(num_cand, dtype=bool)
        if num_cand:
            first[0] = True
            first[1:] = (s_node[1:] != s_node[:-1]) | (
                s_packed[1:] != s_packed[:-1]
            )
        uniq = order[first]
        u_node = s_node[first]
        u_leaves = merged[uniq]
        u_size = merged_size[uniq]
        num_uniq = len(uniq)
        grp = np.searchsorted(nodes, u_node)

        # ---- prune: drop sets with a strict subset among the node's sets #
        if num_nodes <= _MAX_LOOKUP_WAVE:
            # Generate every proper subset's packed key (one matmul) and
            # look it up among the node's candidate keys: found + smaller
            # popcount == a strict subset exists.  The compound search key
            # prefixes the wave-local group index, under which the deduped
            # rows are already globally sorted.
            u_packed = s_packed[first]
            ckey = (grp.astype(np.uint64) << np.uint64(55)) | u_packed.astype(
                np.uint64
            )
            sub_keys = u_leaves @ _SUB_W + _SUB_B[None, :]
            csub = (grp.astype(np.uint64)[:, None] << np.uint64(55)) | (
                sub_keys.astype(np.uint64)
            )
            pos = np.searchsorted(ckey, csub.ravel())
            np.minimum(pos, num_uniq - 1, out=pos)
            found = (ckey[pos] == csub.ravel()).reshape(num_uniq, 14)
            dominated = (found & (_SUB_PC[None, :] < u_size[:, None])).any(
                axis=1
            )
        else:
            # A strict subset is strictly smaller, so only rows with
            # size < k can dominate — and sorted-by-size order puts them
            # first in each node's block.  Pair dominators x group rows.
            m_per = np.bincount(grp, minlength=num_nodes)
            grp_start = np.cumsum(m_per) - m_per
            dominators = np.nonzero(u_size < k)[0]
            dom_grp = grp[dominators]
            pair_m = m_per[dom_grp]
            num_dpairs = int(pair_m.sum())
            dominated = np.zeros(num_uniq, dtype=bool)
            if num_dpairs:
                idx_a = np.repeat(dominators, pair_m)
                idx_b = np.repeat(
                    grp_start[dom_grp], pair_m
                ) + _segmented_arange(pair_m, num_dpairs)
                la = u_leaves[idx_a]
                lb = u_leaves[idx_b]
                a_in_b = ((la[:, :, None] == lb[:, None, :]).any(axis=2)) | (
                    la == SENTINEL
                )
                strict = (u_size[idx_a] < u_size[idx_b]) & a_in_b.all(axis=1)
                dominated[idx_b[strict]] = True

        # ---- truncation (order is already final) ---- #
        keep = np.nonzero(~dominated)[0]
        k_grp = grp[keep]
        surv_per_node = np.bincount(k_grp, minlength=num_nodes)
        rank = _segmented_arange(surv_per_node, len(keep))
        trunc = rank < max_cuts_per_node
        keep = keep[trunc]
        k_grp = k_grp[trunc]
        k_node = u_node[keep]
        k_leaves = u_leaves[keep]
        k_size = u_size[keep]
        k_rows = uniq[keep]
        k_row0 = row0[k_rows]
        k_row1 = row1[k_rows]
        num_kept = len(keep)

        # ---- interiors + hazard detection ---- #
        combined = interior_buf[k_row0] | interior_buf[k_row1]
        # SENTINEL's word index is out of range; clamp it (the bit read from
        # the clamped word is discarded by the != SENTINEL mask below).
        word_idx = np.minimum(k_leaves >> 6, num_words - 1)
        bit_idx = (k_leaves & 63).astype(np.uint64)
        leaf_words = combined[np.arange(num_kept)[:, None], word_idx]
        leaf_bits = (leaf_words >> bit_idx) & one_u64
        hazard = (
            leaf_bits.astype(bool) & (k_leaves != SENTINEL)
        ).any(axis=1)

        # ---- tables: expand both producing tables onto the merged leaves #
        t0 = tables_buf[k_row0]
        t1 = tables_buf[k_row1]
        s0 = sizes_buf[k_row0]
        s1 = sizes_buf[k_row1]
        t0 = np.where(fanin0_comp[k_node], t0 ^ _FULL_MASK[s0], t0)
        t1 = np.where(fanin1_comp[k_node], t1 ^ _FULL_MASK[s1], t1)
        pos0 = (leaves_buf[k_row0][:, :, None] == k_leaves[:, None, :]).argmax(
            axis=2
        )
        pos1 = (leaves_buf[k_row1][:, :, None] == k_leaves[:, None, :]).argmax(
            axis=2
        )
        comp0 = _PERM[s0, pos0 @ _CODE_MULT]
        comp1 = _PERM[s1, pos1 @ _CODE_MULT]
        bits = ((t0[:, None] >> comp0) & 1) & ((t1[:, None] >> comp1) & 1)
        bits &= xrow < (np.int64(1) << k_size)[:, None]
        k_tables = (bits << xrow).sum(axis=1)

        # ---- write the wave block: kept rows + one trivial row per node #
        kept_per_node = np.bincount(k_grp, minlength=num_nodes)
        kept_starts = np.cumsum(kept_per_node) - kept_per_node
        dest_kept = cursor + np.arange(num_kept) + k_grp
        dest_trivial = cursor + kept_starts + kept_per_node + np.arange(num_nodes)
        leaves_buf[dest_kept] = k_leaves
        sizes_buf[dest_kept] = k_size
        tables_buf[dest_kept] = k_tables
        interior_buf[dest_kept] = combined
        node_word = (k_node >> 6).astype(np.int64)
        interior_buf[dest_kept, node_word] |= one_u64 << (
            k_node & 63
        ).astype(np.uint64)
        leaves_buf[dest_trivial, 0] = nodes
        sizes_buf[dest_trivial] = 1
        tables_buf[dest_trivial] = 0b10
        start[nodes] = cursor + kept_starts + np.arange(num_nodes)
        count[nodes] = kept_per_node + 1
        cursor += num_kept + num_nodes
        wave_row_ranges.append((wave_begin, cursor))

        # ---- hazard fallback: scalar cone walk for suspicious merges ---- #
        hazard_rows = np.nonzero(hazard)[0]
        if len(hazard_rows):
            hazard_fallbacks += len(hazard_rows)
            for local_row in hazard_rows.tolist():
                dest = int(dest_kept[local_row])
                var = int(k_node[local_row])
                cut_leaves = tuple(
                    int(leaf)
                    for leaf in k_leaves[local_row].tolist()
                    if leaf != SENTINEL
                )
                tables_buf[dest] = cone_truth_table(aig, var * 2, cut_leaves)
                row_interior = np.zeros(num_words, dtype=np.uint64)
                for member in _interior_walk(aig, var, cut_leaves):
                    row_interior[member >> 6] |= one_u64 << np.uint64(
                        member & 63
                    )
                interior_buf[dest] = row_interior

    result = CutArrays(
        size=size,
        leaves=leaves_buf[:cursor],
        sizes=sizes_buf[:cursor],
        tables=tables_buf[:cursor],
        start=start,
        count=count,
        num_rows=cursor,
        hazard_fallbacks=hazard_fallbacks,
        wave_row_ranges=wave_row_ranges,
    )
    # repro-lint: ignore[C2] -- build_cut_arrays is the owner populating
    # dp_cache (first write of this key), mirroring enumerate_cuts.
    arrays.dp_cache[cache_key] = result
    return result


def cut_arrays_supported(aig: Aig, k: int) -> bool:
    """Whether the array enumeration path applies to this graph."""
    return 2 <= k <= 4 and aig.size <= MAX_VECTOR_GRAPH_SIZE
