"""AIGER-style literal encoding.

An AIG variable is a non-negative integer; variable ``0`` is reserved for the
constant-FALSE node.  A *literal* packs a variable together with a complement
bit: ``literal = 2 * var + complemented``.  Literal ``0`` is constant false,
literal ``1`` is constant true.  This is the same convention used by the
AIGER format and by ABC, which makes file I/O and debugging straightforward.
"""

from __future__ import annotations

from repro.errors import LiteralError

CONST0 = 0
CONST1 = 1


def make_literal(var: int, complemented: bool = False) -> int:
    """Pack *var* and the complement flag into a literal."""
    if var < 0:
        raise LiteralError(f"variable index must be non-negative, got {var}")
    return (var << 1) | int(bool(complemented))


def literal_var(lit: int) -> int:
    """Variable index of *lit*."""
    if lit < 0:
        raise LiteralError(f"literal must be non-negative, got {lit}")
    return lit >> 1


def is_complemented(lit: int) -> bool:
    """True when *lit* carries an inversion."""
    if lit < 0:
        raise LiteralError(f"literal must be non-negative, got {lit}")
    return bool(lit & 1)


def negate(lit: int) -> int:
    """Return the complement of *lit*."""
    if lit < 0:
        raise LiteralError(f"literal must be non-negative, got {lit}")
    return lit ^ 1


def negate_if(lit: int, condition: bool) -> int:
    """Return ``negate(lit)`` when *condition* is true, else *lit*."""
    return lit ^ 1 if condition else lit


def regular(lit: int) -> int:
    """Return *lit* with the complement bit cleared."""
    if lit < 0:
        raise LiteralError(f"literal must be non-negative, got {lit}")
    return lit & ~1


def is_constant(lit: int) -> bool:
    """True for the two constant literals (0 and 1)."""
    return lit in (CONST0, CONST1)
