"""The And-Inverter Graph data structure.

The :class:`Aig` class stores a combinational circuit as a network of
two-input AND nodes with optional inversion on every edge.  It is the common
substrate for every other component in this library: logic transformations
rewrite it, the technology mapper covers it with standard cells, the feature
extractor summarises it, and the optimization flows perturb it.

Nodes are identified by integer *variables* allocated in creation order;
edges are encoded as AIGER-style *literals* (see :mod:`repro.aig.literals`).
Because a new AND node may only reference variables that already exist, the
variable order is always a valid topological order, which keeps traversal
code simple and fast.

The graph is *structurally hashed*: creating an AND with the same (ordered)
fanin pair twice returns the existing node, and the trivial simplifications
``x & 0 = 0``, ``x & 1 = x``, ``x & x = x``, ``x & !x = 0`` are applied on
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.aig.journal import (
    MutationJournal,
    fingerprint_from_hashes,
    node_hashes_cached,
)
from repro.aig.literals import (
    CONST0,
    CONST1,
    is_complemented,
    literal_var,
    make_literal,
    negate,
    negate_if,
)
from repro.errors import AigError, LiteralError


@dataclass(frozen=True)
class AigStats:
    """Summary statistics of an AIG (the proxy metrics of the baseline flow)."""

    name: str
    num_pis: int
    num_pos: int
    num_ands: int
    depth: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: pi={self.num_pis} po={self.num_pos} "
            f"and={self.num_ands} depth={self.depth}"
        )


class Aig:
    """A structurally hashed combinational And-Inverter Graph."""

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        # Variable 0 is the constant-FALSE node.
        self._fanin0: List[int] = [CONST0]
        self._fanin1: List[int] = [CONST0]
        self._is_pi: List[bool] = [False]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []
        self._po_names: List[str] = []
        self._strash: Dict[Tuple[int, int], int] = {}
        # Mutation journal for incremental evaluation; disabled by default so
        # the construction hot path only pays a boolean check.
        self.journal = MutationJournal()
        # Cache for journal.node_hashes_cached: valid while size is
        # unchanged (node arrays are append-only, PO edits don't matter).
        self._node_hash_cache: Optional[List[bytes]] = None
        # Structure-of-arrays snapshot (repro.aig.arrays.AigArrays): valid
        # while size is unchanged, for the same append-only reason.  PO
        # bindings CAN change in place, so PO-derived caches additionally
        # key on _po_version.
        self._arrays = None
        self._po_version = 0
        self._fanout_counts_cache: Optional[Tuple[Tuple[int, int], List[int]]] = None
        # Memo for cone truth tables keyed by (root literal, leaf tuple).
        # Sound because an AND node's fanins are frozen at creation, so the
        # structure of any existing cone never changes; PO rebinding is
        # irrelevant to cones.  Bounded by MAX_CONE_CACHE_ENTRIES.
        self._cone_table_cache: Dict[Tuple[int, Tuple[int, ...]], int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input and return its (non-complemented) literal."""
        var = self._new_var()
        self._is_pi[var] = True
        self._pis.append(var)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        if self.journal.enabled:
            self.journal.note_var(var)
        return make_literal(var)

    def add_po(self, lit: int, name: Optional[str] = None) -> int:
        """Register literal *lit* as a primary output; return the PO index."""
        self._check_literal(lit)
        self._pos.append(lit)
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")
        self._po_version += 1
        if self.journal.enabled:
            self.journal.note_po(len(self._pos) - 1, literal_var(lit))
        return len(self._pos) - 1

    def add_and(self, a: int, b: int) -> int:
        """Return a literal for ``a & b``, reusing nodes where possible."""
        self._check_literal(a)
        self._check_literal(b)
        # Trivial simplifications.
        if a == CONST0 or b == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1:
            return a
        if a == b:
            return a
        if a == negate(b):
            return CONST0
        # Canonical fanin order for structural hashing.
        if a > b:
            a, b = b, a
        key = (a, b)
        existing = self._strash.get(key)
        if existing is not None:
            return make_literal(existing)
        var = self._new_var()
        self._fanin0[var] = a
        self._fanin1[var] = b
        self._strash[key] = var
        if self.journal.enabled:
            self.journal.note_var(var)
        return make_literal(var)

    # Convenience gates built from ANDs ----------------------------------
    def add_nand(self, a: int, b: int) -> int:
        """Return a literal for ``!(a & b)``."""
        return negate(self.add_and(a, b))

    def add_or(self, a: int, b: int) -> int:
        """Return a literal for ``a | b``."""
        return negate(self.add_and(negate(a), negate(b)))

    def add_nor(self, a: int, b: int) -> int:
        """Return a literal for ``!(a | b)``."""
        return self.add_and(negate(a), negate(b))

    def add_xor(self, a: int, b: int) -> int:
        """Return a literal for ``a ^ b`` (three AND nodes)."""
        # !(a & b) & (a | b), where the OR is itself a complemented AND.
        return self.add_and(self.add_nand(a, b), self.add_nand(negate(a), negate(b)))

    def add_xnor(self, a: int, b: int) -> int:
        """Return a literal for ``!(a ^ b)``."""
        return negate(self.add_xor(a, b))

    def add_mux(self, sel: int, t: int, e: int) -> int:
        """Return a literal for ``sel ? t : e``."""
        return negate(
            self.add_and(self.add_nand(sel, t), self.add_nand(negate(sel), e))
        )

    def add_maj(self, a: int, b: int, c: int) -> int:
        """Return a literal for the majority of three literals."""
        ab = self.add_and(a, b)
        bc = self.add_and(b, c)
        ac = self.add_and(a, c)
        return self.add_or(self.add_or(ab, bc), ac)

    def add_and_multi(self, literals: Sequence[int]) -> int:
        """AND an arbitrary list of literals together (balanced tree)."""
        lits = list(literals)
        if not lits:
            return CONST1
        while len(lits) > 1:
            nxt: List[int] = []
            for i in range(0, len(lits) - 1, 2):
                nxt.append(self.add_and(lits[i], lits[i + 1]))
            if len(lits) % 2 == 1:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    def add_or_multi(self, literals: Sequence[int]) -> int:
        """OR an arbitrary list of literals together (balanced tree)."""
        return negate(self.add_and_multi([negate(l) for l in literals]))

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._pos)

    @property
    def num_ands(self) -> int:
        """Number of AND nodes (the paper's proxy for area)."""
        return self.size - 1 - self.num_pis

    @property
    def size(self) -> int:
        """Total number of variables, including the constant node."""
        return len(self._fanin0)

    @property
    def pi_vars(self) -> List[int]:
        """Variable ids of the primary inputs, in declaration order."""
        return list(self._pis)

    @property
    def pi_names(self) -> List[str]:
        """Names of the primary inputs, in declaration order."""
        return list(self._pi_names)

    @property
    def po_names(self) -> List[str]:
        """Names of the primary outputs, in declaration order."""
        return list(self._po_names)

    def pi_literals(self) -> List[int]:
        """Non-complemented literals of the primary inputs."""
        return [make_literal(v) for v in self._pis]

    def po_literals(self) -> List[int]:
        """Driver literals of the primary outputs, in declaration order."""
        return list(self._pos)

    def set_po_literal(self, index: int, lit: int) -> None:
        """Redirect primary output *index* to drive literal *lit*."""
        self._check_literal(lit)
        if not 0 <= index < len(self._pos):
            raise AigError(f"PO index {index} out of range")
        self._pos[index] = lit
        self._po_version += 1
        if self.journal.enabled:
            self.journal.note_po(index, literal_var(lit))

    def is_pi(self, var: int) -> bool:
        """True when variable *var* is a primary input."""
        self._check_var(var)
        return self._is_pi[var]

    def is_const(self, var: int) -> bool:
        """True for the constant variable (index 0)."""
        self._check_var(var)
        return var == 0

    def is_and(self, var: int) -> bool:
        """True when variable *var* is an AND node."""
        self._check_var(var)
        return var != 0 and not self._is_pi[var]

    def fanins(self, var: int) -> Tuple[int, int]:
        """The two fanin literals of AND node *var*."""
        if not self.is_and(var):
            raise AigError(f"variable {var} is not an AND node")
        return self._fanin0[var], self._fanin1[var]

    def and_vars(self) -> Iterator[int]:
        """Iterate AND-node variables in topological (creation) order."""
        for var in range(1, self.size):
            if not self._is_pi[var]:
                yield var

    def nodes(self) -> Iterator[int]:
        """Iterate all variables (constant, PIs, ANDs) in topological order."""
        return iter(range(self.size))

    # ------------------------------------------------------------------ #
    # Derived structural data (array-core backed)
    # ------------------------------------------------------------------ #
    def arrays(self):
        """The structure-of-arrays snapshot of this graph (cached by size).

        Node arrays are append-only, so a snapshot is valid until the next
        variable is allocated; the snapshot is rebuilt lazily when ``size``
        has moved past it.  Derived data inside the snapshot (levels, level
        groups, fanout CSR) is computed on demand and amortised across every
        structural query on the same graph generation.
        """
        arrays = self._arrays
        if arrays is None or arrays.size != self.size:
            from repro.aig.arrays import AigArrays

            arrays = AigArrays(self._fanin0, self._fanin1, self._is_pi, self._pis)
            self._arrays = arrays
        return arrays

    def levels(self) -> List[int]:
        """Per-variable logic level: PIs/constant at 0, AND = 1 + max fanin."""
        return list(self.arrays().levels_list())

    def depth(self) -> int:
        """Maximum logic level over all primary outputs (the delay proxy)."""
        if not self._pos:
            return 0
        level = self.arrays().levels_list()
        return max(level[literal_var(lit)] for lit in self._pos)

    def fanout_counts(self) -> List[int]:
        """Per-variable fanout count (references from AND fanins and POs)."""
        cache = self._fanout_counts_cache
        key = (self.size, self._po_version)
        if cache is not None and cache[0] == key:
            return list(cache[1])
        counts = self.arrays().fanin_ref_counts().tolist()
        for lit in self._pos:
            counts[literal_var(lit)] += 1
        self._fanout_counts_cache = (key, counts)
        return list(counts)

    def fanouts(self) -> List[List[int]]:
        """Per-variable list of AND variables that consume it as a fanin."""
        offsets, consumers = self.arrays().fanout_csr_lists()
        return [consumers[offsets[var] : offsets[var + 1]] for var in range(self.size)]

    def fingerprint(self) -> str:
        """Order-insensitive structural hash of the logic feeding the POs.

        Two AIGs receive the same fingerprint exactly when they have the same
        number of primary inputs and, for every primary output position, the
        same AND/inverter structure over the same PI positions.  The hash is
        insensitive to node creation order, to the relative order of the two
        fanins of an AND, to node names, and to dead (PO-unreachable) logic.

        That makes it the right key for *structural similarity* (the
        incremental evaluator's baseline matching), but NOT a sound key for
        memoising mapper/STA results: cut enumeration truncates and breaks
        ties by variable id, so two graphs with equal fingerprints but
        different node numbering can map to (slightly) different delay and
        area.  Result caches must key on :meth:`exact_key` instead.
        """
        return fingerprint_from_hashes(self, node_hashes_cached(self))

    def exact_key(self) -> str:
        """Representation-exact digest of the graph (ids, fanins, PIs, POs).

        Two AIGs receive the same exact key only when their variable arrays
        are identical — same nodes in the same creation order with the same
        fanin literals and the same PO bindings.  Evaluation on such graphs
        is fully deterministic, which makes this (unlike
        :meth:`fingerprint`) a sound memoisation key for PPA results.
        Names are excluded: they never influence mapping or timing.
        """
        import array
        import hashlib

        payload = array.array("q")
        payload.append(self.num_pis)
        payload.extend(self._pis)
        payload.extend(self._fanin0)
        payload.extend(self._fanin1)
        payload.append(-1)
        payload.extend(self._pos)
        return hashlib.blake2b(payload.tobytes(), digest_size=16).hexdigest()

    def stats(self) -> AigStats:
        """Return the proxy-metric summary for this graph."""
        return AigStats(
            name=self.name,
            num_pis=self.num_pis,
            num_pos=self.num_pos,
            num_ands=self.num_ands,
            depth=self.depth(),
        )

    # ------------------------------------------------------------------ #
    # Copying and compaction
    # ------------------------------------------------------------------ #
    def clone(self, name: Optional[str] = None) -> "Aig":
        """Return a deep copy of this graph."""
        other = Aig(name if name is not None else self.name)
        other._fanin0 = list(self._fanin0)
        other._fanin1 = list(self._fanin1)
        other._is_pi = list(self._is_pi)
        other._pis = list(self._pis)
        other._pi_names = list(self._pi_names)
        other._pos = list(self._pos)
        other._po_names = list(self._po_names)
        other._strash = dict(self._strash)
        # Journal enablement is inherited (derived graphs keep recording);
        # recorded entries belong to this graph and are not copied.  The
        # hash cache transfers by reference: it describes the same arrays,
        # and any growth on either side replaces (never mutates) it.
        other.journal.enabled = self.journal.enabled
        other._node_hash_cache = self._node_hash_cache
        # The array snapshot describes the same (append-only) node arrays,
        # so it transfers by reference too; growth on either side replaces
        # it rather than mutating it.  The fanout-count cache is keyed on
        # this graph's PO version counter, which restarts at the clone's
        # current binding, so it transfers with a reset key.
        other._arrays = self._arrays
        # Existing cone-table entries stay valid in the clone (the cones
        # they describe are frozen), but vars appended after this point may
        # get different fanins in each graph, so the memo is copied rather
        # than shared by reference.
        other._cone_table_cache = dict(self._cone_table_cache)
        if self._fanout_counts_cache is not None and self._fanout_counts_cache[0] == (
            self.size,
            self._po_version,
        ):
            other._fanout_counts_cache = ((other.size, 0), list(self._fanout_counts_cache[1]))
        return other

    def cleanup(self, name: Optional[str] = None) -> "Aig":
        """Return a compacted copy containing only logic reachable from POs.

        All primary inputs are preserved (in order) even if unused, so the
        interface of the design never changes during optimization.
        """
        reachable = self._reachable_vars()
        new = Aig(name if name is not None else self.name)
        old_to_new: Dict[int, int] = {0: CONST0}
        for var, pi_name in zip(self._pis, self._pi_names):
            old_to_new[var] = new.add_pi(pi_name)
        for var in self.and_vars():
            if var not in reachable:
                continue
            f0 = self._map_literal(self._fanin0[var], old_to_new)
            f1 = self._map_literal(self._fanin1[var], old_to_new)
            old_to_new[var] = new.add_and(f0, f1)
        for lit, po_name in zip(self._pos, self._po_names):
            new.add_po(self._map_literal(lit, old_to_new), po_name)
        # Enabled only after construction so the rebuild itself is not
        # journalled as a sea of touched nodes.
        new.journal.enabled = self.journal.enabled
        return new

    def _reachable_vars(self) -> set:
        """Variables in the transitive fanin of any PO."""
        seen = set()
        stack = [literal_var(lit) for lit in self._pos]
        while stack:
            var = stack.pop()
            if var in seen or var == 0:
                continue
            seen.add(var)
            if not self._is_pi[var]:
                stack.append(literal_var(self._fanin0[var]))
                stack.append(literal_var(self._fanin1[var]))
        return seen

    @staticmethod
    def _map_literal(lit: int, old_to_new: Dict[int, int]) -> int:
        var = literal_var(lit)
        if var not in old_to_new:
            raise AigError(f"literal {lit} refers to an unmapped variable {var}")
        return negate_if(old_to_new[var], is_complemented(lit))

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Export the AIG as a ``networkx.DiGraph`` (edges fanin -> node)."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        graph.add_node(0, kind="const")
        for var, pi_name in zip(self._pis, self._pi_names):
            graph.add_node(var, kind="pi", name=pi_name)
        for var in self.and_vars():
            graph.add_node(var, kind="and")
            f0, f1 = self._fanin0[var], self._fanin1[var]
            graph.add_edge(literal_var(f0), var, complemented=is_complemented(f0))
            graph.add_edge(literal_var(f1), var, complemented=is_complemented(f1))
        for idx, (lit, po_name) in enumerate(zip(self._pos, self._po_names)):
            po_node = f"po:{idx}"
            graph.add_node(po_node, kind="po", name=po_name)
            graph.add_edge(literal_var(lit), po_node, complemented=is_complemented(lit))
        return graph

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _new_var(self) -> int:
        self._fanin0.append(CONST0)
        self._fanin1.append(CONST0)
        self._is_pi.append(False)
        return len(self._fanin0) - 1

    def _check_var(self, var: int) -> None:
        if not 0 <= var < self.size:
            raise AigError(f"variable {var} out of range (size {self.size})")

    def _check_literal(self, lit: int) -> None:
        if lit < 0:
            raise LiteralError(f"literal must be non-negative, got {lit}")
        if literal_var(lit) >= self.size:
            raise LiteralError(
                f"literal {lit} refers to variable {literal_var(lit)} "
                f"but the graph only has {self.size} variables"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Aig(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"ands={self.num_ands})"
        )


def rebuild_map(source: Aig, target: Aig) -> Dict[int, int]:
    """Initial old-variable -> new-literal map for rebuild-style transforms.

    Copies the PI interface of *source* into *target* and returns the map
    seeded with the constant node and all PIs.  Transform passes extend the
    map as they reconstruct AND nodes.
    """
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(source.pi_vars, source.pi_names):
        mapping[var] = target.add_pi(name)
    return mapping


def copy_cone(
    source: Aig,
    target: Aig,
    mapping: Dict[int, int],
    roots: Iterable[int],
) -> None:
    """Copy the transitive fanin cones of *roots* (literals) into *target*.

    *mapping* maps already-copied source variables to target literals and is
    updated in place.
    """
    for root in roots:
        stack = [literal_var(root)]
        post: List[int] = []
        visited = set(mapping)
        while stack:
            var = stack.pop()
            if var in visited:
                continue
            visited.add(var)
            post.append(var)
            if source.is_and(var):
                f0, f1 = source.fanins(var)
                stack.append(literal_var(f0))
                stack.append(literal_var(f1))
        for var in sorted(post):
            if var in mapping:
                continue
            if not source.is_and(var):
                raise AigError(f"variable {var} reached but not mapped (PI missing?)")
            f0, f1 = source.fanins(var)
            new_f0 = negate_if(mapping[literal_var(f0)], is_complemented(f0))
            new_f1 = negate_if(mapping[literal_var(f1)], is_complemented(f1))
            mapping[var] = target.add_and(new_f0, new_f1)
