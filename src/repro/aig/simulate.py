"""Bit-parallel simulation of AIGs.

Simulation serves three purposes in this library:

* computing exact truth tables of small fanin cones (used by the rewriting
  and refactoring transforms and by the technology mapper's cut functions),
* random simulation signatures used to screen resubstitution candidates and
  to check functional equivalence probabilistically on large graphs,
* exhaustive equivalence checking of whole designs with few primary inputs.

Patterns are packed into Python integers, one bit per pattern, so a single
pass over the graph evaluates an arbitrary number of patterns in parallel.
Output-focused simulations (:func:`simulate_pos`, hence the equivalence
checkers) with >= :data:`VECTOR_PATTERN_THRESHOLD` patterns additionally
split each packed word into 64-bit lanes and evaluate wide logic levels
with numpy, a handful of array operations per level wave; runs of waves
narrower than :data:`SCALAR_WAVE_WIDTH` are coalesced into packed-integer
segments instead of disabling the lane kernel for the whole graph, values
cross the lane/int boundary lazily, and the resulting words are
bit-identical to the pure packed-integer loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aig.graph import Aig
from repro.aig.literals import is_complemented, literal_var
from repro.aig.truth import table_mask, var_truth
from repro.errors import AigError
from repro.utils.rng import RngLike, ensure_rng

#: Default cap on the PI count accepted by :func:`po_truth_tables`.  The
#: table width is ``2**num_pis`` bits per node, so an unguarded call on a
#: wide (e.g. service-submitted) design would attempt a multi-gigabyte
#: blowup; 20 PIs (1 Mbit per node) matches the limit used by
#: :func:`repro.aig.equivalence.check_equivalence_exact`.
MAX_EXACT_TABLE_PIS = 20

#: Pattern count at and above which :func:`simulate_pos` considers the
#: level-parallel numpy kernel (4+ uint64 lanes per word).  Below this the
#: plain-integer loop wins on constant factors.
VECTOR_PATTERN_THRESHOLD = 256

#: Minimum AND count of a level wave for the numpy kernel to beat the
#: packed-integer loop on that wave.  Narrower consecutive waves are
#: coalesced into one big-int segment instead of forcing the whole graph
#: onto the scalar path (the old all-or-nothing average-width heuristic).
#: The crossover sits well above the dispatch-cost break-even on dense
#: random words because AND-ing halves a value's ones-density per level and
#: CPython big-ints drop leading zero limbs, so the packed-integer loop
#: speeds up with depth while the lane kernel always pays full-width.
SCALAR_WAVE_WIDTH = 256

#: Largest uint64 word count per pattern word for which the lane kernel is
#: dispatch-bound and therefore profitable.  Beyond this (patterns > 512)
#: both kernels are memory-bound and the numpy formulation's extra passes
#: (gather, two xors, two ands, scatter) lose to the single-pass big-int
#: operations, so wide waves also run on the packed-integer loop.
MAX_LANE_WORDS = 8

#: Cap on the per-graph cone truth-table memo (see
#: :func:`cone_truth_table`).  Entries are small (two ints and a short
#: tuple); the cap only guards against pathological cut churn on very
#: large graphs.
MAX_CONE_CACHE_ENTRIES = 500_000


def simulate(aig: Aig, pi_values: Sequence[int], num_patterns: int) -> List[int]:
    """Simulate *aig* under packed input patterns.

    Parameters
    ----------
    pi_values:
        One packed integer per primary input; bit ``p`` is the value of that
        input under pattern ``p``.
    num_patterns:
        Number of valid bits in each packed word.

    Returns
    -------
    list of int
        One packed integer per variable (indexed by variable id).
    """
    if len(pi_values) != aig.num_pis:
        raise AigError(
            f"expected {aig.num_pis} input words, got {len(pi_values)}"
        )
    mask = (1 << num_patterns) - 1
    # All callers of this entry point need every variable's value as a
    # Python integer, and measured end to end the lane-to-int conversion
    # alone costs more than the packed-integer recurrence saves — at every
    # graph shape and pattern count (CPython big-int bitwise ops are one
    # memory pass; the numpy waves are several, plus a per-variable
    # ``int.from_bytes``).  The lane kernel therefore only serves callers
    # that consume a few outputs (:func:`simulate_pos`), where the
    # conversion is restricted to the requested variables.
    values = [0] * aig.size
    for var, word in zip(aig.pi_vars, pi_values):
        values[var] = word & mask
    arrays = aig.arrays()
    f0v, f1v = arrays.fanin_var_lists()
    fanin0 = aig._fanin0
    fanin1 = aig._fanin1
    for var in arrays.and_vars.tolist():
        v0 = values[f0v[var]]
        if fanin0[var] & 1:
            v0 = ~v0 & mask
        v1 = values[f1v[var]]
        if fanin1[var] & 1:
            v1 = ~v1 & mask
        values[var] = v0 & v1
    return values


def _simulate_vectorized(
    aig: Aig, pi_values: Sequence[int], num_patterns: int, mask: int
) -> List[int]:
    """Level-parallel simulation over 64-bit lanes (bit-identical results)."""
    arrays = aig.arrays()
    num_words = (num_patterns + 63) // 64
    num_bytes = num_words * 8
    lanes = np.zeros((arrays.size, num_words), dtype=np.uint64)
    for var, word in zip(aig.pi_vars, pi_values):
        packed = (word & mask).to_bytes(num_bytes, "little")
        lanes[var] = np.frombuffer(packed, dtype="<u8")
    # Complement masks: all-ones rows for complemented fanin edges.  The
    # trailing junk bits they introduce beyond num_patterns are cleared by
    # the tail mask after each AND.
    f0v = arrays.fanin0_var
    f1v = arrays.fanin1_var
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    tail = np.full(num_words, full, dtype=np.uint64)
    spill = num_patterns % 64
    if spill:
        tail[-1] = np.uint64((1 << spill) - 1)
    comp0 = np.where(arrays.fanin0_comp, full, np.uint64(0))
    comp1 = np.where(arrays.fanin1_comp, full, np.uint64(0))
    for group in arrays.and_level_groups():
        v0 = lanes[f0v[group]] ^ comp0[group][:, None]
        v1 = lanes[f1v[group]] ^ comp1[group][:, None]
        lanes[group] = (v0 & v1) & tail
    data = lanes.tobytes()
    return [
        int.from_bytes(data[i * num_bytes : (i + 1) * num_bytes], "little")
        for i in range(arrays.size)
    ]


def _simulation_plan(arrays):
    """Partition the level waves into vector and coalesced scalar segments.

    Returns ``(segments, num_vector_nodes)`` where each segment is either
    ``("vec", [group, ...])`` — a run of consecutive waves each at least
    :data:`SCALAR_WAVE_WIDTH` nodes wide, evaluated with the uint64-lane
    kernel — or ``("int", node_array, publish_array)`` — adjacent narrower
    waves concatenated in level order (hence still topological) and
    evaluated with the packed-integer loop.  ``publish_array`` lists the
    segment's nodes whose values a later vector segment reads, so only
    those are converted back into lanes.  The plan depends only on the
    graph structure and is memoised on the (append-only) array core.
    """
    cached = arrays.dp_cache.get(("sim_plan",))
    if cached is not None:
        return cached
    runs: List[Tuple[str, List[np.ndarray]]] = []
    for group in arrays.and_level_groups():
        kind = "vec" if len(group) >= SCALAR_WAVE_WIDTH else "int"
        if runs and runs[-1][0] == kind:
            runs[-1][1].append(group)
        else:
            runs.append((kind, [group]))
    # Vector segments read fanins straight from the lane matrix, so scalar
    # results feeding them (and only those) must be published back.
    vec_reads = np.zeros(arrays.size, dtype=bool)
    num_vector_nodes = 0
    for kind, groups in runs:
        if kind != "vec":
            continue
        for group in groups:
            num_vector_nodes += len(group)
            vec_reads[arrays.fanin0_var[group]] = True
            vec_reads[arrays.fanin1_var[group]] = True
    segments: List[Tuple] = []
    for kind, groups in runs:
        if kind == "vec":
            segments.append(("vec", groups))
        else:
            nodes = np.concatenate(groups)
            segments.append(("int", nodes, nodes[vec_reads[nodes]]))
    plan = (segments, num_vector_nodes)
    # repro-lint: ignore[C2] -- _simulation_plan owns this dp_cache key and
    # recomputation is deterministic, so a racing duplicate write is benign.
    arrays.dp_cache[("sim_plan",)] = plan
    return plan


def _simulate_hybrid(
    aig: Aig,
    pi_values: Sequence[int],
    num_patterns: int,
    mask: int,
    segments: Sequence[Tuple],
    need_vars: Optional[Sequence[int]] = None,
) -> List[Optional[int]]:
    """Mixed-kernel simulation following a :func:`_simulation_plan`.

    Wide waves run on the uint64-lane matrix, coalesced narrow runs on
    packed Python integers; values cross a representation boundary lazily
    and each conversion is a byte-exact reinterpretation, so the result is
    bit-identical to either pure kernel.  With *need_vars* given, only the
    listed variables are guaranteed to be resolved to integers in the
    returned list (others may be ``None``); this is what makes the lane
    kernel pay off — skipping the per-variable ``int.from_bytes`` for
    values nobody reads.
    """
    arrays = aig.arrays()
    num_words = (num_patterns + 63) // 64
    num_bytes = num_words * 8
    lanes = np.zeros((arrays.size, num_words), dtype=np.uint64)
    ints: List[Optional[int]] = [None] * arrays.size
    ints[0] = 0
    for var, word in zip(aig.pi_vars, pi_values):
        word &= mask
        ints[var] = word
        lanes[var] = np.frombuffer(word.to_bytes(num_bytes, "little"), dtype="<u8")
    f0v, f1v = arrays.fanin_var_lists()
    fanin0 = aig._fanin0
    fanin1 = aig._fanin1
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    tail = np.full(num_words, full, dtype=np.uint64)
    spill = num_patterns % 64
    if spill:
        tail[-1] = np.uint64((1 << spill) - 1)
    comp0 = np.where(arrays.fanin0_comp, full, np.uint64(0))
    comp1 = np.where(arrays.fanin1_comp, full, np.uint64(0))
    fv0 = arrays.fanin0_var
    fv1 = arrays.fanin1_var
    for segment in segments:
        if segment[0] == "vec":
            for group in segment[1]:
                v0 = lanes[fv0[group]] ^ comp0[group][:, None]
                v1 = lanes[fv1[group]] ^ comp1[group][:, None]
                lanes[group] = (v0 & v1) & tail
            continue
        _, nodes, publish = segment
        for var in nodes.tolist():
            i0 = f0v[var]
            v0 = ints[i0]
            if v0 is None:
                v0 = int.from_bytes(lanes[i0].tobytes(), "little")
                ints[i0] = v0
            if fanin0[var] & 1:
                v0 = ~v0 & mask
            i1 = f1v[var]
            v1 = ints[i1]
            if v1 is None:
                v1 = int.from_bytes(lanes[i1].tobytes(), "little")
                ints[i1] = v1
            if fanin1[var] & 1:
                v1 = ~v1 & mask
            ints[var] = v0 & v1
        for var in publish.tolist():
            lanes[var] = np.frombuffer(
                ints[var].to_bytes(num_bytes, "little"), dtype="<u8"
            )
    if need_vars is None:
        data = lanes.tobytes()
        return [
            word
            if word is not None
            else int.from_bytes(data[i * num_bytes : (i + 1) * num_bytes], "little")
            for i, word in enumerate(ints)
        ]
    for var in need_vars:
        if ints[var] is None:
            ints[var] = int.from_bytes(lanes[var].tobytes(), "little")
    return ints


def literal_values(
    aig: Aig, node_values: Sequence[int], literals: Sequence[int], num_patterns: int
) -> List[int]:
    """Resolve packed values for a list of literals given per-variable values."""
    mask = (1 << num_patterns) - 1
    out = []
    for lit in literals:
        value = node_values[literal_var(lit)]
        if is_complemented(lit):
            value = ~value & mask
        out.append(value & mask)
    return out


def simulate_pos(aig: Aig, pi_values: Sequence[int], num_patterns: int) -> List[int]:
    """Packed primary-output values under the given input patterns.

    Unlike :func:`simulate`, only the PO driver values are needed as Python
    integers, so wide level waves can profitably run on the uint64-lane
    kernel: the per-variable lane-to-int conversion — which dominates the
    full-value path — is limited to the PO drivers and the lane/int
    boundary crossings of the wave plan.  Narrow waves (and narrow-word
    regimes, where both kernels are memory-bound and numpy's extra passes
    lose) stay on the packed-integer loop; results are bit-identical either
    way.
    """
    if len(pi_values) != aig.num_pis:
        raise AigError(
            f"expected {aig.num_pis} input words, got {len(pi_values)}"
        )
    po_literals = aig.po_literals()
    num_words = (num_patterns + 63) // 64
    if (
        num_patterns >= VECTOR_PATTERN_THRESHOLD
        and num_words <= MAX_LANE_WORDS
        and aig.num_ands
    ):
        segments, num_vector_nodes = _simulation_plan(aig.arrays())
        if num_vector_nodes:
            mask = (1 << num_patterns) - 1
            values = _simulate_hybrid(
                aig,
                pi_values,
                num_patterns,
                mask,
                segments,
                need_vars=[literal_var(lit) for lit in po_literals],
            )
            return literal_values(aig, values, po_literals, num_patterns)
    values = simulate(aig, pi_values, num_patterns)
    return literal_values(aig, values, po_literals, num_patterns)


def exhaustive_pi_patterns(num_pis: int) -> List[int]:
    """Packed words enumerating all ``2**num_pis`` input assignments.

    Input ``i`` receives the truth table of variable ``i`` over ``num_pis``
    variables, so simulating with these patterns yields each node's global
    truth table.
    """
    return [var_truth(i, num_pis) for i in range(num_pis)]


def random_pi_patterns(num_pis: int, num_patterns: int, rng: RngLike = None) -> List[int]:
    """Packed random input patterns (for signatures / probabilistic checks)."""
    generator = ensure_rng(rng)
    return [generator.getrandbits(num_patterns) for _ in range(num_pis)]


def po_truth_tables(aig: Aig, max_pis: int = MAX_EXACT_TABLE_PIS) -> List[int]:
    """Exact truth tables of every primary output (requires few PIs).

    The table of output ``o`` is expressed over the graph's primary inputs in
    declaration order.  Exponential in the PI count: the call refuses designs
    with more than *max_pis* primary inputs (default
    :data:`MAX_EXACT_TABLE_PIS`, mirroring
    :func:`repro.aig.equivalence.check_equivalence_exact`) by raising
    :class:`AigError`, so a wide service-submitted design surfaces as a
    client error instead of a hang or an out-of-memory kill.
    """
    if aig.num_pis > max_pis:
        raise AigError(
            f"design has {aig.num_pis} primary inputs, exceeding max_pis="
            f"{max_pis} for exact truth tables (2**{aig.num_pis} bits per node)"
        )
    num_patterns = 1 << aig.num_pis
    patterns = exhaustive_pi_patterns(aig.num_pis)
    return simulate_pos(aig, patterns, num_patterns)


def node_signatures(aig: Aig, num_patterns: int = 64, rng: RngLike = None) -> List[int]:
    """Random-simulation signature of every variable (packed words)."""
    patterns = random_pi_patterns(aig.num_pis, num_patterns, rng)
    return simulate(aig, patterns, num_patterns)


def cone_truth_table(
    aig: Aig,
    root_literal: int,
    leaves: Sequence[int],
    max_vars: int = 16,
) -> int:
    """Exact truth table of *root_literal* expressed over *leaves*.

    *leaves* are variable ids forming a cut: every path from the root to a
    primary input must pass through a leaf.  The returned table has
    ``len(leaves)`` inputs, with leaf ``i`` as variable ``i``.

    Evaluation is an explicit-stack post-order walk, so cone depth is
    bounded by memory rather than the interpreter recursion limit (a
    ~3000-node chain cone previously raised ``RecursionError``).

    Results are memoised on the graph: node fanins are frozen at creation
    (the graph is append-only), so a ``(root literal, leaves)`` cone never
    changes and the mapper's repeated cut evaluations across annealing
    iterations hit the cache.
    """
    num_leaves = len(leaves)
    if num_leaves > max_vars:
        raise AigError(f"cone has {num_leaves} leaves, exceeding max_vars={max_vars}")
    cache = aig._cone_table_cache
    cache_key = (root_literal, tuple(leaves))
    cached = cache.get(cache_key)
    if cached is not None:
        return cached
    mask = table_mask(num_leaves)
    values: Dict[int, int] = {0: 0}
    for index, leaf in enumerate(leaves):
        values[leaf] = var_truth(index, num_leaves)

    root_var = literal_var(root_literal)
    if root_var not in values:
        fanin0 = aig._fanin0
        fanin1 = aig._fanin1
        is_pi = aig._is_pi
        size = aig.size
        stack = [root_var]
        while stack:
            var = stack[-1]
            if var in values:
                stack.pop()
                continue
            if not 0 <= var < size:
                raise AigError(f"variable {var} out of range (size {size})")
            if var == 0 or is_pi[var]:
                raise AigError(
                    f"variable {var} is not inside the cone delimited by "
                    f"leaves {list(leaves)}"
                )
            f0 = fanin0[var]
            f1 = fanin1[var]
            v0 = values.get(f0 >> 1)
            v1 = values.get(f1 >> 1)
            if v0 is None or v1 is None:
                if v1 is None:
                    stack.append(f1 >> 1)
                if v0 is None:
                    stack.append(f0 >> 1)
                continue
            if f0 & 1:
                v0 = ~v0 & mask
            if f1 & 1:
                v1 = ~v1 & mask
            values[var] = v0 & v1
            stack.pop()

    root_value = values[root_var]
    if is_complemented(root_literal):
        root_value = ~root_value & mask
    root_value &= mask
    if len(cache) < MAX_CONE_CACHE_ENTRIES:
        cache[cache_key] = root_value
    return root_value
