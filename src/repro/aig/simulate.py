"""Bit-parallel simulation of AIGs.

Simulation serves three purposes in this library:

* computing exact truth tables of small fanin cones (used by the rewriting
  and refactoring transforms and by the technology mapper's cut functions),
* random simulation signatures used to screen resubstitution candidates and
  to check functional equivalence probabilistically on large graphs,
* exhaustive equivalence checking of whole designs with few primary inputs.

Patterns are packed into Python integers, one bit per pattern, so a single
pass over the graph evaluates an arbitrary number of patterns in parallel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.aig.graph import Aig
from repro.aig.literals import is_complemented, literal_var
from repro.aig.truth import table_mask, var_truth
from repro.errors import AigError
from repro.utils.rng import RngLike, ensure_rng


def simulate(aig: Aig, pi_values: Sequence[int], num_patterns: int) -> List[int]:
    """Simulate *aig* under packed input patterns.

    Parameters
    ----------
    pi_values:
        One packed integer per primary input; bit ``p`` is the value of that
        input under pattern ``p``.
    num_patterns:
        Number of valid bits in each packed word.

    Returns
    -------
    list of int
        One packed integer per variable (indexed by variable id).
    """
    if len(pi_values) != aig.num_pis:
        raise AigError(
            f"expected {aig.num_pis} input words, got {len(pi_values)}"
        )
    mask = (1 << num_patterns) - 1
    values = [0] * aig.size
    for var, word in zip(aig.pi_vars, pi_values):
        values[var] = word & mask
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        v0 = values[literal_var(f0)]
        if is_complemented(f0):
            v0 = ~v0 & mask
        v1 = values[literal_var(f1)]
        if is_complemented(f1):
            v1 = ~v1 & mask
        values[var] = v0 & v1
    return values


def literal_values(
    aig: Aig, node_values: Sequence[int], literals: Sequence[int], num_patterns: int
) -> List[int]:
    """Resolve packed values for a list of literals given per-variable values."""
    mask = (1 << num_patterns) - 1
    out = []
    for lit in literals:
        value = node_values[literal_var(lit)]
        if is_complemented(lit):
            value = ~value & mask
        out.append(value & mask)
    return out


def simulate_pos(aig: Aig, pi_values: Sequence[int], num_patterns: int) -> List[int]:
    """Packed primary-output values under the given input patterns."""
    values = simulate(aig, pi_values, num_patterns)
    return literal_values(aig, values, aig.po_literals(), num_patterns)


def exhaustive_pi_patterns(num_pis: int) -> List[int]:
    """Packed words enumerating all ``2**num_pis`` input assignments.

    Input ``i`` receives the truth table of variable ``i`` over ``num_pis``
    variables, so simulating with these patterns yields each node's global
    truth table.
    """
    return [var_truth(i, num_pis) for i in range(num_pis)]


def random_pi_patterns(num_pis: int, num_patterns: int, rng: RngLike = None) -> List[int]:
    """Packed random input patterns (for signatures / probabilistic checks)."""
    generator = ensure_rng(rng)
    return [generator.getrandbits(num_patterns) for _ in range(num_pis)]


def po_truth_tables(aig: Aig) -> List[int]:
    """Exact truth tables of every primary output (requires few PIs).

    The table of output ``o`` is expressed over the graph's primary inputs in
    declaration order.  Exponential in the PI count; callers should guard
    with ``aig.num_pis`` (the library uses this only for designs with at most
    roughly 16 inputs, matching the benchmark sizes in the paper).
    """
    num_patterns = 1 << aig.num_pis
    patterns = exhaustive_pi_patterns(aig.num_pis)
    return simulate_pos(aig, patterns, num_patterns)


def node_signatures(aig: Aig, num_patterns: int = 64, rng: RngLike = None) -> List[int]:
    """Random-simulation signature of every variable (packed words)."""
    patterns = random_pi_patterns(aig.num_pis, num_patterns, rng)
    return simulate(aig, patterns, num_patterns)


def cone_truth_table(
    aig: Aig,
    root_literal: int,
    leaves: Sequence[int],
    max_vars: int = 16,
) -> int:
    """Exact truth table of *root_literal* expressed over *leaves*.

    *leaves* are variable ids forming a cut: every path from the root to a
    primary input must pass through a leaf.  The returned table has
    ``len(leaves)`` inputs, with leaf ``i`` as variable ``i``.
    """
    num_leaves = len(leaves)
    if num_leaves > max_vars:
        raise AigError(f"cone has {num_leaves} leaves, exceeding max_vars={max_vars}")
    mask = table_mask(num_leaves)
    values: Dict[int, int] = {0: 0}
    for index, leaf in enumerate(leaves):
        values[leaf] = var_truth(index, num_leaves)

    def evaluate(var: int) -> int:
        if var in values:
            return values[var]
        if not aig.is_and(var):
            raise AigError(
                f"variable {var} is not inside the cone delimited by leaves {list(leaves)}"
            )
        f0, f1 = aig.fanins(var)
        v0 = evaluate(literal_var(f0))
        if is_complemented(f0):
            v0 = ~v0 & mask
        v1 = evaluate(literal_var(f1))
        if is_complemented(f1):
            v1 = ~v1 & mask
        values[var] = v0 & v1
        return values[var]

    root_value = evaluate(literal_var(root_literal))
    if is_complemented(root_literal):
        root_value = ~root_value & mask
    return root_value & mask
