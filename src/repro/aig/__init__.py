"""And-Inverter Graph core: data structure, analysis, simulation, cuts."""

from repro.aig.analysis import (
    DepthReport,
    count_paths_per_po,
    critical_path_nodes,
    po_depths,
    structural_summary,
    transitive_fanout,
    weighted_po_depths,
)
from repro.aig.cuts import Cut, enumerate_cuts, merge_node_cuts
from repro.aig.equivalence import (
    EquivalenceResult,
    check_equivalence,
    check_equivalence_exact,
    check_equivalence_random,
)
from repro.aig.graph import Aig, AigStats
from repro.aig.journal import (
    JournalEntry,
    MutationJournal,
    StructuralDiff,
    dirty_cone,
    node_hashes,
    node_hashes_cached,
    structural_diff,
)
from repro.aig.literals import (
    CONST0,
    CONST1,
    is_complemented,
    literal_var,
    make_literal,
    negate,
    negate_if,
)
from repro.aig.random_graphs import random_aig, random_cone_aig
from repro.aig.simulate import (
    cone_truth_table,
    exhaustive_pi_patterns,
    node_signatures,
    po_truth_tables,
    random_pi_patterns,
    simulate,
    simulate_pos,
)

__all__ = [
    "Aig",
    "AigStats",
    "Cut",
    "DepthReport",
    "EquivalenceResult",
    "CONST0",
    "CONST1",
    "check_equivalence",
    "check_equivalence_exact",
    "check_equivalence_random",
    "cone_truth_table",
    "count_paths_per_po",
    "critical_path_nodes",
    "enumerate_cuts",
    "exhaustive_pi_patterns",
    "JournalEntry",
    "MutationJournal",
    "StructuralDiff",
    "dirty_cone",
    "is_complemented",
    "literal_var",
    "make_literal",
    "merge_node_cuts",
    "negate",
    "negate_if",
    "node_hashes",
    "node_hashes_cached",
    "node_signatures",
    "po_depths",
    "structural_diff",
    "transitive_fanout",
    "po_truth_tables",
    "random_aig",
    "random_cone_aig",
    "random_pi_patterns",
    "simulate",
    "simulate_pos",
    "structural_summary",
    "weighted_po_depths",
]
