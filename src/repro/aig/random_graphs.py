"""Random AIG generation.

Random graphs are used by the test suite (property-based structural tests)
and as filler logic blocks inside the synthetic benchmark designs of
:mod:`repro.designs`.  The generator builds a connected DAG in which every
new AND node picks two previously created literals with random polarities,
and outputs are drawn from the deepest recently created nodes so that the
graphs have non-trivial depth and reconvergence.
"""

from __future__ import annotations

from typing import List, Optional

from repro.aig.graph import Aig
from repro.aig.literals import negate_if
from repro.errors import AigError
from repro.utils.rng import RngLike, ensure_rng


def random_aig(
    num_pis: int,
    num_pos: int,
    num_ands: int,
    rng: RngLike = None,
    name: str = "random",
    locality: int = 16,
) -> Aig:
    """Generate a random AIG with approximately *num_ands* AND nodes.

    Parameters
    ----------
    locality:
        New nodes prefer fanins among the most recent *locality* literals,
        which produces deeper graphs than uniform sampling (uniform sampling
        yields very shallow DAGs that are poor stand-ins for real circuits).
    """
    if num_pis < 2:
        raise AigError("random AIG needs at least 2 primary inputs")
    if num_pos < 1:
        raise AigError("random AIG needs at least 1 primary output")
    generator = ensure_rng(rng)
    aig = Aig(name)
    literals: List[int] = [aig.add_pi(f"pi{i}") for i in range(num_pis)]
    created = 0
    attempts = 0
    max_attempts = 20 * max(1, num_ands)
    while created < num_ands and attempts < max_attempts:
        attempts += 1
        if generator.random() < 0.7 and len(literals) > num_pis:
            lo = max(0, len(literals) - locality)
            a = literals[generator.randrange(lo, len(literals))]
        else:
            a = literals[generator.randrange(len(literals))]
        b = literals[generator.randrange(len(literals))]
        a = negate_if(a, generator.random() < 0.5)
        b = negate_if(b, generator.random() < 0.5)
        before = aig.num_ands
        lit = aig.add_and(a, b)
        if aig.num_ands > before:
            literals.append(lit)
            created += 1
    deep = literals[-max(num_pos * 2, 8):]
    for index in range(num_pos):
        pool = deep if deep else literals
        lit = pool[generator.randrange(len(pool))]
        lit = negate_if(lit, generator.random() < 0.5)
        aig.add_po(lit, f"po{index}")
    return aig


def random_cone_aig(
    num_pis: int,
    depth: int,
    rng: RngLike = None,
    name: str = "cone",
) -> Aig:
    """Generate a single-output random AIG with roughly the requested depth."""
    if num_pis < 2:
        raise AigError("random cone needs at least 2 primary inputs")
    if depth < 1:
        raise AigError("depth must be at least 1")
    generator = ensure_rng(rng)
    aig = Aig(name)
    frontier = [aig.add_pi(f"pi{i}") for i in range(num_pis)]
    for _ in range(depth):
        next_frontier: List[int] = []
        generator.shuffle(frontier)
        for i in range(0, len(frontier) - 1, 2):
            a = negate_if(frontier[i], generator.random() < 0.5)
            b = negate_if(frontier[i + 1], generator.random() < 0.5)
            next_frontier.append(aig.add_and(a, b))
        if len(frontier) % 2 == 1:
            next_frontier.append(frontier[-1])
        if len(next_frontier) <= 1:
            frontier = next_frontier
            break
        frontier = next_frontier
    root = frontier[0]
    aig.add_po(root, "f")
    return aig
