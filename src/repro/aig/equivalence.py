"""Combinational equivalence checking between AIGs.

Logic transformations must never change the function of the design.  The
transform engine uses these checks as a safety net: exact (exhaustive
simulation) whenever the PI count is small enough, and random-simulation
miter checking otherwise.  The designs used throughout the paper's
experiments have 14-18 primary inputs, so the exact check is affordable for
all of them; the probabilistic fallback exists for larger user designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aig.graph import Aig
from repro.aig.simulate import (
    exhaustive_pi_patterns,
    random_pi_patterns,
    simulate_pos,
)
from repro.errors import AigError
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    exact: bool
    counterexample: Optional[int] = None
    mismatched_output: Optional[int] = None

    def __bool__(self) -> bool:
        return self.equivalent


def _check_interfaces(a: Aig, b: Aig) -> None:
    if a.num_pis != b.num_pis:
        raise AigError(
            f"PI count mismatch: {a.num_pis} vs {b.num_pis} (designs not comparable)"
        )
    if a.num_pos != b.num_pos:
        raise AigError(
            f"PO count mismatch: {a.num_pos} vs {b.num_pos} (designs not comparable)"
        )


def check_equivalence_exact(a: Aig, b: Aig, max_pis: int = 20) -> EquivalenceResult:
    """Exhaustively compare the two designs over all input assignments."""
    _check_interfaces(a, b)
    if a.num_pis > max_pis:
        raise AigError(
            f"exhaustive check limited to {max_pis} PIs, design has {a.num_pis}"
        )
    num_patterns = 1 << a.num_pis
    patterns = exhaustive_pi_patterns(a.num_pis)
    pos_a = simulate_pos(a, patterns, num_patterns)
    pos_b = simulate_pos(b, patterns, num_patterns)
    for index, (va, vb) in enumerate(zip(pos_a, pos_b)):
        diff = va ^ vb
        if diff:
            counterexample = (diff & -diff).bit_length() - 1
            return EquivalenceResult(
                equivalent=False,
                exact=True,
                counterexample=counterexample,
                mismatched_output=index,
            )
    return EquivalenceResult(equivalent=True, exact=True)


def check_equivalence_random(
    a: Aig,
    b: Aig,
    num_patterns: int = 2048,
    rng: RngLike = None,
) -> EquivalenceResult:
    """Compare the two designs under random patterns (probabilistic)."""
    _check_interfaces(a, b)
    generator = ensure_rng(rng)
    word = 256
    remaining = num_patterns
    while remaining > 0:
        batch = min(word, remaining)
        patterns = random_pi_patterns(a.num_pis, batch, generator)
        pos_a = simulate_pos(a, patterns, batch)
        pos_b = simulate_pos(b, patterns, batch)
        for index, (va, vb) in enumerate(zip(pos_a, pos_b)):
            diff = va ^ vb
            if diff:
                return EquivalenceResult(
                    equivalent=False,
                    exact=False,
                    counterexample=None,
                    mismatched_output=index,
                )
        remaining -= batch
    return EquivalenceResult(equivalent=True, exact=False)


def check_equivalence(
    a: Aig,
    b: Aig,
    exact_pi_limit: int = 16,
    num_random_patterns: int = 4096,
    rng: RngLike = None,
) -> EquivalenceResult:
    """Equivalence check choosing exact or random mode by input count."""
    _check_interfaces(a, b)
    if a.num_pis <= exact_pi_limit:
        return check_equivalence_exact(a, b, max_pis=exact_pi_limit)
    return check_equivalence_random(a, b, num_patterns=num_random_patterns, rng=rng)
