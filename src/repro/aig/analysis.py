"""Structural analysis of AIGs: levels, depths per output, path counts.

These routines underpin both the proxy metrics used by the baseline
optimization flow (AIG depth and node count) and the richer graph-level
features of Table II in the paper (per-output depths, fanout-weighted depths,
path counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.aig.graph import Aig
from repro.aig.literals import literal_var


@dataclass(frozen=True)
class DepthReport:
    """Per-output depth summary of an AIG."""

    po_depths: Tuple[int, ...]
    max_depth: int

    def top(self, n: int) -> List[int]:
        """The *n* largest PO depths, padded with zeros if needed."""
        ordered = sorted(self.po_depths, reverse=True)
        ordered += [0] * max(0, n - len(ordered))
        return ordered[:n]


def node_levels(aig: Aig) -> List[int]:
    """Unweighted level of every variable (PIs at level 0)."""
    return aig.levels()


def weighted_node_levels(aig: Aig, weights: Sequence[float]) -> List[float]:
    """Longest weighted path from any PI to each variable.

    The weight of a node is added when the path passes *through* that node
    (PIs included, consistent with the paper's Fig. 4 which counts the PI
    node and excludes the PO marker).
    """
    level = [0.0] * aig.size
    for var in aig.pi_vars:
        level[var] = float(weights[var])
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        best = max(level[literal_var(f0)], level[literal_var(f1)])
        level[var] = best + float(weights[var])
    return level


def po_depths(aig: Aig) -> DepthReport:
    """Depth (node count from PI, excluding the PO marker) of every output."""
    level = aig.levels()
    depths = []
    for lit in aig.po_literals():
        var = literal_var(lit)
        # Count nodes on the path including the PI endpoint: a direct
        # PI-to-PO connection has depth 1, matching Fig. 4(a) in the paper.
        depths.append(level[var] + 1 if var != 0 else 0)
    max_depth = max(depths) if depths else 0
    return DepthReport(po_depths=tuple(depths), max_depth=max_depth)


def weighted_po_depths(aig: Aig, weights: Sequence[float]) -> List[float]:
    """Largest weighted path value reaching each primary output."""
    level = weighted_node_levels(aig, weights)
    return [level[literal_var(lit)] for lit in aig.po_literals()]


def critical_path_nodes(aig: Aig) -> List[int]:
    """Variables lying on at least one maximum-depth (critical) path.

    A node is critical when its level plus the longest path from it to any
    PO equals the graph depth.  This is the node set the paper's
    ``long_path_fanout_*`` features aggregate over.
    """
    level = aig.levels()
    size = aig.size
    # Longest path from each node to a PO (counted in nodes below it).
    to_po = [-1] * size
    for lit in aig.po_literals():
        var = literal_var(lit)
        to_po[var] = max(to_po[var], 0)
    for var in reversed(range(1, size)):
        if to_po[var] < 0 or not aig.is_and(var):
            continue
        f0, f1 = aig.fanins(var)
        for fanin in (literal_var(f0), literal_var(f1)):
            to_po[fanin] = max(to_po[fanin], to_po[var] + 1)
    depth = aig.depth()
    critical = [
        var
        for var in range(1, size)
        if to_po[var] >= 0 and level[var] + to_po[var] == depth
    ]
    return critical


def count_paths_per_po(aig: Aig, cap: int = 10**12) -> List[int]:
    """Number of distinct PI-to-PO paths reaching each primary output.

    Counts are capped at *cap* to keep feature values bounded on very deep
    graphs (path counts grow exponentially with reconvergence).
    """
    paths: List[int] = [0] * aig.size
    for var in aig.pi_vars:
        paths[var] = 1
    paths[0] = 1  # constant node contributes a single trivial path
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        total = paths[literal_var(f0)] + paths[literal_var(f1)]
        paths[var] = min(total, cap)
    return [min(paths[literal_var(lit)], cap) for lit in aig.po_literals()]


def transitive_fanout(
    aig: Aig, roots: Iterable[int], include_roots: bool = True
) -> Set[int]:
    """Variables reachable from *roots* (variable ids) via fanout edges.

    This is the *dirty cone* of incremental evaluation: when only the root
    nodes were perturbed, every node whose mapping choice or arrival time can
    differ lies in the transitive fanout of the roots (consumers see changed
    structure, arrival times, or fanout-dependent area flow).
    """
    consumers = aig.fanouts()
    root_list = [var for var in roots if 0 <= var < aig.size]
    reached: Set[int] = set(root_list) if include_roots else set()
    stack = list(root_list)
    visited: Set[int] = set(root_list)
    while stack:
        var = stack.pop()
        for consumer in consumers[var]:
            if consumer in visited:
                continue
            visited.add(consumer)
            reached.add(consumer)
            stack.append(consumer)
    return reached


def po_cone_sizes(aig: Aig) -> List[int]:
    """Number of AND nodes in the transitive fanin cone of each output."""
    sizes = []
    for lit in aig.po_literals():
        seen = set()
        stack = [literal_var(lit)]
        while stack:
            var = stack.pop()
            if var in seen or not aig.is_and(var):
                continue
            seen.add(var)
            f0, f1 = aig.fanins(var)
            stack.append(literal_var(f0))
            stack.append(literal_var(f1))
        sizes.append(len(seen))
    return sizes


def fanout_histogram(aig: Aig) -> Dict[int, int]:
    """Histogram mapping fanout count -> number of nodes with that fanout."""
    histogram: Dict[int, int] = {}
    fanouts = aig.fanout_counts()
    for var in range(1, aig.size):
        count = fanouts[var]
        histogram[count] = histogram.get(count, 0) + 1
    return histogram


def structural_summary(aig: Aig) -> Dict[str, float]:
    """A compact dictionary of structural statistics used in reports."""
    fanouts = [f for var, f in enumerate(aig.fanout_counts()) if var != 0]
    depth_report = po_depths(aig)
    return {
        "num_pis": float(aig.num_pis),
        "num_pos": float(aig.num_pos),
        "num_ands": float(aig.num_ands),
        "depth": float(aig.depth()),
        "max_po_depth": float(depth_report.max_depth),
        "mean_fanout": (sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        "max_fanout": float(max(fanouts)) if fanouts else 0.0,
    }
