"""Structural analysis of AIGs: levels, depths per output, path counts.

These routines underpin both the proxy metrics used by the baseline
optimization flow (AIG depth and node count) and the richer graph-level
features of Table II in the paper (per-output depths, fanout-weighted depths,
path counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.aig.graph import Aig
from repro.aig.literals import literal_var
from repro.errors import AigError


@dataclass(frozen=True)
class DepthReport:
    """Per-output depth summary of an AIG."""

    po_depths: Tuple[int, ...]
    max_depth: int

    def top(self, n: int) -> List[int]:
        """The *n* largest PO depths, padded with zeros if needed."""
        ordered = sorted(self.po_depths, reverse=True)
        ordered += [0] * max(0, n - len(ordered))
        return ordered[:n]


def node_levels(aig: Aig) -> List[int]:
    """Unweighted level of every variable (PIs at level 0)."""
    return aig.levels()


def weighted_node_levels(aig: Aig, weights: Sequence[float]) -> List[float]:
    """Longest weighted path from any PI to each variable.

    The weight of a node is added when the path passes *through* that node
    (PIs included, consistent with the paper's Fig. 4 which counts the PI
    node and excludes the PO marker).
    """
    arrays = aig.arrays()
    w = np.asarray(weights, dtype=np.float64)
    level = np.zeros(aig.size, dtype=np.float64)
    pi_vars = arrays.pi_vars
    if pi_vars.size:
        level[pi_vars] = w[pi_vars]
    f0v = arrays.fanin0_var
    f1v = arrays.fanin1_var
    # Level waves: each group depends only on strictly lower levels, and
    # max-then-add is the same two float64 operations the scalar recurrence
    # performed, so results are bit-identical.
    for group in arrays.and_level_groups():
        level[group] = np.maximum(level[f0v[group]], level[f1v[group]]) + w[group]
    return level.tolist()


def po_depths(aig: Aig) -> DepthReport:
    """Depth (node count from PI, excluding the PO marker) of every output."""
    level = aig.levels()
    depths = []
    for lit in aig.po_literals():
        var = literal_var(lit)
        # Count nodes on the path including the PI endpoint: a direct
        # PI-to-PO connection has depth 1, matching Fig. 4(a) in the paper.
        depths.append(level[var] + 1 if var != 0 else 0)
    max_depth = max(depths) if depths else 0
    return DepthReport(po_depths=tuple(depths), max_depth=max_depth)


def weighted_po_depths(aig: Aig, weights: Sequence[float]) -> List[float]:
    """Largest weighted path value reaching each primary output."""
    level = weighted_node_levels(aig, weights)
    return [level[literal_var(lit)] for lit in aig.po_literals()]


def critical_path_nodes(aig: Aig) -> List[int]:
    """Variables lying on at least one maximum-depth (critical) path.

    A node is critical when its level plus the longest path from it to any
    PO equals the graph depth.  This is the node set the paper's
    ``long_path_fanout_*`` features aggregate over.
    """
    arrays = aig.arrays()
    level = arrays.levels()
    size = aig.size
    # Longest path from each node to a PO (counted in nodes below it),
    # propagated in reverse level waves: a node's to_po is final before any
    # of its fanins are updated, because all its consumers sit at strictly
    # higher levels and were processed in earlier (higher) waves.
    to_po = np.full(size, -1, dtype=np.int64)
    for lit in aig.po_literals():
        var = literal_var(lit)
        if to_po[var] < 0:
            to_po[var] = 0
    f0v = arrays.fanin0_var
    f1v = arrays.fanin1_var
    for group in reversed(arrays.and_level_groups()):
        active = group[to_po[group] >= 0]
        if active.size == 0:
            continue
        contribution = to_po[active] + 1
        np.maximum.at(to_po, f0v[active], contribution)
        np.maximum.at(to_po, f1v[active], contribution)
    depth = aig.depth()
    on_path = (to_po >= 0) & (level + to_po == depth)
    on_path[0] = False
    return np.nonzero(on_path)[0].tolist()


def count_paths_per_po(aig: Aig, cap: int = 10**12) -> List[int]:
    """Number of distinct PI-to-PO paths reaching each primary output.

    Counts are capped at *cap* to keep feature values bounded on very deep
    graphs (path counts grow exponentially with reconvergence).
    """
    # Vectorized level waves stay exact in int64 as long as intermediate
    # sums cannot overflow: per-node values are clamped to cap, so a sum of
    # two is at most 2*cap.  Larger caps fall back to the arbitrary-
    # precision scalar loop.
    arrays = aig.arrays()
    if 0 < cap <= 2**62:
        paths_arr = np.zeros(aig.size, dtype=np.int64)
        if arrays.pi_vars.size:
            paths_arr[arrays.pi_vars] = 1
        paths_arr[0] = 1  # constant node contributes a single trivial path
        f0v = arrays.fanin0_var
        f1v = arrays.fanin1_var
        for group in arrays.and_level_groups():
            paths_arr[group] = np.minimum(
                paths_arr[f0v[group]] + paths_arr[f1v[group]], cap
            )
        paths = paths_arr.tolist()
    else:
        paths = [0] * aig.size
        for var in aig.pi_vars:
            paths[var] = 1
        paths[0] = 1
        f0v, f1v = arrays.fanin_var_lists()
        for var in arrays.and_vars.tolist():
            total = paths[f0v[var]] + paths[f1v[var]]
            paths[var] = total if total < cap else cap
    return [min(paths[literal_var(lit)], cap) for lit in aig.po_literals()]


def transitive_fanout(
    aig: Aig, roots: Iterable[int], include_roots: bool = True
) -> Set[int]:
    """Variables reachable from *roots* (variable ids) via fanout edges.

    This is the *dirty cone* of incremental evaluation: when only the root
    nodes were perturbed, every node whose mapping choice or arrival time can
    differ lies in the transitive fanout of the roots (consumers see changed
    structure, arrival times, or fanout-dependent area flow).

    An out-of-range root raises :class:`AigError`: a silent drop here would
    mask journal corruption and shrink the dirty cone into wrong-answer
    territory.
    """
    size = aig.size
    root_list = list(roots)
    for var in root_list:
        if not 0 <= var < size:
            raise AigError(
                f"transitive_fanout root {var} out of range (size {size})"
            )
    # The cached CSR adjacency makes this proportional to the cone touched,
    # not to the whole graph (the old list-of-lists build was O(n) per call).
    offsets, consumers = aig.arrays().fanout_csr_lists()
    reached: Set[int] = set(root_list) if include_roots else set()
    stack = root_list
    visited: Set[int] = set(root_list)
    while stack:
        var = stack.pop()
        for consumer in consumers[offsets[var] : offsets[var + 1]]:
            if consumer in visited:
                continue
            visited.add(consumer)
            reached.add(consumer)
            stack.append(consumer)
    return reached


def po_cone_sizes(aig: Aig) -> List[int]:
    """Number of AND nodes in the transitive fanin cone of each output."""
    sizes = []
    for lit in aig.po_literals():
        seen = set()
        stack = [literal_var(lit)]
        while stack:
            var = stack.pop()
            if var in seen or not aig.is_and(var):
                continue
            seen.add(var)
            f0, f1 = aig.fanins(var)
            stack.append(literal_var(f0))
            stack.append(literal_var(f1))
        sizes.append(len(seen))
    return sizes


def fanout_histogram(aig: Aig) -> Dict[int, int]:
    """Histogram mapping fanout count -> number of nodes with that fanout."""
    histogram: Dict[int, int] = {}
    fanouts = aig.fanout_counts()
    for var in range(1, aig.size):
        count = fanouts[var]
        histogram[count] = histogram.get(count, 0) + 1
    return histogram


def structural_summary(aig: Aig) -> Dict[str, float]:
    """A compact dictionary of structural statistics used in reports."""
    fanouts = [f for var, f in enumerate(aig.fanout_counts()) if var != 0]
    depth_report = po_depths(aig)
    return {
        "num_pis": float(aig.num_pis),
        "num_pos": float(aig.num_pos),
        "num_ands": float(aig.num_ands),
        "depth": float(aig.depth()),
        "max_po_depth": float(depth_report.max_depth),
        "mean_fanout": (sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        "max_fanout": float(max(fanouts)) if fanouts else 0.0,
    }
