"""Mutation journal and structural diffing for incremental evaluation.

The incremental PPA engine (:mod:`repro.mapping.incremental`,
:class:`repro.api.incremental.IncrementalEvaluator`) needs to know, for a
candidate AIG produced by a transform, which nodes can reuse the mapping and
timing state of an already-evaluated baseline graph.  Two mechanisms feed it:

* a :class:`MutationJournal` attached to every :class:`~repro.aig.graph.Aig`.
  When enabled it records touched variable ids per transform (new nodes, PO
  redirects) and the exact key of the parent graph each transform started
  from, so an evaluator can locate its baseline state without rehashing.
* :func:`structural_diff`, which compares two graphs by per-node structural
  hashes (:func:`node_hashes`, the same hashes that power
  :meth:`Aig.fingerprint`) and reports which nodes of the child are *touched*
  — not structurally present in the parent, or present with a different
  fanout count.  Because the per-node mapping/timing state of a node depends
  only on its transitive-fanin structure and the fanout counts inside that
  cone, the transitive fanout of the touched set (the *dirty cone*, see
  :func:`repro.aig.analysis.transitive_fanout`) is a sound over-approximation
  of every node whose mapping choice or arrival time can change.

Transforms are implemented rebuild-style (a fresh graph per application), so
:meth:`repro.transforms.base.Transform.run` records one journal entry per
transform on the *output* graph whenever journaling is enabled on the input.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.aig.literals import is_complemented, literal_var
from repro.errors import AigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.aig.graph import Aig

_DIGEST_SIZE = 16
_CONST_HASH = hashlib.blake2b(b"const0", digest_size=_DIGEST_SIZE).digest()


def node_hashes(aig: "Aig") -> List[bytes]:
    """Per-variable structural hash of the transitive fanin cone.

    Two variables (possibly in different graphs) receive the same hash
    exactly when they compute the same AND/inverter structure over the same
    primary-input *positions*.  The hash is insensitive to variable ids and
    to the order of the two fanins, which makes it the correspondence key
    between a baseline graph and a transformed candidate.  The PO-level
    digest of :meth:`Aig.fingerprint` is built from these same hashes.
    """
    hashes: List[bytes] = [_CONST_HASH] * aig.size
    for index, var in enumerate(aig.pi_vars):
        hashes[var] = hashlib.blake2b(
            b"pi:%d" % index, digest_size=_DIGEST_SIZE
        ).digest()
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        e0 = hashes[literal_var(f0)] + (b"1" if is_complemented(f0) else b"0")
        e1 = hashes[literal_var(f1)] + (b"1" if is_complemented(f1) else b"0")
        lo, hi = (e0, e1) if e0 <= e1 else (e1, e0)
        hashes[var] = hashlib.blake2b(
            b"and:" + lo + hi, digest_size=_DIGEST_SIZE
        ).digest()
    return hashes


def node_hashes_cached(aig: "Aig") -> List[bytes]:
    """:func:`node_hashes` with a per-graph cache.

    Sound because the graph's node arrays are append-only: existing
    variables never change their fanins, so a cached hash list is valid for
    exactly as long as the variable count is unchanged (PO edits do not
    affect node hashes).  This collapses the repeated whole-graph hashing a
    journaled transform chain would otherwise pay — the child hashed for
    the transform diff is the same list the evaluator and the next diff
    (where it is the parent) reuse.
    """
    cache = aig._node_hash_cache
    if cache is not None and len(cache) == aig.size:
        return cache
    hashes = node_hashes(aig)
    aig._node_hash_cache = hashes
    return hashes


def fingerprint_from_hashes(aig: "Aig", hashes: Sequence[bytes]) -> str:
    """The :meth:`Aig.fingerprint` digest, from precomputed node hashes.

    Lets callers that already hold :func:`node_hashes` output (the
    incremental evaluator hashes every candidate exactly once) derive the
    PO-level fingerprint without rehashing the graph.
    """
    top = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    top.update(b"aig:%d:%d" % (aig.num_pis, aig.num_pos))
    for lit in aig.po_literals():
        top.update(hashes[literal_var(lit)])
        top.update(b"1" if is_complemented(lit) else b"0")
    return top.hexdigest()


@dataclass(frozen=True)
class StructuralDiff:
    """Correspondence between a parent and a child graph.

    Attributes
    ----------
    touched:
        Child variable ids that are not structurally present in the parent
        or whose fanout count differs from their parent counterpart.  This
        is the seed set of the dirty cone.
    matched:
        child var -> parent var for every structurally matched variable.
    order_preserved:
        True when matched parent ids are strictly increasing in child
        creation order.  Cut enumeration and mapping tie-breaks compare
        variable ids, so per-node state may only be reused across graphs
        when the relative order of matched nodes is preserved (rebuild-style
        transforms copy surviving logic in topological order, so this holds
        in practice; when it does not, callers must fall back to a full
        recompute).
    """

    touched: FrozenSet[int]
    matched: Dict[int, int]
    order_preserved: bool

    @property
    def num_matched(self) -> int:
        """Number of structurally matched variables."""
        return len(self.matched)


def structural_diff(
    parent: "Aig",
    child: "Aig",
    parent_hashes: Optional[Sequence[bytes]] = None,
    child_hashes: Optional[Sequence[bytes]] = None,
    parent_fanout: Optional[Sequence[int]] = None,
    child_fanout: Optional[Sequence[int]] = None,
) -> StructuralDiff:
    """Diff *child* against *parent* by structural node hashes.

    Pre-computed hashes/fanout-count arrays may be passed to avoid
    recomputation (the incremental evaluator caches them per graph).
    """
    if parent_hashes is None:
        parent_hashes = node_hashes_cached(parent)
    if child_hashes is None:
        child_hashes = node_hashes_cached(child)
    if parent_fanout is None:
        parent_fanout = parent.fanout_counts()
    if child_fanout is None:
        child_fanout = child.fanout_counts()

    parent_var_of: Dict[bytes, int] = {}
    for var in range(parent.size):
        # Structural hashing makes duplicate hashes impossible in a strashed
        # graph; keep the first occurrence if an unstrashed reader produced
        # duplicates (later copies simply count as unmatched).
        parent_var_of.setdefault(parent_hashes[var], var)

    touched: Set[int] = set()
    matched: Dict[int, int] = {}
    seen_parent: Set[int] = set()
    order_preserved = True
    last_parent = -1
    for var in range(child.size):
        parent_var = parent_var_of.get(child_hashes[var])
        if parent_var is None or parent_var in seen_parent:
            touched.add(var)
            continue
        matched[var] = parent_var
        seen_parent.add(parent_var)
        if parent_var <= last_parent:
            order_preserved = False
        last_parent = parent_var
        if child_fanout[var] != parent_fanout[parent_var]:
            touched.add(var)
    return StructuralDiff(
        touched=frozenset(touched), matched=matched, order_preserved=order_preserved
    )


# --------------------------------------------------------------------------- #
# The journal
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class JournalEntry:
    """One recorded transform application.

    ``touched`` holds variable ids *in the graph this journal belongs to*
    (the transform's output graph) that were created or perturbed by the
    transform; ``parent_key`` is the :meth:`Aig.exact_key` of the graph the
    transform was applied to, so an incremental evaluator can look up its
    cached state for that exact baseline.
    """

    transform: str
    touched: FrozenSet[int]
    parent_key: Optional[str] = None
    po_indices: FrozenSet[int] = frozenset()


class MutationJournal:
    """Records touched node ids per transform on one :class:`Aig`.

    The journal is disabled by default (zero bookkeeping on the hot
    construction path beyond a boolean check).  When enabled, in-place graph
    edits (:meth:`Aig.add_pi`, :meth:`Aig.add_and` when a new node is
    created, :meth:`Aig.add_po`, :meth:`Aig.set_po_literal`) are recorded
    into the *open* entry; rebuild-style transforms record one entry per
    application via :meth:`note_transform`.

    Nested ``begin()``/``commit()`` scopes merge the inner scope's touched
    set into the enclosing scope on commit, so a composite transform that
    internally applies primitives reports one consolidated entry while the
    primitives still see consistent bookkeeping.  :meth:`clear` drops all
    entries and any open scopes — sessions call it (via fresh graphs) so no
    state leaks across calls.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.entries: List[JournalEntry] = []
        self._open: List[Tuple[str, Set[int], Set[int]]] = []

    # ------------------------------------------------------------------ #
    def enable(self) -> None:
        """Turn recording on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off (existing entries are kept)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all entries and abandon any open scopes."""
        self.entries.clear()
        self._open.clear()

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------ #
    # Scoped recording of in-place edits
    # ------------------------------------------------------------------ #
    def begin(self, transform: str) -> None:
        """Open a (possibly nested) recording scope for *transform*."""
        if not self.enabled:
            return
        self._open.append((transform, set(), set()))

    def commit(self, parent_key: Optional[str] = None) -> Optional[JournalEntry]:
        """Close the innermost scope.

        A nested scope folds its touched set into the enclosing scope; the
        outermost scope becomes a :class:`JournalEntry`.
        """
        if not self.enabled:
            return None
        if not self._open:
            raise AigError("journal commit without a matching begin")
        transform, touched, po_indices = self._open.pop()
        if self._open:
            self._open[-1][1].update(touched)
            self._open[-1][2].update(po_indices)
            return None
        entry = JournalEntry(
            transform=transform,
            touched=frozenset(touched),
            parent_key=parent_key,
            po_indices=frozenset(po_indices),
        )
        self.entries.append(entry)
        return entry

    def abort(self) -> None:
        """Discard the innermost open scope without recording anything."""
        if self._open:
            self._open.pop()

    @property
    def depth(self) -> int:
        """Number of currently open (nested) scopes."""
        return len(self._open)

    # ------------------------------------------------------------------ #
    # Event hooks called by Aig mutators
    # ------------------------------------------------------------------ #
    def note_var(self, var: int) -> None:
        """Record that variable *var* was created or structurally edited."""
        if not self.enabled:
            return
        if self._open:
            self._open[-1][1].add(var)
        else:
            # Edits outside any scope form an implicit open entry that the
            # next note_transform/commit-less read folds in.
            self._open.append(("<unscoped>", {var}, set()))

    def note_po(self, index: int, driver_var: int) -> None:
        """Record that primary output *index* was (re)connected."""
        if not self.enabled:
            return
        if not self._open:
            self._open.append(("<unscoped>", set(), set()))
        self._open[-1][1].add(driver_var)
        self._open[-1][2].add(index)

    def note_transform(
        self,
        transform: str,
        touched: Set[int],
        parent_key: Optional[str] = None,
    ) -> Optional[JournalEntry]:
        """Record one rebuild-style transform application as a single entry."""
        if not self.enabled:
            return None
        entry = JournalEntry(
            transform=transform,
            touched=frozenset(touched),
            parent_key=parent_key,
        )
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------ #
    def touched_union(self) -> FrozenSet[int]:
        """Union of touched ids over all committed entries and open scopes."""
        union: Set[int] = set()
        for entry in self.entries:
            union.update(entry.touched)
        for _, touched, _ in self._open:
            union.update(touched)
        return frozenset(union)

    def last_entry(self) -> Optional[JournalEntry]:
        """The most recently committed entry, if any."""
        return self.entries[-1] if self.entries else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return f"MutationJournal({state}, entries={len(self.entries)}, open={self.depth})"


def dirty_cone(aig: "Aig", touched: Sequence[int]) -> Set[int]:
    """Transitive fanout of *touched* (touched nodes included).

    This is the set of nodes whose mapping choice or arrival time may have
    changed when only *touched* nodes were perturbed; everything outside it
    can reuse previously computed per-node state.
    """
    from repro.aig.analysis import transitive_fanout

    return transitive_fanout(aig, touched, include_roots=True)
