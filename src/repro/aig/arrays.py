"""Structure-of-arrays view of an :class:`~repro.aig.graph.Aig`.

The :class:`Aig` stores its nodes in append-only Python lists — the right
shape for the structurally hashed construction path, the wrong shape for the
whole-graph sweeps every downstream pass performs (levels, fanout counts,
bit-parallel simulation, cut enumeration, mapping, STA).  This module
materialises those lists once per graph into contiguous numpy arrays so the
sweeps become indexed array walks instead of per-node method calls.

Soundness of the caching rests on two invariants of :class:`Aig`:

* node arrays are **append-only** — an existing variable never changes its
  fanins or its PI-ness, so any snapshot taken at size ``n`` stays valid for
  the first ``n`` variables forever (the same invariant the node-hash cache
  in :mod:`repro.aig.journal` relies on);
* primary-output bindings *can* be redirected in place
  (:meth:`Aig.set_po_literal`), so anything derived from the PO list (fanout
  counts) is additionally keyed on a PO edit counter.

A snapshot is therefore cached on the graph and transparently replaced when
the variable count changes; :meth:`Aig.clone` shares the snapshot by
reference.  Derived data (levels, level groups, fanout CSR) is computed
lazily inside the snapshot, so a graph that is only ever constructed and
hashed pays nothing.

Everything exposed here is **read-only** by convention: callers must never
write into the returned arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class AigArrays:
    """Immutable array-of-struct → struct-of-array snapshot of one graph.

    Attributes
    ----------
    size:
        Number of variables covered by this snapshot.
    fanin0_lit / fanin1_lit:
        Per-variable fanin literals (``0`` for the constant and PIs).
    fanin0_var / fanin1_var:
        The fanin literals' variable ids (``lit >> 1``).
    fanin0_comp / fanin1_comp:
        The fanin literals' complement bits (``lit & 1``) as ``bool``.
    is_pi / is_and:
        Node-kind masks; ``is_and`` is "not constant and not PI".
    pi_vars:
        PI variable ids in declaration order.
    and_vars:
        AND variable ids in ascending (topological) order.
    """

    __slots__ = (
        "size",
        "fanin0_lit",
        "fanin1_lit",
        "fanin0_var",
        "fanin1_var",
        "fanin0_comp",
        "fanin1_comp",
        "is_pi",
        "is_and",
        "pi_vars",
        "and_vars",
        "_fanin0_var_list",
        "_fanin1_var_list",
        "_levels",
        "_levels_list",
        "_and_level_groups",
        "_fanin_ref_counts",
        "_fanout_csr",
        "_fanout_offsets_list",
        "_fanout_consumers_list",
        "cut_cache",
        "dp_cache",
    )

    def __init__(self, fanin0: List[int], fanin1: List[int], is_pi: List[int], pis: List[int]) -> None:
        size = len(fanin0)
        self.size = size
        self.fanin0_lit = np.asarray(fanin0, dtype=np.int64)
        self.fanin1_lit = np.asarray(fanin1, dtype=np.int64)
        self.fanin0_var = self.fanin0_lit >> 1
        self.fanin1_var = self.fanin1_lit >> 1
        self.fanin0_comp = (self.fanin0_lit & 1).astype(bool)
        self.fanin1_comp = (self.fanin1_lit & 1).astype(bool)
        self.is_pi = np.asarray(is_pi, dtype=bool)
        self.is_and = ~self.is_pi
        if size:
            self.is_and[0] = False
        self.pi_vars = np.asarray(pis, dtype=np.int64)
        self.and_vars = np.nonzero(self.is_and)[0]
        # The snapshot is shared by reference across clones and memo caches
        # (rule C2's runtime complement): freeze every array so accidental
        # in-place mutation by a caller raises instead of silently poisoning
        # every other graph sharing the snapshot.
        for array in (
            self.fanin0_lit,
            self.fanin1_lit,
            self.fanin0_var,
            self.fanin1_var,
            self.fanin0_comp,
            self.fanin1_comp,
            self.is_pi,
            self.is_and,
            self.pi_vars,
            self.and_vars,
        ):
            array.setflags(write=False)
        # Lazy caches.
        self._fanin0_var_list: Optional[List[int]] = None
        self._fanin1_var_list: Optional[List[int]] = None
        self._levels: Optional[np.ndarray] = None
        self._levels_list: Optional[List[int]] = None
        self._and_level_groups: Optional[List[np.ndarray]] = None
        self._fanin_ref_counts: Optional[np.ndarray] = None
        self._fanout_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._fanout_offsets_list: Optional[List[int]] = None
        self._fanout_consumers_list: Optional[List[int]] = None
        # Cut-enumeration results keyed by (k, max_cuts_per_node,
        # include_trivial); owned by repro.aig.cuts.enumerate_cuts.  Cuts
        # depend only on the frozen node prefix this snapshot describes, so
        # the cache is sound for every graph sharing the snapshot.  Cached
        # structures are shared, never copied: callers must treat them as
        # immutable.
        self.cut_cache: Dict[Tuple[int, int, bool], Dict] = {}
        # Array-form derived state keyed by pass-specific tuples: the
        # vectorized cut enumeration (repro.aig.cut_arrays) and the mapper's
        # candidate layout (repro.mapping.dp_arrays) both memoise here.  Like
        # cut_cache, entries depend only on the frozen node prefix (plus
        # immutable library data captured in the key), so sharing across
        # clones is sound; cached objects must be treated as immutable.
        self.dp_cache: Dict[Tuple, object] = {}

    # ------------------------------------------------------------------ #
    # Plain-list mirrors (fastest for the remaining per-node Python loops)
    # ------------------------------------------------------------------ #
    def fanin_var_lists(self) -> Tuple[List[int], List[int]]:
        """Fanin variable ids as plain Python lists (index = variable)."""
        if self._fanin0_var_list is None:
            self._fanin0_var_list = self.fanin0_var.tolist()
            self._fanin1_var_list = self.fanin1_var.tolist()
        return self._fanin0_var_list, self._fanin1_var_list

    # ------------------------------------------------------------------ #
    # Levels
    # ------------------------------------------------------------------ #
    def levels(self) -> np.ndarray:
        """Per-variable logic level (PIs and constant at 0) as ``int64``.

        The level recurrence ``level[v] = 1 + max(level[f0], level[f1])`` is
        a true data-dependent scan, so it is computed once with a tight
        Python loop over the pre-extracted fanin lists and cached; every
        other level-ordered pass (level groups, wave-parallel simulation)
        reuses it for free.
        """
        if self._levels is None:
            f0v, f1v = self.fanin_var_lists()
            level = [0] * self.size
            for var in self.and_vars.tolist():
                l0 = level[f0v[var]]
                l1 = level[f1v[var]]
                level[var] = (l0 if l0 >= l1 else l1) + 1
            self._levels_list = level
            self._levels = np.asarray(level, dtype=np.int64)
            self._levels.setflags(write=False)
        return self._levels

    def levels_list(self) -> List[int]:
        """The cached levels as a plain Python list (do not mutate)."""
        if self._levels_list is None:
            self.levels()
        return self._levels_list  # type: ignore[return-value]

    def and_level_groups(self) -> List[np.ndarray]:
        """AND variables grouped by level, ascending (level 1 first).

        Each group's members depend only on strictly lower levels, so a pass
        that processes groups in order may evaluate every member of a group
        with one vectorised operation.  Groups are sorted by variable id, so
        per-group gather order is deterministic.
        """
        if self._and_level_groups is None:
            levels = self.levels()
            ands = self.and_vars
            if ands.size == 0:
                self._and_level_groups = []
            else:
                and_levels = levels[ands]
                order = np.argsort(and_levels, kind="stable")
                ordered = ands[order]
                ordered_levels = and_levels[order]
                boundaries = np.nonzero(np.diff(ordered_levels))[0] + 1
                self._and_level_groups = np.split(ordered, boundaries)
                for group in self._and_level_groups:
                    group.setflags(write=False)
        return self._and_level_groups

    # ------------------------------------------------------------------ #
    # Fanout structure
    # ------------------------------------------------------------------ #
    def fanin_ref_counts(self) -> np.ndarray:
        """Per-variable reference count from AND fanins only (no POs)."""
        if self._fanin_ref_counts is None:
            ands = self.and_vars
            counts = np.bincount(self.fanin0_var[ands], minlength=self.size)
            counts += np.bincount(self.fanin1_var[ands], minlength=self.size)
            self._fanin_ref_counts = counts.astype(np.int64, copy=False)
            self._fanin_ref_counts.setflags(write=False)
        return self._fanin_ref_counts

    def fanout_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency ``(offsets, consumers)``: AND consumers per variable.

        ``consumers[offsets[v]:offsets[v + 1]]`` lists the AND variables that
        use ``v`` as a fanin, in ascending consumer order, with one entry per
        consuming fanin slot (a node consuming ``v`` on both fanins appears
        twice — the same multiset the list-of-lists :meth:`Aig.fanouts`
        produced).
        """
        if self._fanout_csr is None:
            ands = self.and_vars
            sources = np.concatenate((self.fanin0_var[ands], self.fanin1_var[ands]))
            consumers = np.concatenate((ands, ands))
            order = np.lexsort((consumers, sources))
            sorted_sources = sources[order]
            sorted_consumers = consumers[order]
            counts = np.bincount(sorted_sources, minlength=self.size)
            offsets = np.zeros(self.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            sorted_consumers = sorted_consumers.astype(np.int64, copy=False)
            offsets.setflags(write=False)
            sorted_consumers.setflags(write=False)
            self._fanout_csr = (offsets, sorted_consumers)
        return self._fanout_csr

    def fanout_csr_lists(self) -> Tuple[List[int], List[int]]:
        """The CSR adjacency as plain Python lists (for scalar BFS walks)."""
        if self._fanout_offsets_list is None:
            offsets, consumers = self.fanout_csr()
            self._fanout_offsets_list = offsets.tolist()
            self._fanout_consumers_list = consumers.tolist()
        return self._fanout_offsets_list, self._fanout_consumers_list  # type: ignore[return-value]
