"""Truth-table utilities.

Truth tables over ``n`` variables are plain Python integers holding ``2**n``
bits; bit ``i`` is the function value under the input assignment whose binary
encoding is ``i`` (variable 0 is the least-significant input).  Python's
arbitrary-precision integers make this representation work for any ``n``,
although most callers (cut matching, rewriting) stay at ``n <= 6``.

The module provides the usual Boolean operations, cofactoring, support
detection, an irredundant sum-of-products (Minato-Morreale ISOP) cover, and
NPN canonicalisation used by the technology mapper's Boolean matcher.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Dict, List, Sequence, Tuple

from repro.errors import TruthTableError

MAX_EXACT_NPN_VARS = 5

#: Precomputed all-ones masks for the variable counts that occur in practice
#: (cut matching and rewriting stay at k <= 10; 16 is comfortable headroom).
_MASKS: Tuple[int, ...] = tuple((1 << (1 << n)) - 1 for n in range(17))


def table_mask(num_vars: int) -> int:
    """All-ones mask for a *num_vars*-input truth table."""
    if 0 <= num_vars < len(_MASKS):
        return _MASKS[num_vars]
    if num_vars < 0:
        raise TruthTableError(f"num_vars must be non-negative, got {num_vars}")
    return (1 << (1 << num_vars)) - 1


@lru_cache(maxsize=None)
def var_truth(index: int, num_vars: int) -> int:
    """Truth table of input variable *index* within a *num_vars*-input space."""
    if not 0 <= index < num_vars:
        raise TruthTableError(f"variable index {index} out of range for {num_vars} vars")
    bits = 1 << num_vars
    value = 0
    for minterm in range(bits):
        if (minterm >> index) & 1:
            value |= 1 << minterm
    return value


def truth_not(table: int, num_vars: int) -> int:
    """Complement of *table*."""
    return ~table & table_mask(num_vars)


def truth_and(a: int, b: int) -> int:
    """Conjunction of two truth tables over the same variable set."""
    return a & b


def truth_or(a: int, b: int) -> int:
    """Disjunction of two truth tables over the same variable set."""
    return a | b


def truth_xor(a: int, b: int) -> int:
    """Exclusive-or of two truth tables over the same variable set."""
    return a ^ b


def is_const0(table: int, num_vars: int) -> bool:
    """True when *table* is the constant-false function."""
    return (table & table_mask(num_vars)) == 0


def is_const1(table: int, num_vars: int) -> bool:
    """True when *table* is the constant-true function."""
    return (table & table_mask(num_vars)) == table_mask(num_vars)


def count_ones(table: int, num_vars: int) -> int:
    """Number of minterms of *table*."""
    return bin(table & table_mask(num_vars)).count("1")


def cofactor(table: int, num_vars: int, var: int, value: int) -> int:
    """Shannon cofactor of *table* with input *var* fixed to *value* (0/1).

    The result is still expressed over the full *num_vars*-variable space
    (the cofactored variable simply becomes a don't-care), which keeps the
    recursive ISOP code simple.
    """
    if not 0 <= var < num_vars:
        raise TruthTableError(f"variable {var} out of range for {num_vars} vars")
    mask = table_mask(num_vars)
    v = var_truth(var, num_vars)
    if value:
        positive = table & v
        return (positive | (positive >> (1 << var))) & mask
    negative = table & ~v & mask
    return (negative | (negative << (1 << var))) & mask


@lru_cache(maxsize=None)
def _var_false_mask(var: int, num_vars: int) -> int:
    """Mask of the minterms where input *var* is 0."""
    return ~var_truth(var, num_vars) & table_mask(num_vars)


def depends_on(table: int, num_vars: int, var: int) -> bool:
    """True when the function actually depends on input *var*."""
    if not 0 <= var < num_vars:
        raise TruthTableError(f"variable {var} out of range for {num_vars} vars")
    # The function depends on var iff some minterm with var=0 disagrees with
    # its var=1 twin; the shift aligns each twin pair onto the var=0 slot.
    masked = table & table_mask(num_vars)
    return bool(((masked >> (1 << var)) ^ masked) & _var_false_mask(var, num_vars))


def support(table: int, num_vars: int) -> List[int]:
    """Indices of the variables the function depends on."""
    return [v for v in range(num_vars) if depends_on(table, num_vars, v)]


def expand_truth(table: int, num_vars: int, positions: Sequence[int], new_num_vars: int) -> int:
    """Re-express *table* over a larger variable space.

    ``positions[i]`` gives the index, in the new space, of old variable ``i``.
    """
    if len(positions) != num_vars:
        raise TruthTableError("positions must list one new index per old variable")
    result = 0
    for minterm in range(1 << new_num_vars):
        old_minterm = 0
        for old_var, new_var in enumerate(positions):
            if (minterm >> new_var) & 1:
                old_minterm |= 1 << old_var
        if (table >> old_minterm) & 1:
            result |= 1 << minterm
    return result


def truth_from_bits(bits: Sequence[int]) -> int:
    """Build a truth table integer from an explicit list of output bits."""
    length = len(bits)
    if length == 0 or length & (length - 1):
        raise TruthTableError(f"bit list length must be a power of two, got {length}")
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise TruthTableError(f"bit values must be 0 or 1, got {bit!r}")
        value |= bit << i
    return value


def truth_to_bits(table: int, num_vars: int) -> List[int]:
    """Explicit list of output bits of *table* (length ``2**num_vars``)."""
    return [(table >> i) & 1 for i in range(1 << num_vars)]


def truth_to_hex(table: int, num_vars: int) -> str:
    """Hex string of *table*, zero padded to the full table width."""
    digits = max(1, (1 << num_vars) // 4)
    return format(table & table_mask(num_vars), f"0{digits}x")


# --------------------------------------------------------------------------- #
# Irredundant sum of products (Minato-Morreale ISOP)
# --------------------------------------------------------------------------- #
Cube = Tuple[int, int]
"""A cube is a pair ``(positive_mask, negative_mask)`` over the input vars."""


def isop(on_set: int, dc_set: int, num_vars: int) -> List[Cube]:
    """Compute an irredundant SOP cover of *on_set* allowed to use *dc_set*.

    Returns a list of cubes; each cube is ``(pos_mask, neg_mask)`` where bit
    ``v`` of ``pos_mask`` means the cube contains literal ``v`` and bit ``v``
    of ``neg_mask`` means it contains ``!v``.

    The computation is memoised: the rewriting and refactoring transforms
    re-derive covers for the same (small) functions millions of times per
    annealing run, and the recursion itself revisits identical
    (lower, upper) subproblems across different top-level tables.  Covers
    are pure values (callers only read them), so sharing is sound; the
    public entry point still returns a fresh list.
    """
    return list(_isop_cached(on_set, dc_set, num_vars))


@lru_cache(maxsize=200_000)
def _isop_cached(on_set: int, dc_set: int, num_vars: int) -> Tuple[Cube, ...]:
    mask = table_mask(num_vars)
    on_set &= mask
    dc_set &= mask
    if on_set & ~(on_set | dc_set) & mask:
        raise TruthTableError("on-set must be contained in on-set | dc-set")
    cover, _ = _isop_recursive(on_set, (on_set | dc_set) & mask, num_vars, num_vars)
    return tuple(cover)


@lru_cache(maxsize=200_000)
def _isop_recursive(
    lower: int, upper: int, num_vars: int, var_count: int
) -> Tuple[List[Cube], int]:
    """Recursive Minato-Morreale: cover everything in *lower*, nothing outside *upper*."""
    mask = table_mask(num_vars)
    if lower == 0:
        return [], 0
    if upper == mask and lower != 0:
        return [(0, 0)], mask
    # Find the highest variable in the support of either bound.
    var = var_count - 1
    while var >= 0:
        if depends_on(lower, num_vars, var) or depends_on(upper, num_vars, var):
            break
        var -= 1
    if var < 0:
        # Constant non-zero lower bound with non-full upper bound cannot happen.
        return [(0, 0)], mask
    lower0 = cofactor(lower, num_vars, var, 0)
    lower1 = cofactor(lower, num_vars, var, 1)
    upper0 = cofactor(upper, num_vars, var, 0)
    upper1 = cofactor(upper, num_vars, var, 1)

    cover0, func0 = _isop_recursive(lower0 & ~upper1 & mask, upper0, num_vars, var)
    cover1, func1 = _isop_recursive(lower1 & ~upper0 & mask, upper1, num_vars, var)
    remaining = (lower0 & ~func0 & mask) | (lower1 & ~func1 & mask)
    cover2, func2 = _isop_recursive(remaining, upper0 & upper1, num_vars, var)

    v_true = var_truth(var, num_vars)
    v_false = truth_not(v_true, num_vars)
    cubes: List[Cube] = []
    cubes.extend((pos, neg | (1 << var)) for pos, neg in cover0)
    cubes.extend((pos | (1 << var), neg) for pos, neg in cover1)
    cubes.extend(cover2)
    function = (func0 & v_false) | (func1 & v_true) | func2
    return cubes, function & mask


def cube_to_truth(cube: Cube, num_vars: int) -> int:
    """Truth table of a single cube."""
    pos, neg = cube
    table = table_mask(num_vars)
    for var in range(num_vars):
        if (pos >> var) & 1:
            table &= var_truth(var, num_vars)
        if (neg >> var) & 1:
            table &= truth_not(var_truth(var, num_vars), num_vars)
    return table


def sop_to_truth(cubes: Sequence[Cube], num_vars: int) -> int:
    """Truth table of a sum of cubes."""
    table = 0
    for cube in cubes:
        table |= cube_to_truth(cube, num_vars)
    return table & table_mask(num_vars)


def cube_literal_count(cube: Cube) -> int:
    """Number of literals in a cube."""
    pos, neg = cube
    return pos.bit_count() + neg.bit_count()


# --------------------------------------------------------------------------- #
# NPN canonicalisation
# --------------------------------------------------------------------------- #
def apply_permutation(table: int, num_vars: int, perm: Sequence[int]) -> int:
    """Permute the inputs of *table*: new variable ``perm[i]`` = old variable ``i``."""
    return expand_truth(table, num_vars, list(perm), num_vars)


def apply_input_negation(table: int, num_vars: int, negation_mask: int) -> int:
    """Complement the inputs selected by *negation_mask*."""
    result = table
    for var in range(num_vars):
        if (negation_mask >> var) & 1:
            pos = cofactor(result, num_vars, var, 1)
            neg = cofactor(result, num_vars, var, 0)
            v_true = var_truth(var, num_vars)
            v_false = truth_not(v_true, num_vars)
            # Swapping the cofactors implements the input complement.
            result = (neg & v_true) | (pos & v_false)
    return result & table_mask(num_vars)


NpnTransform = Tuple[Tuple[int, ...], int, int]
"""(permutation, input_negation_mask, output_negation_flag)."""


@lru_cache(maxsize=200_000)
def npn_canonical(table: int, num_vars: int) -> Tuple[int, NpnTransform]:
    """Exact NPN-canonical representative of *table*.

    Enumerates all input permutations, input polarities, and the output
    polarity, returning the numerically smallest equivalent table and the
    transform that produced it.  Exhaustive enumeration is used, so the
    variable count is limited to :data:`MAX_EXACT_NPN_VARS`.
    """
    if num_vars > MAX_EXACT_NPN_VARS:
        raise TruthTableError(
            f"exact NPN canonicalisation supports at most {MAX_EXACT_NPN_VARS} "
            f"variables, got {num_vars}"
        )
    mask = table_mask(num_vars)
    table &= mask
    best = None
    best_transform: NpnTransform = (tuple(range(num_vars)), 0, 0)
    for perm in permutations(range(num_vars)):
        permuted = apply_permutation(table, num_vars, perm)
        for neg_mask in range(1 << num_vars):
            candidate = apply_input_negation(permuted, num_vars, neg_mask)
            for out_neg in (0, 1):
                final = truth_not(candidate, num_vars) if out_neg else candidate
                if best is None or final < best:
                    best = final
                    best_transform = (tuple(perm), neg_mask, out_neg)
    assert best is not None
    return best, best_transform


def npn_class(table: int, num_vars: int) -> int:
    """Just the canonical representative (ignore the transform)."""
    canonical, _ = npn_canonical(table, num_vars)
    return canonical


def p_canonical(table: int, num_vars: int) -> int:
    """P-canonical form: minimise over input permutations only."""
    mask = table_mask(num_vars)
    table &= mask
    best = table
    for perm in permutations(range(num_vars)):
        candidate = apply_permutation(table, num_vars, perm)
        if candidate < best:
            best = candidate
    return best


def all_input_permutations(num_vars: int) -> List[Tuple[int, ...]]:
    """All permutations of *num_vars* inputs (helper for matchers)."""
    return [tuple(p) for p in permutations(range(num_vars))]
