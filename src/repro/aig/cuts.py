"""K-feasible cut enumeration.

A *cut* of node ``n`` is a set of nodes (leaves) such that every path from a
primary input to ``n`` passes through a leaf.  A cut is *k-feasible* when it
has at most ``k`` leaves.  Cut enumeration is the workhorse of both the
rewriting transform (which resynthesises the logic inside a cut) and the
technology mapper (which matches cut functions against library cells).

The implementation follows the standard bottom-up merge: the cut set of an
AND node is the pairwise union of its fanins' cut sets, filtered to k leaves,
pruned of dominated cuts, and truncated to a per-node limit to bound runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.graph import Aig
from repro.aig.literals import literal_var
from repro.aig.simulate import cone_truth_table
from repro.errors import AigError


@dataclass(frozen=True)
class Cut:
    """An immutable cut: the root variable plus a sorted tuple of leaf variables."""

    root: int
    leaves: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self.leaves)

    def dominates(self, other: "Cut") -> bool:
        """True when this cut's leaves are a subset of *other*'s leaves."""
        return set(self.leaves).issubset(other.leaves)

    def truth_table(self, aig: Aig) -> int:
        """Exact truth table of the root over the cut leaves."""
        return cone_truth_table(aig, self.root * 2, self.leaves)


def _merge_leaves(la: Tuple[int, ...], lb: Tuple[int, ...], k: int) -> Optional[Tuple[int, ...]]:
    """Sorted-unique union of two sorted leaf tuples; None past *k* leaves.

    Leaf tuples are tiny (at most *k* entries), so C-level set union plus
    ``sorted`` beats a hand-rolled two-pointer merge — this is the hot
    inner step of enumeration.
    """
    if la == lb:
        return la if len(la) <= k else None
    union = set(la)
    union.update(lb)
    if len(union) > k:
        return None
    return tuple(sorted(union))


def merge_cuts(a: Cut, b: Cut, root: int, k: int) -> Optional[Cut]:
    """Union of two fanin cuts rooted at *root*; None when larger than *k*."""
    leaves = _merge_leaves(a.leaves, b.leaves, k)
    if leaves is None:
        return None
    return Cut(root=root, leaves=leaves)


def _prune_dominated(cuts: List[Cut]) -> List[Cut]:
    """Remove cuts dominated by another (smaller) cut in the list."""
    kept: List[Cut] = []
    kept_sets: List[set] = []
    # Smaller cuts first so dominating cuts are encountered before dominated ones.
    for cut in sorted(cuts, key=lambda c: (c.size, c.leaves)):
        leaf_set = set(cut.leaves)
        if any(existing <= leaf_set for existing in kept_sets):
            continue
        kept.append(cut)
        kept_sets.append(leaf_set)
    return kept


def merge_node_cuts(
    var: int,
    cuts0: Sequence[Cut],
    cuts1: Sequence[Cut],
    k: int,
    max_cuts_per_node: int,
    include_trivial: bool = True,
) -> List[Cut]:
    """Cut list of AND node *var* from its two fanins' cut lists.

    This is the per-node step of :func:`enumerate_cuts`, exposed separately
    so the incremental mapper can recompute cuts for dirty nodes only while
    producing exactly the lists a full enumeration would.
    """
    merged: List[Cut] = []
    seen_leaves = set()
    for cut0 in cuts0:
        leaves0 = cut0.leaves
        for cut1 in cuts1:
            leaves = _merge_leaves(leaves0, cut1.leaves, k)
            # Duplicate leaf sets are produced by many fanin-cut pairs; the
            # first instance subsumes the rest (pruning would drop them as
            # dominated-by-equal anyway).
            if leaves is None or leaves in seen_leaves:
                continue
            seen_leaves.add(leaves)
            merged.append(Cut(root=var, leaves=leaves))
    merged = _prune_dominated(merged)
    # Prefer smaller cuts; deterministic ordering keeps runs reproducible.
    merged.sort(key=lambda c: (c.size, c.leaves))
    merged = merged[:max_cuts_per_node]
    trivial = Cut(var, (var,))
    node_cuts = merged + [trivial] if include_trivial else merged
    if not node_cuts:
        node_cuts = [trivial]
    return node_cuts


def enumerate_cuts(
    aig: Aig,
    k: int = 4,
    max_cuts_per_node: int = 12,
    include_trivial: bool = True,
) -> Dict[int, List[Cut]]:
    """Enumerate k-feasible cuts for every variable of *aig*.

    Parameters
    ----------
    k:
        Maximum number of leaves per cut (4 by default, matching the 4-input
        cut rewriting and cell matching used elsewhere in the library).
    max_cuts_per_node:
        Per-node cap on the number of stored cuts; standard priority-cut
        style truncation keeps enumeration near-linear in practice.
    include_trivial:
        Whether the trivial cut ``{node}`` is kept in each node's list (the
        mapper needs it; rewriting skips it).

    Returns
    -------
    dict
        Maps each variable id to its list of cuts.  PIs and the constant node
        only carry their trivial cut.  The result is memoised on the graph's
        array snapshot (cuts depend only on the frozen node structure), so
        repeated enumeration with the same parameters — per annealing
        iteration, or across the mapper and the rewriter — returns the same
        shared object; callers must not mutate it.
    """
    if k < 2:
        raise AigError(f"cut size k must be at least 2, got {k}")
    arrays = aig.arrays()
    cache_key = (k, max_cuts_per_node, include_trivial)
    cached = arrays.cut_cache.get(cache_key)
    if cached is not None:
        return cached
    cuts: Dict[int, List[Cut]] = {0: [Cut(0, (0,))]}
    for var in aig.pi_vars:
        cuts[var] = [Cut(var, (var,))]
    f0v, f1v = arrays.fanin_var_lists()
    for var in arrays.and_vars.tolist():
        cuts[var] = merge_node_cuts(
            var, cuts[f0v[var]], cuts[f1v[var]], k, max_cuts_per_node, include_trivial
        )
    # repro-lint: ignore[C2] -- enumerate_cuts is the owner that populates
    # cut_cache (first write of this key), not a consumer mutating a
    # memoised return value.
    arrays.cut_cache[cache_key] = cuts
    return cuts


def best_cut_per_node(
    cuts: Dict[int, List[Cut]], min_leaves: int = 2
) -> Dict[int, Cut]:
    """Pick the largest non-trivial cut per node (used by rewriting)."""
    best: Dict[int, Cut] = {}
    for var, node_cuts in cuts.items():
        candidates = [c for c in node_cuts if c.size >= min_leaves and c.leaves != (var,)]
        if candidates:
            best[var] = max(candidates, key=lambda c: c.size)
    return best


def cut_volume(aig: Aig, cut: Cut) -> int:
    """Number of AND nodes strictly inside the cut (root included, leaves excluded)."""
    inside = set()
    stack = [cut.root]
    leaves = set(cut.leaves)
    while stack:
        var = stack.pop()
        if var in inside or var in leaves and var != cut.root:
            continue
        if not aig.is_and(var):
            continue
        inside.add(var)
        f0, f1 = aig.fanins(var)
        for fanin in (literal_var(f0), literal_var(f1)):
            if fanin not in leaves:
                stack.append(fanin)
    return len(inside)
