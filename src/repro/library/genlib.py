"""Parser for the genlib-lite standard-cell description format.

The format is a line-oriented simplification of Berkeley genlib with explicit
per-pin timing::

    # comment
    GATE <name> <area_um2> <output>=<expression>;
      PIN <pin_name> <cap_fF> <intrinsic_ps> <resistance_ps_per_fF>
      PIN ...

Pins must be declared in truth-table variable order (pin 0 first).  All pins
referenced by the expression must be declared, and vice versa.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.errors import ParseError
from repro.library.cell import Cell, PinTiming
from repro.library.expr import parse_expression

PathLike = Union[str, Path]


def parse_genlib(text: str) -> List[Cell]:
    """Parse genlib-lite *text* into a list of cells."""
    cells: List[Cell] = []
    current_gate: Tuple[str, float, str, str] = None  # name, area, output, expr
    current_pins: List[PinTiming] = []

    def finish_gate() -> None:
        nonlocal current_gate, current_pins
        if current_gate is None:
            return
        name, area, output_name, expression = current_gate
        pin_names = [pin.name for pin in current_pins]
        function = parse_expression(expression, pin_names)
        cells.append(
            Cell(
                name=name,
                function=function,
                num_inputs=len(current_pins),
                area_um2=area,
                pins=tuple(current_pins),
                output_name=output_name,
            )
        )
        current_gate = None
        current_pins = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        keyword = line.split()[0].upper()
        if keyword == "GATE":
            finish_gate()
            current_gate = _parse_gate_line(line, line_number)
        elif keyword == "PIN":
            if current_gate is None:
                raise ParseError(f"line {line_number}: PIN before any GATE")
            current_pins.append(_parse_pin_line(line, line_number))
        else:
            raise ParseError(f"line {line_number}: unknown keyword {keyword!r}")
    finish_gate()
    if not cells:
        raise ParseError("genlib file declares no gates")
    return cells


def _parse_gate_line(line: str, line_number: int) -> Tuple[str, float, str, str]:
    body = line[len("GATE"):].strip()
    if not body.endswith(";"):
        raise ParseError(f"line {line_number}: GATE line must end with ';'")
    body = body[:-1].strip()
    parts = body.split(None, 2)
    if len(parts) != 3:
        raise ParseError(
            f"line {line_number}: expected 'GATE name area out=expr;', got {line!r}"
        )
    name, area_text, function_text = parts
    try:
        area = float(area_text)
    except ValueError as exc:
        raise ParseError(f"line {line_number}: bad area {area_text!r}") from exc
    if "=" not in function_text:
        raise ParseError(f"line {line_number}: function must be 'out=expr'")
    output_name, _, expression = function_text.partition("=")
    return name, area, output_name.strip(), expression.strip()


def _parse_pin_line(line: str, line_number: int) -> PinTiming:
    parts = line.split()
    if len(parts) != 5:
        raise ParseError(
            f"line {line_number}: expected 'PIN name cap intrinsic resistance', got {line!r}"
        )
    _, pin_name, cap_text, intrinsic_text, resistance_text = parts
    try:
        capacitance = float(cap_text)
        intrinsic = float(intrinsic_text)
        resistance = float(resistance_text)
    except ValueError as exc:
        raise ParseError(f"line {line_number}: bad numeric pin field") from exc
    if capacitance < 0 or intrinsic < 0 or resistance < 0:
        raise ParseError(f"line {line_number}: pin values must be non-negative")
    return PinTiming(
        name=pin_name,
        capacitance_ff=capacitance,
        intrinsic_ps=intrinsic,
        resistance_ps_per_ff=resistance,
    )


def read_genlib(path: PathLike) -> List[Cell]:
    """Read and parse a genlib-lite file."""
    return parse_genlib(Path(path).read_text(encoding="utf-8"))
