"""Boolean expression parser used by the genlib-lite cell format.

Supports the grammar::

    expr   := term ('|' term | '+' term)*
    term   := factor ('&' factor | '*' factor)*
    factor := xorop
    xorop  := atom ('^' atom)*
    atom   := '!' atom | '(' expr ')' | '0' | '1' | identifier

Identifiers are pin names; the parser returns a truth table over the pin
order supplied by the caller, so ``parse_expression("!(A&B)", ["A", "B"])``
yields the NAND2 table.
"""

from __future__ import annotations

import re
from typing import List, Sequence

from repro.aig.truth import table_mask, truth_not, var_truth
from repro.errors import ParseError

_TOKEN_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*|[01()!&|^*+])")


def tokenize(text: str) -> List[str]:
    """Split a Boolean expression into tokens."""
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"unexpected character in expression: {remainder[0]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], pin_order: Sequence[str]) -> None:
        self._tokens = tokens
        self._index = 0
        self._pin_index = {name: i for i, name in enumerate(pin_order)}
        self._num_vars = len(pin_order)

    def parse(self) -> int:
        value = self._expr()
        if self._index != len(self._tokens):
            raise ParseError(
                f"trailing tokens in expression: {self._tokens[self._index:]}"
            )
        return value

    # Grammar rules ------------------------------------------------------
    def _expr(self) -> int:
        value = self._term()
        while self._peek() in ("|", "+"):
            self._next()
            value |= self._term()
        return value & table_mask(self._num_vars)

    def _term(self) -> int:
        value = self._xorop()
        while True:
            token = self._peek()
            if token in ("&", "*"):
                self._next()
                value &= self._xorop()
            elif token is not None and (token == "(" or token == "!" or self._is_atom(token)):
                # Implicit AND (genlib allows juxtaposition like "A B").
                value &= self._xorop()
            else:
                break
        return value

    def _xorop(self) -> int:
        value = self._atom()
        while self._peek() == "^":
            self._next()
            value ^= self._atom()
        return value & table_mask(self._num_vars)

    def _atom(self) -> int:
        token = self._next()
        if token is None:
            raise ParseError("unexpected end of expression")
        if token == "!":
            return truth_not(self._atom(), self._num_vars)
        if token == "(":
            value = self._expr()
            if self._next() != ")":
                raise ParseError("missing closing parenthesis")
            return value
        if token == "0":
            return 0
        if token == "1":
            return table_mask(self._num_vars)
        if token in self._pin_index:
            return var_truth(self._pin_index[token], self._num_vars)
        raise ParseError(f"unknown pin {token!r} in expression")

    # Token helpers ------------------------------------------------------
    def _peek(self):
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self):
        token = self._peek()
        self._index += 1
        return token

    def _is_atom(self, token: str) -> bool:
        return token in ("0", "1") or token in self._pin_index


def parse_expression(text: str, pin_order: Sequence[str]) -> int:
    """Parse *text* into a truth table over the pins listed in *pin_order*."""
    tokens = tokenize(text)
    if not tokens:
        raise ParseError("empty Boolean expression")
    return _Parser(tokens, pin_order).parse()
