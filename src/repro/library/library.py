"""Cell library container and Boolean match index.

:class:`CellLibrary` owns the cell list and a precomputed *match index*: for
every cell, every function obtainable by permuting its pins, optionally
inverting some pins, and optionally inverting its output is recorded.  The
technology mapper can then match an arbitrary cut function with a single
dictionary lookup, receiving the pin binding and the inverters it must insert.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.truth import table_mask
from repro.errors import LibraryError
from repro.library.cell import Cell

#: Maximum cell input count supported by the match index.
MAX_MATCH_INPUTS = 4


@dataclass(frozen=True)
class Match:
    """A way to realise a Boolean function with a library cell.

    Attributes
    ----------
    cell:
        The library cell to instantiate.
    pin_to_leaf:
        ``pin_to_leaf[j]`` is the index of the function variable (cut leaf)
        that drives cell pin ``j``.
    pin_negated:
        ``pin_negated[j]`` is true when an inverter must be inserted between
        the leaf and pin ``j``.
    output_negated:
        True when an inverter must be appended to the cell output.
    """

    cell: Cell
    pin_to_leaf: Tuple[int, ...]
    pin_negated: Tuple[bool, ...]
    output_negated: bool

    @property
    def num_inverters(self) -> int:
        """Number of extra inverter instances this match requires."""
        return sum(self.pin_negated) + (1 if self.output_negated else 0)


def cell_variants(cell: Cell) -> Dict[int, Match]:
    """All functions realisable by *cell* under pin permutation/negation.

    Returns a mapping from truth table (over ``cell.num_inputs`` variables)
    to the cheapest :class:`Match` (fewest inverters) producing it.
    """
    m = cell.num_inputs
    if m > MAX_MATCH_INPUTS:
        raise LibraryError(
            f"cell {cell.name} has {m} inputs; match index supports up to "
            f"{MAX_MATCH_INPUTS}"
        )
    variants: Dict[int, Match] = {}
    minterms = 1 << m
    g_bits = [(cell.function >> i) & 1 for i in range(minterms)]
    for assignment in permutations(range(m)):
        for neg_mask in range(1 << m):
            for out_neg in (False, True):
                table = 0
                for x in range(minterms):
                    p = 0
                    for pin in range(m):
                        bit = (x >> assignment[pin]) & 1
                        if (neg_mask >> pin) & 1:
                            bit ^= 1
                        p |= bit << pin
                    value = g_bits[p] ^ (1 if out_neg else 0)
                    table |= value << x
                match = Match(
                    cell=cell,
                    pin_to_leaf=tuple(assignment),
                    pin_negated=tuple(bool((neg_mask >> pin) & 1) for pin in range(m)),
                    output_negated=out_neg,
                )
                existing = variants.get(table)
                if existing is None or match.num_inverters < existing.num_inverters:
                    variants[table] = match
    return variants


class CellLibrary:
    """A named collection of standard cells with a Boolean match index."""

    def __init__(self, name: str, cells: Sequence[Cell], po_load_ff: float = 5.0) -> None:
        if not cells:
            raise LibraryError("a cell library needs at least one cell")
        self.name = name
        self.cells: List[Cell] = list(cells)
        self.po_load_ff = float(po_load_ff)
        self._by_name: Dict[str, Cell] = {}
        for cell in self.cells:
            if cell.name in self._by_name:
                raise LibraryError(f"duplicate cell name {cell.name!r}")
            self._by_name[cell.name] = cell
        self._inverters = sorted(
            (c for c in self.cells if c.is_inverter()), key=lambda c: c.area_um2
        )
        self._buffers = sorted(
            (c for c in self.cells if c.is_buffer()), key=lambda c: c.area_um2
        )
        if not self._inverters:
            raise LibraryError("library must contain at least one inverter cell")
        # match index: num_vars -> truth table -> list of matches (all cells).
        self._match_index: Dict[int, Dict[int, List[Match]]] = {}
        self._build_match_index()

    # ------------------------------------------------------------------ #
    def _build_match_index(self) -> None:
        for cell in self.cells:
            if cell.num_inputs == 0 or cell.num_inputs > MAX_MATCH_INPUTS:
                continue
            if not cell.depends_on_all_inputs():
                # Cells with redundant pins would shadow smaller cells.
                continue
            per_table = cell_variants(cell)
            bucket = self._match_index.setdefault(cell.num_inputs, {})
            for table, match in per_table.items():
                bucket.setdefault(table, []).append(match)
        for bucket in self._match_index.values():
            for matches in bucket.values():
                matches.sort(key=lambda m: (m.num_inverters, m.cell.area_um2))

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Content digest of the library (name, PO load, every cell's data).

        Two libraries get the same fingerprint exactly when every PPA-
        relevant datum matches, which makes it a sound component of
        evaluation cache keys: results computed against different libraries
        can never collide.  Computed once and cached (libraries are
        immutable after construction).
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        import hashlib

        digest = hashlib.blake2b(digest_size=16)
        digest.update(f"lib:{self.name}:{self.po_load_ff!r}".encode())
        for cell in self.cells:
            digest.update(
                f"|{cell.name}:{cell.function}:{cell.num_inputs}:"
                f"{cell.area_um2!r}:{cell.output_name}".encode()
            )
            for pin in cell.pins:
                digest.update(
                    f";{pin.name}:{pin.capacitance_ff!r}:"
                    f"{pin.intrinsic_ps!r}:{pin.resistance_ps_per_ff!r}".encode()
                )
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def cell(self, name: str) -> Cell:
        """Look a cell up by name."""
        if name not in self._by_name:
            raise LibraryError(f"no cell named {name!r} in library {self.name!r}")
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    @property
    def inverter(self) -> Cell:
        """The smallest inverter in the library."""
        return self._inverters[0]

    @property
    def inverters(self) -> List[Cell]:
        """All inverters, smallest first."""
        return list(self._inverters)

    @property
    def buffers(self) -> List[Cell]:
        """All buffers, smallest first."""
        return list(self._buffers)

    @property
    def max_match_inputs(self) -> int:
        """Largest cut size the match index can serve."""
        if not self._match_index:
            return 0
        return max(self._match_index)

    def matches(self, table: int, num_vars: int) -> List[Match]:
        """All matches for *table* over *num_vars* variables (may be empty).

        The table must depend on all *num_vars* variables; reduce it to its
        support before calling (the mapper does this).
        """
        if num_vars == 0:
            return []
        table &= table_mask(num_vars)
        bucket = self._match_index.get(num_vars, {})
        return list(bucket.get(table, []))

    def match_index_items(self) -> List[Tuple[int, int, List[Match]]]:
        """The whole match index as sorted ``(num_vars, table, matches)`` rows.

        Deterministic enumeration order (ascending input count, then table)
        for consumers that flatten the index into arrays — the vectorized
        mapper DP builds its per-library match tables from this.  The inner
        match lists are the index's own (num_inverters, area)-sorted lists;
        callers must not mutate them.
        """
        items: List[Tuple[int, int, List[Match]]] = []
        for num_vars in sorted(self._match_index):
            bucket = self._match_index[num_vars]
            for table in sorted(bucket):
                items.append((num_vars, table, bucket[table]))
        return items

    def total_variant_count(self) -> int:
        """Number of (function, match) entries in the index (for diagnostics)."""
        return sum(
            len(matches)
            for bucket in self._match_index.values()
            for matches in bucket.values()
        )

    def summary(self) -> str:
        """Human-readable library overview."""
        lines = [f"Library {self.name}: {len(self.cells)} cells"]
        for cell in sorted(self.cells, key=lambda c: (c.num_inputs, c.name)):
            lines.append(
                f"  {cell.name:<10} inputs={cell.num_inputs} area={cell.area_um2:.2f}"
            )
        return "\n".join(lines)
