"""Built-in "sky130-lite" standard-cell library.

The paper maps AIGs onto the SkyWater 130 nm PDK.  That PDK cannot be
redistributed here, so this module ships a compact surrogate whose cell set,
relative areas, pin capacitances, and delay coefficients are scaled to
130 nm-class values (areas of a few square micrometres, gate delays of tens
of picoseconds, pin capacitances of a few femtofarads).  The absolute numbers
are *not* the SkyWater characterisation data; only the relative behaviour
(multi-input cells, drive strengths, load-dependent delay) matters for the
experiments, as documented in DESIGN.md.

The library text is written in the genlib-lite format so it also serves as a
test vector for the parser; use :func:`load_sky130_lite` to obtain the parsed
:class:`~repro.library.library.CellLibrary`.
"""

from __future__ import annotations

SKY130_LITE_GENLIB = """
# sky130-lite surrogate library (areas um^2, caps fF, delays ps)
GATE INV_X1  1.25 Y=!A;
  PIN A 1.2 12.0 9.0
GATE INV_X2  1.88 Y=!A;
  PIN A 2.3 11.0 4.8
GATE INV_X4  3.13 Y=!A;
  PIN A 4.5 10.0 2.6
GATE BUF_X1  2.50 Y=A;
  PIN A 1.3 28.0 7.5
GATE BUF_X2  3.75 Y=A;
  PIN A 2.4 26.0 4.0
GATE NAND2_X1 1.88 Y=!(A&B);
  PIN A 1.5 16.0 10.5
  PIN B 1.5 14.0 10.5
GATE NAND2_X2 2.81 Y=!(A&B);
  PIN A 2.9 15.0 5.4
  PIN B 2.9 13.0 5.4
GATE NAND3_X1 2.50 Y=!(A&B&C);
  PIN A 1.6 22.0 12.0
  PIN B 1.6 20.0 12.0
  PIN C 1.6 18.0 12.0
GATE NAND4_X1 3.13 Y=!(A&B&C&D);
  PIN A 1.7 28.0 13.5
  PIN B 1.7 26.0 13.5
  PIN C 1.7 24.0 13.5
  PIN D 1.7 22.0 13.5
GATE NOR2_X1 1.88 Y=!(A|B);
  PIN A 1.5 20.0 12.0
  PIN B 1.5 18.0 12.0
GATE NOR2_X2 2.81 Y=!(A|B);
  PIN A 2.9 19.0 6.2
  PIN B 2.9 17.0 6.2
GATE NOR3_X1 2.50 Y=!(A|B|C);
  PIN A 1.6 28.0 14.0
  PIN B 1.6 26.0 14.0
  PIN C 1.6 24.0 14.0
GATE AND2_X1 2.50 Y=A&B;
  PIN A 1.4 30.0 8.0
  PIN B 1.4 28.0 8.0
GATE AND3_X1 3.13 Y=A&B&C;
  PIN A 1.5 36.0 8.5
  PIN B 1.5 34.0 8.5
  PIN C 1.5 32.0 8.5
GATE OR2_X1 2.50 Y=A|B;
  PIN A 1.4 34.0 8.0
  PIN B 1.4 32.0 8.0
GATE OR3_X1 3.13 Y=A|B|C;
  PIN A 1.5 40.0 8.5
  PIN B 1.5 38.0 8.5
  PIN C 1.5 36.0 8.5
GATE AOI21_X1 2.50 Y=!((A&B)|C);
  PIN A 1.6 24.0 12.5
  PIN B 1.6 22.0 12.5
  PIN C 1.6 18.0 12.5
GATE AOI22_X1 3.13 Y=!((A&B)|(C&D));
  PIN A 1.7 28.0 13.0
  PIN B 1.7 26.0 13.0
  PIN C 1.7 24.0 13.0
  PIN D 1.7 22.0 13.0
GATE OAI21_X1 2.50 Y=!((A|B)&C);
  PIN A 1.6 24.0 12.5
  PIN B 1.6 22.0 12.5
  PIN C 1.6 16.0 12.5
GATE OAI22_X1 3.13 Y=!((A|B)&(C|D));
  PIN A 1.7 28.0 13.0
  PIN B 1.7 26.0 13.0
  PIN C 1.7 24.0 13.0
  PIN D 1.7 22.0 13.0
GATE XOR2_X1 5.00 Y=A^B;
  PIN A 2.0 42.0 11.0
  PIN B 2.0 40.0 11.0
GATE XNOR2_X1 5.00 Y=!(A^B);
  PIN A 2.0 42.0 11.0
  PIN B 2.0 40.0 11.0
GATE MUX2_X1 5.63 Y=(S&B)|(!S&A);
  PIN A 1.8 40.0 11.5
  PIN B 1.8 38.0 11.5
  PIN S 2.2 44.0 11.5
GATE AND4_X1 3.75 Y=A&B&C&D;
  PIN A 1.6 42.0 9.0
  PIN B 1.6 40.0 9.0
  PIN C 1.6 38.0 9.0
  PIN D 1.6 36.0 9.0
GATE OR4_X1 3.75 Y=A|B|C|D;
  PIN A 1.6 46.0 9.0
  PIN B 1.6 44.0 9.0
  PIN C 1.6 42.0 9.0
  PIN D 1.6 40.0 9.0
GATE MAJ3_X1 5.63 Y=(A&B)|(B&C)|(A&C);
  PIN A 2.1 44.0 11.5
  PIN B 2.1 42.0 11.5
  PIN C 2.1 40.0 11.5
"""

#: Default capacitive load attached to every primary output (ps model: fF).
DEFAULT_PO_LOAD_FF = 6.0


def load_sky130_lite():
    """Parse the built-in library text into a :class:`CellLibrary`."""
    from repro.library.genlib import parse_genlib
    from repro.library.library import CellLibrary

    cells = parse_genlib(SKY130_LITE_GENLIB)
    return CellLibrary(name="sky130_lite", cells=cells, po_load_ff=DEFAULT_PO_LOAD_FF)
