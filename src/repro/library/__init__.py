"""Standard-cell library: cell model, genlib-lite parser, built-in sky130-lite."""

from repro.library.cell import Cell, PinTiming
from repro.library.expr import parse_expression
from repro.library.genlib import parse_genlib, read_genlib
from repro.library.library import CellLibrary, Match, cell_variants
from repro.library.sky130_lite import (
    DEFAULT_PO_LOAD_FF,
    SKY130_LITE_GENLIB,
    load_sky130_lite,
)

__all__ = [
    "Cell",
    "CellLibrary",
    "DEFAULT_PO_LOAD_FF",
    "Match",
    "PinTiming",
    "SKY130_LITE_GENLIB",
    "cell_variants",
    "load_sky130_lite",
    "parse_expression",
    "parse_genlib",
    "read_genlib",
]
