"""Standard-cell data model.

A cell is a single-output combinational gate with:

* a Boolean function, stored as a truth table over its input pins
  (pin 0 is truth-table variable 0),
* an area in square micrometres,
* per-pin timing data for a linear delay model:
  ``delay(pin -> out) = intrinsic + resistance * output_load``,
  with input capacitances contributing to the load of the driving cell.

This is deliberately simpler than Liberty NLDM tables, but it keeps the two
effects the paper identifies as the sources of proxy/ground-truth
miscorrelation: multi-input cells shorten mapped paths relative to AIG depth,
and load-dependent delay makes high-fanout nets slow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.aig.truth import support, table_mask
from repro.errors import LibraryError


@dataclass(frozen=True)
class PinTiming:
    """Timing and electrical data of one input pin."""

    name: str
    capacitance_ff: float
    intrinsic_ps: float
    resistance_ps_per_ff: float

    def delay_ps(self, load_ff: float) -> float:
        """Pin-to-output delay for a given output load."""
        return self.intrinsic_ps + self.resistance_ps_per_ff * load_ff


@dataclass(frozen=True)
class Cell:
    """A combinational standard cell."""

    name: str
    function: int
    num_inputs: int
    area_um2: float
    pins: Tuple[PinTiming, ...]
    output_name: str = "Y"

    def __post_init__(self) -> None:
        if self.num_inputs < 0:
            raise LibraryError(f"cell {self.name}: negative input count")
        if len(self.pins) != self.num_inputs:
            raise LibraryError(
                f"cell {self.name}: {self.num_inputs} inputs but {len(self.pins)} pins"
            )
        if self.area_um2 <= 0:
            raise LibraryError(f"cell {self.name}: area must be positive")
        mask = table_mask(self.num_inputs)
        if self.function & ~mask:
            raise LibraryError(
                f"cell {self.name}: truth table wider than {self.num_inputs} inputs"
            )

    @property
    def input_names(self) -> List[str]:
        """Input pin names in pin order."""
        return [pin.name for pin in self.pins]

    @property
    def max_pin_capacitance_ff(self) -> float:
        """Largest input-pin capacitance (used for load estimation)."""
        if not self.pins:
            return 0.0
        return max(pin.capacitance_ff for pin in self.pins)

    @property
    def mean_pin_capacitance_ff(self) -> float:
        """Average input-pin capacitance."""
        if not self.pins:
            return 0.0
        return sum(pin.capacitance_ff for pin in self.pins) / len(self.pins)

    def worst_delay_ps(self, load_ff: float) -> float:
        """Slowest pin-to-output delay at the given load."""
        if not self.pins:
            return 0.0
        return max(pin.delay_ps(load_ff) for pin in self.pins)

    def is_inverter(self) -> bool:
        """True for a single-input inverting cell."""
        return self.num_inputs == 1 and self.function == 0b01

    def is_buffer(self) -> bool:
        """True for a single-input non-inverting cell."""
        return self.num_inputs == 1 and self.function == 0b10

    def depends_on_all_inputs(self) -> bool:
        """True when the function's support covers every declared pin."""
        return len(support(self.function, self.num_inputs)) == self.num_inputs

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({', '.join(self.input_names)})"
