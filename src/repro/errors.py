"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AigError(ReproError):
    """Raised for structural problems in an And-Inverter Graph."""


class LiteralError(AigError):
    """Raised when a literal is malformed or refers to a missing node."""


class TruthTableError(ReproError):
    """Raised for malformed truth tables or unsupported variable counts."""


class ParseError(ReproError):
    """Raised when a circuit file (AIGER/BENCH/genlib) cannot be parsed."""


class NetlistParseError(ParseError):
    """Raised by every :mod:`repro.io` netlist reader on malformed input.

    The readers guarantee that no bare ``ValueError``/``KeyError``/
    ``IndexError`` (or AIG construction error) escapes a parse of untrusted
    text, so callers — the synthesis service in particular — can map any
    bad upload to one exception type (HTTP 400, not 500).
    """


class TransformError(ReproError):
    """Raised when a logic transformation fails or breaks equivalence."""


class LibraryError(ReproError):
    """Raised for malformed or incomplete standard-cell libraries."""


class MappingError(ReproError):
    """Raised when technology mapping cannot cover the AIG."""


class TimingError(ReproError):
    """Raised for inconsistencies found during static timing analysis."""


class FeatureError(ReproError):
    """Raised when feature extraction receives an unsupported graph."""


class ModelError(ReproError):
    """Raised for invalid ML-model configuration or unfitted models."""


class DatasetError(ReproError):
    """Raised for malformed or empty datasets."""


class OptimizationError(ReproError):
    """Raised when an optimization flow is misconfigured."""


class DesignError(ReproError):
    """Raised when a named benchmark design cannot be constructed."""


class TimerError(ReproError):
    """Raised when a stopwatch is used out of order (stop before start)."""


class CampaignError(ReproError):
    """Raised for invalid campaign specifications or corrupt result stores."""


class ServiceError(ReproError):
    """Raised for synthesis-service failures (bad jobs, full queues, config)."""
