"""Dataset generation: perturbation, ground-truth labelling, assembly."""

from repro.datagen.generator import (
    DatasetGenerator,
    DesignCorpus,
    GenerationConfig,
    load_corpus,
    save_corpus,
)
from repro.datagen.labeler import LabeledSample, Labeler
from repro.datagen.perturb import (
    generate_variants,
    random_script,
    structural_signature,
    variant_stream,
)

__all__ = [
    "DatasetGenerator",
    "DesignCorpus",
    "GenerationConfig",
    "LabeledSample",
    "Labeler",
    "generate_variants",
    "load_corpus",
    "random_script",
    "save_corpus",
    "structural_signature",
    "variant_stream",
]
