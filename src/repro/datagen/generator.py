"""End-to-end dataset generation for the delay/area predictors.

``DatasetGenerator`` glues the pieces together: build (or accept) a base
design, perturb it into unique AIG variants, label every variant with the
ground-truth mapper + STA, extract the Table II features, and assemble a
:class:`~repro.ml.dataset.TimingDataset`.  Generated corpora can be cached on
disk as ``.npz`` files so the benchmark harness does not repeat the expensive
labelling step across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.aig.graph import Aig
from repro.datagen.labeler import LabeledSample, Labeler
from repro.datagen.perturb import generate_variants
from repro.designs.registry import build_design
from repro.errors import DatasetError
from repro.evaluation import Evaluator
from repro.features.extract import FeatureConfig, FeatureExtractor
from repro.library.library import CellLibrary
from repro.ml.dataset import TimingDataset
from repro.utils.rng import RngLike, ensure_rng

PathLike = Union[str, Path]


@dataclass
class GenerationConfig:
    """Dataset-generation knobs (paper defaults are much larger)."""

    samples_per_design: int = 60
    max_script_length: int = 2
    seed: int = 2024
    feature_config: FeatureConfig = field(default_factory=FeatureConfig)

    def __post_init__(self) -> None:
        if self.samples_per_design < 2:
            raise DatasetError("samples_per_design must be at least 2")


@dataclass
class DesignCorpus:
    """All generated artefacts for one design."""

    design: str
    aigs: List[Aig]
    delays_ps: np.ndarray
    areas_um2: np.ndarray
    features: np.ndarray


class DatasetGenerator:
    """Generates labelled feature datasets for one or more designs."""

    def __init__(
        self,
        config: Optional[GenerationConfig] = None,
        library: Optional[CellLibrary] = None,
        evaluator: Optional[Evaluator] = None,
    ) -> None:
        self.config = config or GenerationConfig()
        self.extractor = FeatureExtractor(self.config.feature_config)
        self.labeler = Labeler(library, evaluator=evaluator)

    # ------------------------------------------------------------------ #
    def generate_for_aig(self, design_name: str, base: Aig, rng: RngLike = None) -> DesignCorpus:
        """Generate a corpus of labelled variants for an explicit base AIG."""
        generator = ensure_rng(rng if rng is not None else self.config.seed)
        variants = generate_variants(
            base,
            self.config.samples_per_design,
            rng=generator,
            max_script_length=self.config.max_script_length,
        )
        samples = self.labeler.label(design_name, variants)
        features = self.extractor.extract_many([s.aig for s in samples])
        return DesignCorpus(
            design=design_name,
            aigs=[s.aig for s in samples],
            delays_ps=np.array([s.delay_ps for s in samples], dtype=np.float64),
            areas_um2=np.array([s.area_um2 for s in samples], dtype=np.float64),
            features=features,
        )

    def generate_for_design(self, design_name: str, rng: RngLike = None) -> DesignCorpus:
        """Generate a corpus for a registered benchmark design."""
        base = build_design(design_name)
        return self.generate_for_aig(design_name, base, rng=rng)

    def generate(
        self, design_names: Sequence[str], rng: RngLike = None
    ) -> Dict[str, DesignCorpus]:
        """Generate corpora for several designs (seeded independently)."""
        generator = ensure_rng(rng if rng is not None else self.config.seed)
        corpora: Dict[str, DesignCorpus] = {}
        for name in design_names:
            stream = ensure_rng(generator.getrandbits(32))
            corpora[name] = self.generate_for_design(name, rng=stream)
        return corpora

    # ------------------------------------------------------------------ #
    def to_dataset(self, corpora: Dict[str, DesignCorpus]) -> TimingDataset:
        """Assemble corpora into a single :class:`TimingDataset`."""
        if not corpora:
            raise DatasetError("no corpora to assemble")
        features = np.vstack([c.features for c in corpora.values()])
        delays = np.concatenate([c.delays_ps for c in corpora.values()])
        areas = np.concatenate([c.areas_um2 for c in corpora.values()])
        designs: List[str] = []
        for corpus in corpora.values():
            designs.extend([corpus.design] * len(corpus.aigs))
        return TimingDataset(
            features=features,
            labels=delays,
            feature_names=self.extractor.feature_names,
            designs=designs,
            areas=areas,
        )

    def area_dataset(self, corpora: Dict[str, DesignCorpus]) -> TimingDataset:
        """Same features but with post-mapping area as the label."""
        dataset = self.to_dataset(corpora)
        return TimingDataset(
            features=dataset.features,
            labels=np.asarray(dataset.areas, dtype=np.float64),
            feature_names=dataset.feature_names,
            designs=list(dataset.designs),
            areas=dataset.areas,
        )


# ------------------------------------------------------------------------- #
# Disk caching
# ------------------------------------------------------------------------- #
def save_corpus(corpus: DesignCorpus, path: PathLike) -> None:
    """Persist the numeric part of a corpus (features/labels) as ``.npz``."""
    np.savez_compressed(
        Path(path),
        design=np.array([corpus.design]),
        delays=corpus.delays_ps,
        areas=corpus.areas_um2,
        features=corpus.features,
    )


def load_corpus(path: PathLike) -> DesignCorpus:
    """Load a corpus saved by :func:`save_corpus` (AIGs are not persisted)."""
    data = np.load(Path(path), allow_pickle=False)
    return DesignCorpus(
        design=str(data["design"][0]),
        aigs=[],
        delays_ps=data["delays"],
        areas_um2=data["areas"],
        features=data["features"],
    )
