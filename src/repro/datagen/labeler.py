"""Ground-truth labelling of AIG variants (technology mapping + STA).

Labels are exactly what the paper uses: the post-mapping maximum delay (and
total cell area) of each AIG variant under the 130 nm-class library, obtained
by running the full mapper and STA.  This is the expensive step that the ML
model exists to replace inside the optimization loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.aig.graph import Aig
from repro.evaluation import Evaluator, GroundTruthEvaluator, PpaResult
from repro.library.library import CellLibrary


@dataclass(frozen=True)
class LabeledSample:
    """One dataset row before feature extraction."""

    design: str
    aig: Aig
    delay_ps: float
    area_um2: float
    num_gates: int


class Labeler:
    """Maps + times AIG variants, producing :class:`LabeledSample` records.

    Labelling goes through an injected :class:`~repro.evaluation.Evaluator`,
    so a caller can hand in a cached or process-parallel one (see
    :mod:`repro.api.evaluators`) and every variant batch is deduplicated
    and/or fanned out across workers.
    """

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        evaluator: Optional[Evaluator] = None,
    ) -> None:
        self._evaluator: Evaluator = (
            evaluator if evaluator is not None else GroundTruthEvaluator(library)
        )
        self._progress = progress

    @property
    def library(self) -> CellLibrary:
        """The cell library used for labelling."""
        return self._evaluator.library

    @property
    def evaluator(self) -> Evaluator:
        """The evaluator labelling is routed through."""
        return self._evaluator

    def label(self, design: str, aigs: Sequence[Aig]) -> List[LabeledSample]:
        """Label every AIG in *aigs* with its post-mapping delay and area."""
        aigs = list(aigs)
        total = len(aigs)
        if self._progress is None:
            # Batch path: lets cached/parallel evaluators dedupe and fan out.
            results = self._evaluator.evaluate_many(aigs)
        else:
            results = []
            for index, aig in enumerate(aigs):
                results.append(self._evaluator.evaluate(aig))
                self._progress(index + 1, total)
        samples: List[LabeledSample] = []
        for aig, result in zip(aigs, results):
            samples.append(
                LabeledSample(
                    design=design,
                    aig=aig,
                    delay_ps=result.delay_ps,
                    area_um2=result.area_um2,
                    num_gates=result.num_gates,
                )
            )
        return samples
