"""Ground-truth labelling of AIG variants (technology mapping + STA).

Labels are exactly what the paper uses: the post-mapping maximum delay (and
total cell area) of each AIG variant under the 130 nm-class library, obtained
by running the full mapper and STA.  This is the expensive step that the ML
model exists to replace inside the optimization loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.aig.graph import Aig
from repro.evaluation import GroundTruthEvaluator, PpaResult
from repro.library.library import CellLibrary


@dataclass(frozen=True)
class LabeledSample:
    """One dataset row before feature extraction."""

    design: str
    aig: Aig
    delay_ps: float
    area_um2: float
    num_gates: int


class Labeler:
    """Maps + times AIG variants, producing :class:`LabeledSample` records."""

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self._evaluator = GroundTruthEvaluator(library)
        self._progress = progress

    @property
    def library(self) -> CellLibrary:
        """The cell library used for labelling."""
        return self._evaluator.library

    def label(self, design: str, aigs: Sequence[Aig]) -> List[LabeledSample]:
        """Label every AIG in *aigs* with its post-mapping delay and area."""
        samples: List[LabeledSample] = []
        total = len(aigs)
        for index, aig in enumerate(aigs):
            result: PpaResult = self._evaluator.evaluate(aig)
            samples.append(
                LabeledSample(
                    design=design,
                    aig=aig,
                    delay_ps=result.delay_ps,
                    area_um2=result.area_um2,
                    num_gates=result.num_gates,
                )
            )
            if self._progress is not None:
                self._progress(index + 1, total)
        return samples
