"""Random AIG perturbation for dataset generation.

The paper generates 40 000 unique AIGs per design by randomly applying
sequences of ABC transformations to the design's initial AIG.  This module
reproduces that process: starting from the base AIG it performs a random
walk in which each step applies a randomly chosen script (from the same
catalog the SA optimizer uses as its move set) to a randomly chosen,
previously generated variant.  Structural hashing of the resulting graphs is
used to keep only unique variants.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Optional, Sequence

from repro.aig.graph import Aig
from repro.errors import DatasetError
from repro.transforms.engine import apply_script
from repro.transforms.scripts import script_catalog
from repro.utils.rng import RngLike, ensure_rng


def structural_signature(aig: Aig) -> str:
    """A stable digest identifying the graph structure (dedups variants).

    SHA-256 over the canonical structural payload, not builtin ``hash()``:
    ``hash()`` is salted per process (PYTHONHASHSEED), so signatures would
    not be comparable across processes — the dataset-generation campaign
    dedups variants produced by pool workers, which requires every process
    to agree on the identity of a structure.
    """
    payload = (
        aig.num_pis,
        tuple(aig.po_literals()),
        tuple((aig.fanins(var)) for var in aig.and_vars()),
    )
    return hashlib.sha256(repr(payload).encode("ascii")).hexdigest()


def random_script(
    rng: RngLike = None,
    catalog: Optional[Sequence[List[str]]] = None,
    min_length: int = 1,
    max_length: int = 2,
) -> List[str]:
    """Concatenate between *min_length* and *max_length* catalog entries."""
    generator = ensure_rng(rng)
    moves = catalog if catalog is not None else script_catalog()
    if not moves:
        raise DatasetError("transformation catalog is empty")
    length = generator.randint(min_length, max_length)
    script: List[str] = []
    for _ in range(length):
        script.extend(moves[generator.randrange(len(moves))])
    return script


def generate_variants(
    base: Aig,
    count: int,
    rng: RngLike = None,
    catalog: Optional[Sequence[List[str]]] = None,
    max_script_length: int = 2,
    include_base: bool = True,
    max_attempts_factor: int = 8,
) -> List[Aig]:
    """Generate up to *count* unique structural variants of *base*.

    Each variant is produced by applying a random transformation script to a
    randomly chosen earlier variant (a random walk over the design space),
    mirroring the paper's data-generation procedure.  Duplicates (by
    structural signature) are discarded; generation stops early if the walk
    stops discovering new structures.
    """
    if count < 1:
        raise DatasetError("variant count must be at least 1")
    generator = ensure_rng(rng)
    moves = list(catalog) if catalog is not None else script_catalog()
    variants: List[Aig] = []
    seen = set()
    if include_base:
        variants.append(base.cleanup())
        seen.add(structural_signature(variants[0]))
    attempts = 0
    max_attempts = max_attempts_factor * count
    while len(variants) < count and attempts < max_attempts:
        attempts += 1
        source = variants[generator.randrange(len(variants))] if variants else base
        script = random_script(generator, moves, max_length=max_script_length)
        try:
            result = apply_script(source, script)
        except Exception as exc:  # pragma: no cover - defensive
            raise DatasetError(f"perturbation script {script} failed: {exc}") from exc
        candidate = result.aig
        signature = structural_signature(candidate)
        if signature in seen:
            continue
        seen.add(signature)
        candidate.name = f"{base.name}_v{len(variants)}"
        variants.append(candidate)
    if not variants:
        raise DatasetError("failed to generate any variant")
    return variants[:count]


def variant_stream(
    base: Aig,
    rng: RngLike = None,
    catalog: Optional[Sequence[List[str]]] = None,
    max_script_length: int = 2,
) -> Iterator[Aig]:
    """Infinite stream of (not necessarily unique) perturbed variants."""
    generator = ensure_rng(rng)
    moves = list(catalog) if catalog is not None else script_catalog()
    current = base
    while True:
        script = random_script(generator, moves, max_length=max_script_length)
        current = apply_script(current, script).aig
        yield current
        if generator.random() < 0.25:
            current = base
