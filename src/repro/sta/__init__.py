"""Static timing analysis with a linear load-dependent delay model."""

from repro.sta.analysis import (
    TimingArc,
    TimingReport,
    TimingState,
    TimingUpdateStats,
    analyze_timing,
    analyze_timing_incremental,
    compute_net_loads,
)
from repro.sta.report import format_cell_usage, format_timing_report

__all__ = [
    "TimingArc",
    "TimingReport",
    "TimingState",
    "TimingUpdateStats",
    "analyze_timing",
    "analyze_timing_incremental",
    "compute_net_loads",
    "format_cell_usage",
    "format_timing_report",
]
