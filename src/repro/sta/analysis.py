"""Static timing analysis on mapped netlists.

The delay model is the linear load model of the cell library: the delay of a
timing arc (input pin -> output) is ``intrinsic + resistance * load``, where
the load of a net is the sum of the input-pin capacitances it drives plus a
fixed primary-output load.  Arrival times are propagated in one topological
pass, required times in one reverse pass, giving per-net slacks and the
critical path.

This is the "STA" step of the paper's ground-truth flow; together with
technology mapping it produces the post-mapping maximum delay that the ML
model learns to predict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TimingError
from repro.mapping.netlist import MappedGate, MappedNetlist


@dataclass(frozen=True)
class TimingArc:
    """One resolved gate arc on the critical path (for reporting)."""

    gate_cell: str
    input_net: int
    output_net: int
    pin_name: str
    delay_ps: float
    arrival_ps: float


@dataclass
class TimingReport:
    """Result of a full STA run."""

    max_delay_ps: float
    po_arrival_ps: Dict[str, float]
    net_arrival_ps: Dict[int, float]
    net_required_ps: Dict[int, float]
    net_load_ff: Dict[int, float]
    critical_path: List[TimingArc] = field(default_factory=list)
    clock_period_ps: Optional[float] = None

    @property
    def worst_slack_ps(self) -> float:
        """Worst slack over all nets (0 when the clock equals the max delay)."""
        if not self.net_arrival_ps:
            return 0.0
        return min(
            self.net_required_ps[net] - self.net_arrival_ps[net]
            for net in self.net_arrival_ps
        )

    def critical_po(self) -> Optional[str]:
        """Name of the primary output with the largest arrival time."""
        if not self.po_arrival_ps:
            return None
        return max(self.po_arrival_ps, key=self.po_arrival_ps.get)


def compute_net_loads(netlist: MappedNetlist, po_load_ff: float) -> Dict[int, float]:
    """Capacitive load of every net (input pin caps + PO load)."""
    loads: Dict[int, float] = {net: 0.0 for net in range(netlist.num_nets)}
    for gate in netlist.gates:
        for net, pin in zip(gate.inputs, gate.cell.pins):
            loads[net] += pin.capacitance_ff
    for net in netlist.po_nets:
        if net is not None:
            loads[net] += po_load_ff
    return loads


def analyze_timing(
    netlist: MappedNetlist,
    po_load_ff: float = 5.0,
    clock_period_ps: Optional[float] = None,
    with_critical_path: bool = True,
) -> TimingReport:
    """Run STA on *netlist* and return a :class:`TimingReport`."""
    loads = compute_net_loads(netlist, po_load_ff)
    arrival: Dict[int, float] = {}
    for net in netlist.pi_nets:
        arrival[net] = 0.0
    for net in netlist.constant_nets:
        arrival[net] = 0.0

    # Gates are stored in topological order by construction.
    worst_input: Dict[int, Tuple[MappedGate, int, str, float]] = {}
    for gate in netlist.gates:
        out_load = loads[gate.output]
        best_arrival = 0.0
        best_record: Optional[Tuple[MappedGate, int, str, float]] = None
        for net, pin in zip(gate.inputs, gate.cell.pins):
            if net not in arrival:
                raise TimingError(
                    f"gate {gate.cell.name} consumes net {net} with unknown arrival "
                    "(netlist not topologically ordered?)"
                )
            arc_delay = pin.delay_ps(out_load)
            candidate = arrival[net] + arc_delay
            if best_record is None or candidate > best_arrival:
                best_arrival = candidate
                best_record = (gate, net, pin.name, arc_delay)
        arrival[gate.output] = best_arrival
        if best_record is not None:
            worst_input[gate.output] = best_record

    po_arrival: Dict[str, float] = {}
    for name, net in zip(netlist.po_names, netlist.po_nets):
        if net is None:
            raise TimingError(f"primary output {name!r} is unconnected")
        po_arrival[name] = arrival[net]
    max_delay = max(po_arrival.values()) if po_arrival else 0.0
    period = clock_period_ps if clock_period_ps is not None else max_delay

    required = _propagate_required(netlist, arrival, loads, period)

    critical_path: List[TimingArc] = []
    if with_critical_path and po_arrival:
        critical_path = _extract_critical_path(netlist, arrival, worst_input, po_arrival)

    return TimingReport(
        max_delay_ps=max_delay,
        po_arrival_ps=po_arrival,
        net_arrival_ps=arrival,
        net_required_ps=required,
        net_load_ff=loads,
        critical_path=critical_path,
        clock_period_ps=period,
    )


def _propagate_required(
    netlist: MappedNetlist,
    arrival: Dict[int, float],
    loads: Dict[int, float],
    period: float,
) -> Dict[int, float]:
    required: Dict[int, float] = {net: float("inf") for net in arrival}
    for net in netlist.po_nets:
        if net is not None:
            required[net] = min(required[net], period)
    for gate in reversed(netlist.gates):
        out_required = required.get(gate.output, float("inf"))
        out_load = loads[gate.output]
        for net, pin in zip(gate.inputs, gate.cell.pins):
            candidate = out_required - pin.delay_ps(out_load)
            if candidate < required.get(net, float("inf")):
                required[net] = candidate
    # Nets never constrained (e.g. dangling) get the period as requirement.
    for net in list(required):
        if required[net] == float("inf"):
            required[net] = period
    return required


def _extract_critical_path(
    netlist: MappedNetlist,
    arrival: Dict[int, float],
    worst_input: Dict[int, Tuple[MappedGate, int, str, float]],
    po_arrival: Dict[str, float],
) -> List[TimingArc]:
    critical_name = max(po_arrival, key=po_arrival.get)
    index = netlist.po_names.index(critical_name)
    net = netlist.po_nets[index]
    path: List[TimingArc] = []
    while net in worst_input:
        gate, input_net, pin_name, arc_delay = worst_input[net]
        path.append(
            TimingArc(
                gate_cell=gate.cell.name,
                input_net=input_net,
                output_net=net,
                pin_name=pin_name,
                delay_ps=arc_delay,
                arrival_ps=arrival[net],
            )
        )
        net = input_net
    path.reverse()
    return path
