"""Static timing analysis on mapped netlists.

The delay model is the linear load model of the cell library: the delay of a
timing arc (input pin -> output) is ``intrinsic + resistance * load``, where
the load of a net is the sum of the input-pin capacitances it drives plus a
fixed primary-output load.  Arrival times are propagated in one topological
pass, required times in one reverse pass, giving per-net slacks and the
critical path.

This is the "STA" step of the paper's ground-truth flow; together with
technology mapping it produces the post-mapping maximum delay that the ML
model learns to predict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TimingError
from repro.mapping.netlist import MappedNetlist


@dataclass(frozen=True)
class TimingArc:
    """One resolved gate arc on the critical path (for reporting)."""

    gate_cell: str
    input_net: int
    output_net: int
    pin_name: str
    delay_ps: float
    arrival_ps: float


@dataclass
class TimingReport:
    """Result of a full STA run."""

    max_delay_ps: float
    po_arrival_ps: Dict[str, float]
    net_arrival_ps: Dict[int, float]
    net_required_ps: Dict[int, float]
    net_load_ff: Dict[int, float]
    critical_path: List[TimingArc] = field(default_factory=list)
    clock_period_ps: Optional[float] = None

    @property
    def worst_slack_ps(self) -> float:
        """Worst slack over all nets (0 when the clock equals the max delay)."""
        if not self.net_arrival_ps:
            return 0.0
        return min(
            self.net_required_ps[net] - self.net_arrival_ps[net]
            for net in self.net_arrival_ps
        )

    def critical_po(self) -> Optional[str]:
        """Name of the primary output with the largest arrival time."""
        if not self.po_arrival_ps:
            return None
        return max(self.po_arrival_ps, key=self.po_arrival_ps.get)


def compute_net_loads(netlist: MappedNetlist, po_load_ff: float) -> Dict[int, float]:
    """Capacitive load of every net (input pin caps + PO load)."""
    loads: Dict[int, float] = {net: 0.0 for net in range(netlist.num_nets)}
    for gate in netlist.gates:
        for net, pin in zip(gate.inputs, gate.cell.pins):
            loads[net] += pin.capacitance_ff
    for net in netlist.po_nets:
        if net is not None:
            loads[net] += po_load_ff
    return loads


class _ArcTables:
    """Flattened timing-arc arrays of one netlist (one arc per gate input).

    Arc order is gate order × pin order — exactly the iteration order of the
    scalar reference implementation — so any order-sensitive float
    accumulation over arcs reproduces the reference bit for bit.  Max/min
    reductions are order-insensitive, so the level-wave passes below are
    exact regardless of grouping.
    """

    __slots__ = (
        "arc_in",
        "arc_out",
        "arc_delay",
        "gate_level",
        "gate_arc_range",
        "level_groups",
        "driver_of_net",
    )

    def __init__(self, netlist: MappedNetlist, loads: np.ndarray) -> None:
        gates = netlist.gates
        num_nets = netlist.num_nets
        arc_in: List[int] = []
        arc_out: List[int] = []
        arc_intr: List[float] = []
        arc_res: List[float] = []
        self.gate_arc_range: List[Tuple[int, int]] = []
        # Cells are library singletons; cache their pin parameter tuples so
        # the flattening loop does one dict hit per gate instead of one
        # attribute walk per pin.
        pin_cache: Dict[str, Tuple[Tuple[float, ...], Tuple[float, ...]]] = {}
        # Net logic levels double as the topological-order check: a gate
        # consuming a net with no level yet is exactly the condition under
        # which the scalar pass raised, in the same gate order.
        net_level = [-1] * num_nets
        for net in netlist.pi_nets:
            net_level[net] = 0
        for net in netlist.constant_nets:
            net_level[net] = 0
        self.gate_level: List[int] = []
        self.driver_of_net: Dict[int, int] = {}
        for gate_index, gate in enumerate(gates):
            cell = gate.cell
            cached = pin_cache.get(cell.name)
            if cached is None:
                cached = (
                    tuple(pin.intrinsic_ps for pin in cell.pins),
                    tuple(pin.resistance_ps_per_ff for pin in cell.pins),
                )
                pin_cache[cell.name] = cached
            intrs, ress = cached
            start = len(arc_in)
            level = 0
            for net, intr, res in zip(gate.inputs, intrs, ress):
                in_level = net_level[net]
                if in_level < 0:
                    raise TimingError(
                        f"gate {cell.name} consumes net {net} with unknown arrival "
                        "(netlist not topologically ordered?)"
                    )
                if in_level > level:
                    level = in_level
                arc_in.append(net)
                arc_out.append(gate.output)
                arc_intr.append(intr)
                arc_res.append(res)
            self.gate_arc_range.append((start, len(arc_in)))
            net_level[gate.output] = level + 1
            self.gate_level.append(level + 1)
            self.driver_of_net[gate.output] = gate_index
        self.arc_in = np.asarray(arc_in, dtype=np.int64)
        self.arc_out = np.asarray(arc_out, dtype=np.int64)
        self.arc_delay = (
            np.asarray(arc_intr, dtype=np.float64)
            + np.asarray(arc_res, dtype=np.float64) * loads[self.arc_out]
        )
        # Arcs grouped by gate level, ascending; each group only consumes
        # arrivals settled by strictly lower groups.
        self.level_groups: List[np.ndarray] = []
        if gates:
            arc_level = np.repeat(
                np.asarray(self.gate_level, dtype=np.int64),
                [end - start for start, end in self.gate_arc_range],
            )
            order = np.argsort(arc_level, kind="stable")
            ordered_levels = arc_level[order]
            boundaries = np.nonzero(np.diff(ordered_levels))[0] + 1
            self.level_groups = np.split(order, boundaries)


def analyze_timing(
    netlist: MappedNetlist,
    po_load_ff: float = 5.0,
    clock_period_ps: Optional[float] = None,
    with_critical_path: bool = True,
) -> TimingReport:
    """Run STA on *netlist* and return a :class:`TimingReport`.

    Arrival and required times are propagated level by level with vectorised
    max/min waves over the flattened arc arrays; the results are bit-identical
    to the per-gate scalar recurrence because max and min are order-insensitive
    and every arc delay is computed with the same two float64 operations.
    """
    loads_dict = compute_net_loads(netlist, po_load_ff)
    num_nets = netlist.num_nets
    loads = np.fromiter(loads_dict.values(), dtype=np.float64, count=num_nets)
    arcs = _ArcTables(netlist, loads)

    neg_inf = float("-inf")
    arrival_arr = np.full(num_nets, neg_inf)
    # The known-net key order of the scalar implementation: PIs, constants,
    # then gate outputs in gate order (report dicts preserve it).
    known_nets: List[int] = []
    for net in netlist.pi_nets:
        arrival_arr[net] = 0.0
        known_nets.append(net)
    for net in netlist.constant_nets:
        arrival_arr[net] = 0.0
        known_nets.append(net)
    for gate in netlist.gates:
        known_nets.append(gate.output)

    arc_in = arcs.arc_in
    arc_out = arcs.arc_out
    arc_delay = arcs.arc_delay
    for group in arcs.level_groups:
        np.maximum.at(arrival_arr, arc_out[group], arrival_arr[arc_in[group]] + arc_delay[group])

    po_arrival: Dict[str, float] = {}
    for name, net in zip(netlist.po_names, netlist.po_nets):
        if net is None:
            raise TimingError(f"primary output {name!r} is unconnected")
        po_arrival[name] = float(arrival_arr[net])
    max_delay = max(po_arrival.values()) if po_arrival else 0.0
    period = clock_period_ps if clock_period_ps is not None else max_delay

    required_arr = np.full(num_nets, float("inf"))
    for net in netlist.po_nets:
        if net is not None and period < required_arr[net]:
            required_arr[net] = period
    for group in reversed(arcs.level_groups):
        np.minimum.at(required_arr, arc_in[group], required_arr[arc_out[group]] - arc_delay[group])

    arrival = {net: float(arrival_arr[net]) for net in known_nets}
    required = {
        net: (period if required_arr[net] == float("inf") else float(required_arr[net]))
        for net in known_nets
    }

    critical_path: List[TimingArc] = []
    if with_critical_path and po_arrival:
        critical_path = _walk_critical_path(netlist, arcs, arrival_arr, po_arrival)

    return TimingReport(
        max_delay_ps=max_delay,
        po_arrival_ps=po_arrival,
        net_arrival_ps=arrival,
        net_required_ps=required,
        net_load_ff=loads_dict,
        critical_path=critical_path,
        clock_period_ps=period,
    )


def _walk_critical_path(
    netlist: MappedNetlist,
    arcs: _ArcTables,
    arrival_arr: np.ndarray,
    po_arrival: Dict[str, float],
) -> List[TimingArc]:
    """Back-walk the worst PO cone, re-deriving each gate's worst input.

    Reproduces the scalar pass's record exactly: input arrivals are final
    when a gate is (re)examined, and the first strictly-greater candidate in
    pin order wins, which is the scalar tie-break.
    """
    critical_name = max(po_arrival, key=po_arrival.get)
    index = netlist.po_names.index(critical_name)
    net = netlist.po_nets[index]
    path: List[TimingArc] = []
    driver_of_net = arcs.driver_of_net
    arc_in = arcs.arc_in
    arc_delay = arcs.arc_delay
    while net in driver_of_net:
        gate = netlist.gates[driver_of_net[net]]
        start, end = arcs.gate_arc_range[driver_of_net[net]]
        best_arrival = 0.0
        best: Optional[Tuple[int, str, float]] = None
        for arc_index in range(start, end):
            in_net = int(arc_in[arc_index])
            delay = float(arc_delay[arc_index])
            candidate = float(arrival_arr[in_net]) + delay
            if best is None or candidate > best_arrival:
                best_arrival = candidate
                pin = gate.cell.pins[arc_index - start]
                best = (in_net, pin.name, delay)
        if best is None:
            break
        input_net, pin_name, delay = best
        path.append(
            TimingArc(
                gate_cell=gate.cell.name,
                input_net=input_net,
                output_net=net,
                pin_name=pin_name,
                delay_ps=delay,
                arrival_ps=float(arrival_arr[net]),
            )
        )
        net = input_net
    path.reverse()
    return path


# --------------------------------------------------------------------------- #
# Incremental STA
# --------------------------------------------------------------------------- #

# Cell identity codes for the array-form gate-record comparison.  The scalar
# predicate compared ``a.cell is b.cell`` (cells are shared library
# singletons); interning each distinct cell object to a small integer makes
# that an array equality.  The keepalive list pins every coded cell so an
# ``id`` is never recycled for a different object; codes never reach any
# output, so their assignment order cannot affect reproducibility.
_CELL_CODES: Dict[int, int] = {}
_CELL_KEEPALIVE: List[object] = []


def _cell_code(cell: object) -> int:
    code = _CELL_CODES.get(id(cell))
    if code is None:
        code = len(_CELL_KEEPALIVE)
        _CELL_CODES[id(cell)] = code
        _CELL_KEEPALIVE.append(cell)
    return code


def _pad1(arr: np.ndarray, length: int, fill) -> np.ndarray:
    """*arr* resized to *length* (truncate or pad with *fill*)."""
    if len(arr) == length:
        return arr
    if len(arr) > length:
        return arr[:length]
    out = np.full(length, fill, dtype=arr.dtype)
    out[: len(arr)] = arr
    return out


def _pad2(arr: np.ndarray, length: int, width: int, fill) -> np.ndarray:
    """2-D variant of :func:`_pad1` (rows to *length*, columns to *width*)."""
    if arr.shape == (length, width):
        return arr
    out = np.full((length, width), fill, dtype=arr.dtype)
    rows = min(len(arr), length)
    cols = min(arr.shape[1], width)
    out[:rows, :cols] = arr[:rows, :cols]
    return out


def _segment_arange(counts: np.ndarray, total: int) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without a Python loop."""
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


@dataclass
class TimingState:
    """Carry-over state of one STA run, as net-indexed arrays.

    Produced and consumed by :func:`analyze_timing_incremental`.  Every
    per-net map is a dense array indexed by (persistent) net id — NaN marks
    a net the producing run did not know (``gate_cell_code`` uses -1) — so
    the next run's reuse predicate is a handful of vectorized comparisons
    instead of per-gate dictionary probes.  The state is only meaningful
    when the next netlist keeps stable net ids for its unchanged region,
    which is what the incremental mapper's persistent net policy guarantees.
    """

    num_nets: int
    loads: np.ndarray  #: (num_nets,) float64
    arrival: np.ndarray  #: (num_nets,) float64, NaN = unknown net
    required_raw: np.ndarray  #: (num_nets,) float64; inf = unconstrained, NaN = unknown
    period: float
    po_nets: np.ndarray  #: sorted distinct connected PO nets
    consumer_count: np.ndarray  #: (num_nets,) int64 distinct consumer gates
    gate_cell_code: np.ndarray  #: (num_nets,) int64 by output net, -1 = no gate
    gate_inputs: np.ndarray  #: (num_nets, width) int64 input nets, -1 pad


@dataclass
class TimingUpdateStats:
    """How much work one incremental STA update actually performed."""

    total_gates: int = 0
    arrival_recomputed: int = 0
    required_recomputed: int = 0
    required_full: bool = False


def analyze_timing_incremental(
    netlist: MappedNetlist,
    po_load_ff: float = 5.0,
    clock_period_ps: Optional[float] = None,
    prev: Optional[TimingState] = None,
) -> Tuple[TimingReport, TimingState, TimingUpdateStats]:
    """STA with arrival/required propagation seeded from a previous run.

    Produces a report bitwise-identical to
    ``analyze_timing(netlist, po_load_ff, clock_period_ps,
    with_critical_path=False)`` — a gate's arrival is only reused when its
    record, its output load, and all its input arrivals are unchanged, and a
    net's required time is only reused when the clock period and every
    consumer contribution is unchanged, so every skipped computation would
    have reproduced the previous value exactly.  Without *prev* this is a
    plain full analysis that additionally returns carry-over state.

    Reuse predicates and both propagations run as level-wave array sweeps
    over the flattened arc tables; per-candidate arithmetic is the same two
    float64 operations as the scalar recurrence, and max/min reductions are
    order-insensitive, so every produced value matches the scalar reference
    bit for bit.  A *prev* state that is internally inconsistent (a gate
    record present but its output arrival unknown) fails closed: the gate is
    recomputed instead of propagating garbage or raising ``KeyError``.
    """
    stats = TimingUpdateStats(total_gates=netlist.num_gates)
    num_nets = netlist.num_nets
    gates = netlist.gates
    num_gates = len(gates)
    nan = float("nan")
    inf = float("inf")

    loads_dict = compute_net_loads(netlist, po_load_ff)
    loads = np.fromiter(loads_dict.values(), dtype=np.float64, count=num_nets)
    # Flatten arcs; raises the scalar pass's TimingError (same message, same
    # first offender) when the netlist is not topologically ordered.
    arcs = _ArcTables(netlist, loads)
    arc_in = arcs.arc_in
    arc_out = arcs.arc_out
    arc_delay = arcs.arc_delay
    num_arcs = len(arc_in)

    # Per-gate arrays: output net, arity, arc range start, cell code, padded
    # input tuple.  Width 4 covers every library cell; widen defensively.
    gate_out = np.fromiter((g.output for g in gates), dtype=np.int64, count=num_gates)
    arity = np.asarray(
        [end - start for start, end in arcs.gate_arc_range], dtype=np.int64
    )
    g_start = np.asarray(
        [start for start, _ in arcs.gate_arc_range], dtype=np.int64
    )
    width = max(4, int(arity.max()) if num_gates else 4)
    cur_code = np.fromiter(
        (_cell_code(g.cell) for g in gates), dtype=np.int64, count=num_gates
    )
    cur_inputs = np.full((num_gates, width), -1, dtype=np.int64)
    if num_arcs:
        arc_gate = np.repeat(np.arange(num_gates, dtype=np.int64), arity)
        cur_inputs[arc_gate, _segment_arange(arity, num_arcs)] = arc_in
    else:
        arc_gate = np.empty(0, dtype=np.int64)

    # Previous state, normalised to this netlist's net-id range (persistent
    # ids: anything beyond either range is simply unknown).
    if prev is not None:
        p_arrival = _pad1(prev.arrival, num_nets, nan)
        p_required = _pad1(prev.required_raw, num_nets, nan)
        p_loads = _pad1(prev.loads, num_nets, nan)
        p_code = _pad1(prev.gate_cell_code, num_nets, -1)
        p_inputs = _pad2(prev.gate_inputs, num_nets, width, -1)
        p_ccount = _pad1(prev.consumer_count, num_nets, 0)
    else:
        p_arrival = p_required = np.full(num_nets, nan)
        p_loads = np.full(num_nets, nan)
        p_code = np.full(num_nets, -1, dtype=np.int64)
        p_inputs = np.full((num_nets, width), -1, dtype=np.int64)
        p_ccount = np.zeros(num_nets, dtype=np.int64)

    # Static gate-record reuse mask: same cell (identity, via interned
    # codes), same inputs, same output load.  NaN loads (unknown in prev)
    # compare unequal, exactly like the scalar dict-get against None.
    if num_gates:
        grec_ok = (
            (p_code[gate_out] == cur_code)
            & (p_inputs[gate_out] == cur_inputs).all(axis=1)
            & (p_loads[gate_out] == loads[gate_out])
        )
        # Fail closed on inconsistent state: a matching gate record whose
        # output arrival the previous run does not actually know must be
        # recomputed (the scalar implementation raised KeyError here).
        rec_ok = grec_ok & ~np.isnan(p_arrival[gate_out])
    else:
        grec_ok = rec_ok = np.zeros(0, dtype=bool)

    # ---- arrival pass: level waves of reuse masks + maximum scatters ---- #
    arrival_arr = np.full(num_nets, nan)
    changed = np.zeros(num_nets, dtype=bool)
    base_nets = np.asarray(
        list(netlist.pi_nets) + list(netlist.constant_nets), dtype=np.int64
    )
    if len(base_nets):
        arrival_arr[base_nets] = 0.0
        changed[base_nets] = ~(p_arrival[base_nets] == 0.0)

    gate_waves: List[np.ndarray] = []
    if num_gates:
        glev = np.asarray(arcs.gate_level, dtype=np.int64)
        gorder = np.argsort(glev, kind="stable")
        cuts = np.nonzero(np.diff(glev[gorder]))[0] + 1
        gate_waves = np.split(gorder, cuts)

    neg_inf = float("-inf")
    for wave in gate_waves:
        counts = arity[wave]
        total = int(counts.sum())
        wave_arcs = np.repeat(g_start[wave], counts) + _segment_arange(
            counts, total
        )
        seg_starts = np.cumsum(counts) - counts
        input_changed = np.bitwise_or.reduceat(
            changed[arc_in[wave_arcs]], seg_starts
        )
        reuse = rec_ok[wave] & ~input_changed
        reused_out = gate_out[wave[reuse]]
        arrival_arr[reused_out] = p_arrival[reused_out]
        redo = wave[~reuse]
        if len(redo):
            rc = arity[redo]
            rtotal = int(rc.sum())
            redo_arcs = np.repeat(g_start[redo], rc) + _segment_arange(
                rc, rtotal
            )
            t = arrival_arr[arc_in[redo_arcs]] + arc_delay[redo_arcs]
            outs = gate_out[redo]
            arrival_arr[outs] = neg_inf
            np.maximum.at(arrival_arr, arc_out[redo_arcs], t)
            changed[outs] = ~(p_arrival[outs] == arrival_arr[outs])
            stats.arrival_recomputed += len(redo)

    po_arrival: Dict[str, float] = {}
    for name, net in zip(netlist.po_names, netlist.po_nets):
        if net is None:
            raise TimingError(f"primary output {name!r} is unconnected")
        po_arrival[name] = float(arrival_arr[net])
    max_delay = max(po_arrival.values()) if po_arrival else 0.0
    period = clock_period_ps if clock_period_ps is not None else max_delay
    po_nets = np.unique(
        np.asarray(
            [net for net in netlist.po_nets if net is not None], dtype=np.int64
        )
    )

    # ---- consumer structures (arcs grouped by input net) ---- #
    arcs_per_net = np.bincount(arc_in, minlength=num_nets).astype(np.int64)
    cons_start = np.cumsum(arcs_per_net) - arcs_per_net
    if num_arcs:
        in_order = np.argsort(arc_in, kind="stable")
        cons_arcs = in_order
        s_in = arc_in[in_order]
        s_gate = arc_gate[in_order]
        distinct = np.empty(num_arcs, dtype=bool)
        distinct[0] = True
        distinct[1:] = (s_in[1:] != s_in[:-1]) | (s_gate[1:] != s_gate[:-1])
        consumer_count = np.bincount(
            s_in[distinct], minlength=num_nets
        ).astype(np.int64)
        # All-consumers static check (duplicate gates cannot flip an AND).
        cons_ok = np.ones(num_nets, dtype=bool)
        np.logical_and.at(cons_ok, s_in, grec_ok[s_gate])
    else:
        cons_arcs = np.empty(0, dtype=np.int64)
        consumer_count = np.zeros(num_nets, dtype=np.int64)
        cons_ok = np.ones(num_nets, dtype=bool)

    known_nets: List[int] = list(netlist.pi_nets)
    known_nets.extend(netlist.constant_nets)
    known_nets.extend(gate.output for gate in gates)
    known_idx = np.asarray(known_nets, dtype=np.int64)

    # ---- required pass ---- #
    required_raw = np.full(num_nets, nan)
    if (
        prev is None
        or period != prev.period
        or not np.array_equal(po_nets, prev.po_nets)
    ):
        # Period or PO binding changed: every PO seed differs, the change
        # cascades through the whole cone — recompute everything with the
        # same reverse level sweeps as the full analysis.
        stats.required_full = True
        if len(known_idx):
            required_raw[known_idx] = inf
        required_raw[po_nets] = period
        for group in reversed(arcs.level_groups):
            np.minimum.at(
                required_raw,
                arc_in[group],
                required_raw[arc_out[group]] - arc_delay[group],
            )
    else:
        # Net-wave sweep in descending definition level: every consumer's
        # output lies at a strictly higher level, so consumer required
        # times (and their changed flags) are final when a net is visited.
        is_po = np.zeros(num_nets, dtype=bool)
        is_po[po_nets] = True
        net_level = np.full(num_nets, -1, dtype=np.int64)
        if len(base_nets):
            net_level[base_nets] = 0
        if num_gates:
            net_level[gate_out] = glev
        net_static = (
            ~np.isnan(p_required)
            & (consumer_count == p_ccount)
            & cons_ok
        )
        req_changed = np.zeros(num_nets, dtype=bool)
        known_mask_nets = np.nonzero(net_level >= 0)[0]
        rorder = np.argsort(-net_level[known_mask_nets], kind="stable")
        sorted_nets = known_mask_nets[rorder]
        cuts = (
            np.nonzero(np.diff(net_level[sorted_nets]))[0] + 1
            if len(sorted_nets)
            else np.empty(0, dtype=np.int64)
        )
        for net_wave in np.split(sorted_nets, cuts) if len(sorted_nets) else []:
            reuse = net_static[net_wave].copy()
            has_cons = arcs_per_net[net_wave] > 0
            consumed = net_wave[has_cons]
            if len(consumed):
                cc = arcs_per_net[consumed]
                ctotal = int(cc.sum())
                aw = cons_arcs[
                    np.repeat(cons_start[consumed], cc)
                    + _segment_arange(cc, ctotal)
                ]
                seg_starts = np.cumsum(cc) - cc
                consumer_changed = np.bitwise_or.reduceat(
                    req_changed[arc_out[aw]], seg_starts
                )
                reuse[has_cons] &= ~consumer_changed
            reused = net_wave[reuse]
            required_raw[reused] = p_required[reused]
            redo = net_wave[~reuse]
            if len(redo):
                required_raw[redo] = np.where(is_po[redo], period, inf)
                rc = arcs_per_net[redo]
                rtotal = int(rc.sum())
                if rtotal:
                    ar = cons_arcs[
                        np.repeat(cons_start[redo], rc)
                        + _segment_arange(rc, rtotal)
                    ]
                    np.minimum.at(
                        required_raw,
                        arc_in[ar],
                        required_raw[arc_out[ar]] - arc_delay[ar],
                    )
                req_changed[redo] = ~(p_required[redo] == required_raw[redo])
                stats.required_recomputed += len(redo)

    # ---- reports (scalar key order: PIs, constants, gate outputs) ---- #
    arrival_list = arrival_arr.tolist()
    required_list = required_raw.tolist()
    arrival_report = {net: arrival_list[net] for net in known_nets}
    required_report = {
        net: (period if required_list[net] == inf else required_list[net])
        for net in known_nets
    }
    if stats.required_full:
        stats.required_recomputed = len(required_report)

    report = TimingReport(
        max_delay_ps=max_delay,
        po_arrival_ps=po_arrival,
        net_arrival_ps=arrival_report,
        net_required_ps=required_report,
        net_load_ff=loads_dict,
        critical_path=[],
        clock_period_ps=period,
    )
    gate_cell_code = np.full(num_nets, -1, dtype=np.int64)
    gate_inputs = np.full((num_nets, width), -1, dtype=np.int64)
    if num_gates:
        gate_cell_code[gate_out] = cur_code
        gate_inputs[gate_out] = cur_inputs
    state = TimingState(
        num_nets=num_nets,
        loads=loads,
        arrival=arrival_arr,
        required_raw=required_raw,
        period=period,
        po_nets=po_nets,
        consumer_count=consumer_count,
        gate_cell_code=gate_cell_code,
        gate_inputs=gate_inputs,
    )
    return report, state, stats


