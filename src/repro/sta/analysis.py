"""Static timing analysis on mapped netlists.

The delay model is the linear load model of the cell library: the delay of a
timing arc (input pin -> output) is ``intrinsic + resistance * load``, where
the load of a net is the sum of the input-pin capacitances it drives plus a
fixed primary-output load.  Arrival times are propagated in one topological
pass, required times in one reverse pass, giving per-net slacks and the
critical path.

This is the "STA" step of the paper's ground-truth flow; together with
technology mapping it produces the post-mapping maximum delay that the ML
model learns to predict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TimingError
from repro.mapping.netlist import MappedGate, MappedNetlist


@dataclass(frozen=True)
class TimingArc:
    """One resolved gate arc on the critical path (for reporting)."""

    gate_cell: str
    input_net: int
    output_net: int
    pin_name: str
    delay_ps: float
    arrival_ps: float


@dataclass
class TimingReport:
    """Result of a full STA run."""

    max_delay_ps: float
    po_arrival_ps: Dict[str, float]
    net_arrival_ps: Dict[int, float]
    net_required_ps: Dict[int, float]
    net_load_ff: Dict[int, float]
    critical_path: List[TimingArc] = field(default_factory=list)
    clock_period_ps: Optional[float] = None

    @property
    def worst_slack_ps(self) -> float:
        """Worst slack over all nets (0 when the clock equals the max delay)."""
        if not self.net_arrival_ps:
            return 0.0
        return min(
            self.net_required_ps[net] - self.net_arrival_ps[net]
            for net in self.net_arrival_ps
        )

    def critical_po(self) -> Optional[str]:
        """Name of the primary output with the largest arrival time."""
        if not self.po_arrival_ps:
            return None
        return max(self.po_arrival_ps, key=self.po_arrival_ps.get)


def compute_net_loads(netlist: MappedNetlist, po_load_ff: float) -> Dict[int, float]:
    """Capacitive load of every net (input pin caps + PO load)."""
    loads: Dict[int, float] = {net: 0.0 for net in range(netlist.num_nets)}
    for gate in netlist.gates:
        for net, pin in zip(gate.inputs, gate.cell.pins):
            loads[net] += pin.capacitance_ff
    for net in netlist.po_nets:
        if net is not None:
            loads[net] += po_load_ff
    return loads


class _ArcTables:
    """Flattened timing-arc arrays of one netlist (one arc per gate input).

    Arc order is gate order × pin order — exactly the iteration order of the
    scalar reference implementation — so any order-sensitive float
    accumulation over arcs reproduces the reference bit for bit.  Max/min
    reductions are order-insensitive, so the level-wave passes below are
    exact regardless of grouping.
    """

    __slots__ = (
        "arc_in",
        "arc_out",
        "arc_delay",
        "gate_level",
        "gate_arc_range",
        "level_groups",
        "driver_of_net",
    )

    def __init__(self, netlist: MappedNetlist, loads: np.ndarray) -> None:
        gates = netlist.gates
        num_nets = netlist.num_nets
        arc_in: List[int] = []
        arc_out: List[int] = []
        arc_intr: List[float] = []
        arc_res: List[float] = []
        self.gate_arc_range: List[Tuple[int, int]] = []
        # Cells are library singletons; cache their pin parameter tuples so
        # the flattening loop does one dict hit per gate instead of one
        # attribute walk per pin.
        pin_cache: Dict[str, Tuple[Tuple[float, ...], Tuple[float, ...]]] = {}
        # Net logic levels double as the topological-order check: a gate
        # consuming a net with no level yet is exactly the condition under
        # which the scalar pass raised, in the same gate order.
        net_level = [-1] * num_nets
        for net in netlist.pi_nets:
            net_level[net] = 0
        for net in netlist.constant_nets:
            net_level[net] = 0
        self.gate_level: List[int] = []
        self.driver_of_net: Dict[int, int] = {}
        for gate_index, gate in enumerate(gates):
            cell = gate.cell
            cached = pin_cache.get(cell.name)
            if cached is None:
                cached = (
                    tuple(pin.intrinsic_ps for pin in cell.pins),
                    tuple(pin.resistance_ps_per_ff for pin in cell.pins),
                )
                pin_cache[cell.name] = cached
            intrs, ress = cached
            start = len(arc_in)
            level = 0
            for net, intr, res in zip(gate.inputs, intrs, ress):
                in_level = net_level[net]
                if in_level < 0:
                    raise TimingError(
                        f"gate {cell.name} consumes net {net} with unknown arrival "
                        "(netlist not topologically ordered?)"
                    )
                if in_level > level:
                    level = in_level
                arc_in.append(net)
                arc_out.append(gate.output)
                arc_intr.append(intr)
                arc_res.append(res)
            self.gate_arc_range.append((start, len(arc_in)))
            net_level[gate.output] = level + 1
            self.gate_level.append(level + 1)
            self.driver_of_net[gate.output] = gate_index
        self.arc_in = np.asarray(arc_in, dtype=np.int64)
        self.arc_out = np.asarray(arc_out, dtype=np.int64)
        self.arc_delay = (
            np.asarray(arc_intr, dtype=np.float64)
            + np.asarray(arc_res, dtype=np.float64) * loads[self.arc_out]
        )
        # Arcs grouped by gate level, ascending; each group only consumes
        # arrivals settled by strictly lower groups.
        self.level_groups: List[np.ndarray] = []
        if gates:
            arc_level = np.repeat(
                np.asarray(self.gate_level, dtype=np.int64),
                [end - start for start, end in self.gate_arc_range],
            )
            order = np.argsort(arc_level, kind="stable")
            ordered_levels = arc_level[order]
            boundaries = np.nonzero(np.diff(ordered_levels))[0] + 1
            self.level_groups = np.split(order, boundaries)


def analyze_timing(
    netlist: MappedNetlist,
    po_load_ff: float = 5.0,
    clock_period_ps: Optional[float] = None,
    with_critical_path: bool = True,
) -> TimingReport:
    """Run STA on *netlist* and return a :class:`TimingReport`.

    Arrival and required times are propagated level by level with vectorised
    max/min waves over the flattened arc arrays; the results are bit-identical
    to the per-gate scalar recurrence because max and min are order-insensitive
    and every arc delay is computed with the same two float64 operations.
    """
    loads_dict = compute_net_loads(netlist, po_load_ff)
    num_nets = netlist.num_nets
    loads = np.fromiter(loads_dict.values(), dtype=np.float64, count=num_nets)
    arcs = _ArcTables(netlist, loads)

    neg_inf = float("-inf")
    arrival_arr = np.full(num_nets, neg_inf)
    # The known-net key order of the scalar implementation: PIs, constants,
    # then gate outputs in gate order (report dicts preserve it).
    known_nets: List[int] = []
    for net in netlist.pi_nets:
        arrival_arr[net] = 0.0
        known_nets.append(net)
    for net in netlist.constant_nets:
        arrival_arr[net] = 0.0
        known_nets.append(net)
    for gate in netlist.gates:
        known_nets.append(gate.output)

    arc_in = arcs.arc_in
    arc_out = arcs.arc_out
    arc_delay = arcs.arc_delay
    for group in arcs.level_groups:
        np.maximum.at(arrival_arr, arc_out[group], arrival_arr[arc_in[group]] + arc_delay[group])

    po_arrival: Dict[str, float] = {}
    for name, net in zip(netlist.po_names, netlist.po_nets):
        if net is None:
            raise TimingError(f"primary output {name!r} is unconnected")
        po_arrival[name] = float(arrival_arr[net])
    max_delay = max(po_arrival.values()) if po_arrival else 0.0
    period = clock_period_ps if clock_period_ps is not None else max_delay

    required_arr = np.full(num_nets, float("inf"))
    for net in netlist.po_nets:
        if net is not None and period < required_arr[net]:
            required_arr[net] = period
    for group in reversed(arcs.level_groups):
        np.minimum.at(required_arr, arc_in[group], required_arr[arc_out[group]] - arc_delay[group])

    arrival = {net: float(arrival_arr[net]) for net in known_nets}
    required = {
        net: (period if required_arr[net] == float("inf") else float(required_arr[net]))
        for net in known_nets
    }

    critical_path: List[TimingArc] = []
    if with_critical_path and po_arrival:
        critical_path = _walk_critical_path(netlist, arcs, arrival_arr, po_arrival)

    return TimingReport(
        max_delay_ps=max_delay,
        po_arrival_ps=po_arrival,
        net_arrival_ps=arrival,
        net_required_ps=required,
        net_load_ff=loads_dict,
        critical_path=critical_path,
        clock_period_ps=period,
    )


def _walk_critical_path(
    netlist: MappedNetlist,
    arcs: _ArcTables,
    arrival_arr: np.ndarray,
    po_arrival: Dict[str, float],
) -> List[TimingArc]:
    """Back-walk the worst PO cone, re-deriving each gate's worst input.

    Reproduces the scalar pass's record exactly: input arrivals are final
    when a gate is (re)examined, and the first strictly-greater candidate in
    pin order wins, which is the scalar tie-break.
    """
    critical_name = max(po_arrival, key=po_arrival.get)
    index = netlist.po_names.index(critical_name)
    net = netlist.po_nets[index]
    path: List[TimingArc] = []
    driver_of_net = arcs.driver_of_net
    arc_in = arcs.arc_in
    arc_delay = arcs.arc_delay
    while net in driver_of_net:
        gate = netlist.gates[driver_of_net[net]]
        start, end = arcs.gate_arc_range[driver_of_net[net]]
        best_arrival = 0.0
        best: Optional[Tuple[int, str, float]] = None
        for arc_index in range(start, end):
            in_net = int(arc_in[arc_index])
            delay = float(arc_delay[arc_index])
            candidate = float(arrival_arr[in_net]) + delay
            if best is None or candidate > best_arrival:
                best_arrival = candidate
                pin = gate.cell.pins[arc_index - start]
                best = (in_net, pin.name, delay)
        if best is None:
            break
        input_net, pin_name, delay = best
        path.append(
            TimingArc(
                gate_cell=gate.cell.name,
                input_net=input_net,
                output_net=net,
                pin_name=pin_name,
                delay_ps=delay,
                arrival_ps=float(arrival_arr[net]),
            )
        )
        net = input_net
    path.reverse()
    return path


# --------------------------------------------------------------------------- #
# Incremental STA
# --------------------------------------------------------------------------- #
@dataclass
class TimingState:
    """Carry-over state of one STA run, keyed by (persistent) net ids.

    Produced and consumed by :func:`analyze_timing_incremental`.  The state
    is only meaningful when the next netlist keeps stable net ids for its
    unchanged region, which is what the incremental mapper's persistent net
    policy guarantees.
    """

    loads: Dict[int, float]
    arrival: Dict[int, float]
    required_raw: Dict[int, float]  #: pre-fixup values (inf = unconstrained)
    period: float
    po_net_set: frozenset
    gate_by_output: Dict[int, MappedGate]
    consumer_count: Dict[int, int]  #: distinct consumer gates per net


@dataclass
class TimingUpdateStats:
    """How much work one incremental STA update actually performed."""

    total_gates: int = 0
    arrival_recomputed: int = 0
    required_recomputed: int = 0
    required_full: bool = False


def _gates_equal(a: MappedGate, b: MappedGate) -> bool:
    # Cells are shared library singletons, so identity comparison suffices
    # and avoids a deep dataclass comparison per gate.
    return a.cell is b.cell and a.inputs == b.inputs and a.output == b.output


def analyze_timing_incremental(
    netlist: MappedNetlist,
    po_load_ff: float = 5.0,
    clock_period_ps: Optional[float] = None,
    prev: Optional[TimingState] = None,
) -> Tuple[TimingReport, TimingState, TimingUpdateStats]:
    """STA with arrival/required propagation seeded from a previous run.

    Produces a report bitwise-identical to
    ``analyze_timing(netlist, po_load_ff, clock_period_ps,
    with_critical_path=False)`` — a gate's arrival is only reused when its
    record, its output load, and all its input arrivals are unchanged, and a
    net's required time is only reused when the clock period and every
    consumer contribution is unchanged, so every skipped computation would
    have reproduced the previous value exactly.  Without *prev* this is a
    plain full analysis that additionally returns carry-over state.
    """
    stats = TimingUpdateStats(total_gates=netlist.num_gates)
    loads = compute_net_loads(netlist, po_load_ff)
    prev_arrival = prev.arrival if prev is not None else {}
    prev_loads = prev.loads if prev is not None else {}
    prev_gates = prev.gate_by_output if prev is not None else {}

    arrival: Dict[int, float] = {}
    changed: set = set()
    for net in netlist.pi_nets:
        arrival[net] = 0.0
        if prev_arrival.get(net) != 0.0:
            changed.add(net)
    for net in netlist.constant_nets:
        arrival[net] = 0.0
        if prev_arrival.get(net) != 0.0:
            changed.add(net)

    gate_by_output: Dict[int, MappedGate] = {}
    for gate in netlist.gates:
        out = gate.output
        gate_by_output[out] = gate
        out_load = loads[out]
        prev_gate = prev_gates.get(out)
        if (
            prev_gate is not None
            and _gates_equal(prev_gate, gate)
            and prev_loads.get(out) == out_load
            and not any(net in changed for net in gate.inputs)
        ):
            arrival[out] = prev_arrival[out]
            continue
        best_arrival = 0.0
        first = True
        for net, pin in zip(gate.inputs, gate.cell.pins):
            if net not in arrival:
                raise TimingError(
                    f"gate {gate.cell.name} consumes net {net} with unknown arrival "
                    "(netlist not topologically ordered?)"
                )
            candidate = arrival[net] + pin.delay_ps(out_load)
            if first or candidate > best_arrival:
                best_arrival = candidate
                first = False
        arrival[out] = best_arrival
        stats.arrival_recomputed += 1
        if prev_arrival.get(out) != best_arrival:
            changed.add(out)

    po_arrival: Dict[str, float] = {}
    for name, net in zip(netlist.po_names, netlist.po_nets):
        if net is None:
            raise TimingError(f"primary output {name!r} is unconnected")
        po_arrival[name] = arrival[net]
    max_delay = max(po_arrival.values()) if po_arrival else 0.0
    period = clock_period_ps if clock_period_ps is not None else max_delay
    po_net_set = frozenset(net for net in netlist.po_nets if net is not None)

    # One entry per *distinct* consumer gate, so a gate driving a net into
    # two of its pins is visited once (its contribution loop covers both
    # pins) and consumer-set changes are detectable by count.
    consumers: Dict[int, List[MappedGate]] = {}
    for gate in netlist.gates:
        for net in dict.fromkeys(gate.inputs):
            consumers.setdefault(net, []).append(gate)
    consumer_count = {net: len(gates) for net, gates in consumers.items()}

    required_raw = _incremental_required(
        netlist,
        arrival,
        loads,
        period,
        po_net_set,
        consumers,
        consumer_count,
        prev,
        prev_loads,
        prev_gates,
        stats,
    )
    required = {
        net: (period if value == float("inf") else value)
        for net, value in required_raw.items()
    }

    report = TimingReport(
        max_delay_ps=max_delay,
        po_arrival_ps=po_arrival,
        net_arrival_ps=arrival,
        net_required_ps=required,
        net_load_ff=loads,
        critical_path=[],
        clock_period_ps=period,
    )
    state = TimingState(
        loads=loads,
        arrival=arrival,
        required_raw=required_raw,
        period=period,
        po_net_set=po_net_set,
        gate_by_output=gate_by_output,
        consumer_count=consumer_count,
    )
    return report, state, stats


def _incremental_required(
    netlist: MappedNetlist,
    arrival: Dict[int, float],
    loads: Dict[int, float],
    period: float,
    po_net_set: frozenset,
    consumers: Dict[int, List[MappedGate]],
    consumer_count: Dict[int, int],
    prev: Optional[TimingState],
    prev_loads: Dict[int, float],
    prev_gates: Dict[int, MappedGate],
    stats: TimingUpdateStats,
) -> Dict[int, float]:
    """Per-net required times (raw, inf = unconstrained), reusing *prev*.

    The classic reverse pass accumulates a running minimum; here each net's
    required time is the minimum over its PO constraint and one contribution
    per consumer pin, computed from the consumer output's *final* required
    time — the same value, since min is order-insensitive and every float
    operation uses identical operands.
    """
    inf = float("inf")
    if prev is None or period != prev.period or po_net_set != prev.po_net_set:
        # Period or PO binding changed: every PO seed differs, the change
        # cascades through the whole cone — recompute everything.
        stats.required_full = True
        required: Dict[int, float] = {net: inf for net in arrival}
        for net in po_net_set:
            if period < required[net]:
                required[net] = period
        for gate in reversed(netlist.gates):
            out_required = required.get(gate.output, inf)
            out_load = loads[gate.output]
            for net, pin in zip(gate.inputs, gate.cell.pins):
                candidate = out_required - pin.delay_ps(out_load)
                if candidate < required.get(net, inf):
                    required[net] = candidate
        stats.required_recomputed = len(required)
        return required

    prev_required = prev.required_raw
    prev_consumer_count = prev.consumer_count

    # Reverse definition order: every net is processed after all of its
    # consumers' outputs, so consumer required times are final when read.
    order: List[int] = list(netlist.pi_nets)
    order.extend(netlist.constant_nets)
    order.extend(gate.output for gate in netlist.gates)

    required_raw: Dict[int, float] = {}
    req_changed: set = set()
    for net in reversed(order):
        # Reuse needs the exact same contribution multiset as last time:
        # same number of distinct consumers, each with an unchanged gate
        # record, output load, and (final) output required time.  Count
        # equality plus per-consumer identity rules out vanished consumers.
        reusable = (
            net in prev_required
            and consumer_count.get(net, 0) == prev_consumer_count.get(net, 0)
        )
        if reusable:
            for consumer in consumers.get(net, ()):  # noqa: B007
                out = consumer.output
                prev_gate = prev_gates.get(out)
                if (
                    prev_gate is None
                    or not _gates_equal(prev_gate, consumer)
                    or prev_loads.get(out) != loads[out]
                    or out in req_changed
                ):
                    reusable = False
                    break
        if reusable:
            required_raw[net] = prev_required[net]
            continue
        value = period if net in po_net_set else inf
        for consumer in consumers.get(net, ()):
            out_load = loads[consumer.output]
            out_required = required_raw[consumer.output]
            for in_net, pin in zip(consumer.inputs, consumer.cell.pins):
                if in_net != net:
                    continue
                candidate = out_required - pin.delay_ps(out_load)
                if candidate < value:
                    value = candidate
        required_raw[net] = value
        stats.required_recomputed += 1
        if prev_required.get(net) != value:
            req_changed.add(net)
    return required_raw


