"""Human-readable timing report formatting."""

from __future__ import annotations

from typing import List

from repro.mapping.netlist import MappedNetlist
from repro.sta.analysis import TimingReport


def format_timing_report(netlist: MappedNetlist, report: TimingReport) -> str:
    """Render a compact text report similar to what an STA tool prints."""
    lines: List[str] = []
    lines.append(f"Design          : {netlist.name}")
    lines.append(f"Gates           : {netlist.num_gates}")
    lines.append(f"Area (um^2)     : {netlist.area_um2():.2f}")
    lines.append(f"Max delay (ps)  : {report.max_delay_ps:.2f}")
    lines.append(f"Clock period    : {report.clock_period_ps:.2f}")
    lines.append(f"Worst slack (ps): {report.worst_slack_ps:.2f}")
    critical = report.critical_po()
    if critical is not None:
        lines.append(f"Critical output : {critical}")
    lines.append("")
    lines.append("Per-output arrival times:")
    for name in sorted(report.po_arrival_ps):
        lines.append(f"  {name:<20} {report.po_arrival_ps[name]:10.2f} ps")
    if report.critical_path:
        lines.append("")
        lines.append("Critical path:")
        for arc in report.critical_path:
            lines.append(
                f"  {arc.gate_cell:<12} pin {arc.pin_name:<3} "
                f"+{arc.delay_ps:8.2f} ps -> {arc.arrival_ps:10.2f} ps"
            )
    return "\n".join(lines)


def format_cell_usage(netlist: MappedNetlist) -> str:
    """Render the per-cell instance counts of a mapped netlist."""
    histogram = netlist.cell_histogram()
    lines = ["Cell usage:"]
    for cell_name in sorted(histogram):
        lines.append(f"  {cell_name:<12} {histogram[cell_name]:6d}")
    lines.append(f"  {'total':<12} {netlist.num_gates:6d}")
    return "\n".join(lines)
