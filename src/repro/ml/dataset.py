"""Tabular dataset container for the delay-prediction task.

A :class:`TimingDataset` holds the feature matrix, the post-mapping delay
labels, the feature names, and a per-sample *design* tag.  The design tag is
what the paper's train/test protocol splits on: the model is trained on all
samples from four designs and evaluated on four designs it has never seen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class TimingDataset:
    """Features, delay labels, and design tags for a set of AIG samples."""

    features: np.ndarray
    labels: np.ndarray
    feature_names: List[str]
    designs: List[str]
    areas: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.float64)
        if self.features.ndim != 2:
            raise DatasetError("features must be a 2-D matrix")
        if self.labels.ndim != 1:
            raise DatasetError("labels must be a 1-D vector")
        if self.features.shape[0] != self.labels.shape[0]:
            raise DatasetError(
                f"feature rows ({self.features.shape[0]}) and labels "
                f"({self.labels.shape[0]}) differ"
            )
        if self.features.shape[1] != len(self.feature_names):
            raise DatasetError("feature_names length must match feature columns")
        if len(self.designs) != self.features.shape[0]:
            raise DatasetError("designs tag list must have one entry per sample")
        if self.areas is not None:
            self.areas = np.asarray(self.areas, dtype=np.float64)
            if self.areas.shape != self.labels.shape:
                raise DatasetError("areas must align with labels")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        """Number of feature columns."""
        return int(self.features.shape[1])

    def design_names(self) -> List[str]:
        """Distinct design tags, in first-appearance order."""
        seen: List[str] = []
        for name in self.designs:
            if name not in seen:
                seen.append(name)
        return seen

    def subset(self, indices: Sequence[int]) -> "TimingDataset":
        """A new dataset containing only the given sample indices."""
        idx = np.asarray(list(indices), dtype=np.int64)
        return TimingDataset(
            features=self.features[idx],
            labels=self.labels[idx],
            feature_names=list(self.feature_names),
            designs=[self.designs[i] for i in idx],
            areas=None if self.areas is None else self.areas[idx],
        )

    def for_designs(self, names: Iterable[str]) -> "TimingDataset":
        """Samples belonging to any of the listed designs."""
        wanted = set(names)
        indices = [i for i, d in enumerate(self.designs) if d in wanted]
        if not indices:
            raise DatasetError(f"no samples for designs {sorted(wanted)}")
        return self.subset(indices)

    def split_by_design(
        self, train_designs: Iterable[str], test_designs: Iterable[str]
    ) -> Tuple["TimingDataset", "TimingDataset"]:
        """The paper's protocol: train on some designs, test on unseen ones."""
        return self.for_designs(train_designs), self.for_designs(test_designs)

    def random_split(
        self, train_fraction: float = 0.8, rng: RngLike = None
    ) -> Tuple["TimingDataset", "TimingDataset"]:
        """Design-agnostic random split (used for in-design validation)."""
        if not 0.0 < train_fraction < 1.0:
            raise DatasetError("train_fraction must be in (0, 1)")
        generator = ensure_rng(rng)
        indices = list(range(len(self)))
        generator.shuffle(indices)
        cut = max(1, int(round(train_fraction * len(indices))))
        cut = min(cut, len(indices) - 1)
        return self.subset(indices[:cut]), self.subset(indices[cut:])

    def shuffled(self, rng: RngLike = None) -> "TimingDataset":
        """A row-shuffled copy."""
        generator = ensure_rng(rng)
        indices = list(range(len(self)))
        generator.shuffle(indices)
        return self.subset(indices)

    # ------------------------------------------------------------------ #
    def merged_with(self, other: "TimingDataset") -> "TimingDataset":
        """Concatenate two datasets with identical feature schemas."""
        if self.feature_names != other.feature_names:
            raise DatasetError("cannot merge datasets with different feature schemas")
        areas = None
        if self.areas is not None and other.areas is not None:
            areas = np.concatenate([self.areas, other.areas])
        return TimingDataset(
            features=np.vstack([self.features, other.features]),
            labels=np.concatenate([self.labels, other.labels]),
            feature_names=list(self.feature_names),
            designs=list(self.designs) + list(other.designs),
            areas=areas,
        )

    def summary(self) -> str:
        """One line per design: sample count and label range."""
        lines = [f"TimingDataset: {len(self)} samples, {self.num_features} features"]
        for name in self.design_names():
            mask = [i for i, d in enumerate(self.designs) if d == name]
            labels = self.labels[mask]
            lines.append(
                f"  {name:<8} n={len(mask):5d} delay[{labels.min():8.1f}, {labels.max():8.1f}] ps"
            )
        return "\n".join(lines)


class FeatureScaler:
    """Standard (z-score) feature scaling fitted on training data only."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        data = np.asarray(features, dtype=np.float64)
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        std[std == 0.0] = 1.0
        self.std_ = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise DatasetError("FeatureScaler.transform called before fit")
        return (np.asarray(features, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
