"""Graph neural network comparison model.

Section III-B of the paper reports that a GNN-based delay predictor is about
2 % worse than the decision-tree model and much more expensive to train,
because per-node AIG features are weak and maximum delay is dominated by a
few long paths that message passing struggles to isolate.  To reproduce that
comparison without a deep-learning framework, this module implements a
*simplified graph convolution* (SGC-style) regressor:

1. per-node features are computed from the AIG (node type, fanout, level,
   inverted-fanin counts),
2. features are propagated ``k`` times over the normalised adjacency matrix
   (parameter-free message passing, as in Wu et al.'s Simple Graph
   Convolution),
3. mean- and max-pooled graph embeddings feed a small MLP regression head
   trained with Adam.

The propagation step is exactly the kind of local averaging the paper argues
is poorly suited to max-delay prediction, so the qualitative result (tree
model wins) carries over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.aig.graph import Aig
from repro.aig.literals import is_complemented, literal_var
from repro.errors import ModelError
from repro.ml.mlp import MlpParams, MlpRegressor
from repro.utils.rng import RngLike


NODE_FEATURE_NAMES = [
    "is_pi",
    "is_and",
    "fanout",
    "level_normalised",
    "num_inverted_fanins",
    "is_po_driver",
]


def node_feature_matrix(aig: Aig) -> np.ndarray:
    """Per-node feature matrix (one row per AIG variable, constant included)."""
    size = aig.size
    levels = aig.levels()
    depth = max(aig.depth(), 1)
    fanouts = aig.fanout_counts()
    po_drivers = {literal_var(lit) for lit in aig.po_literals()}
    features = np.zeros((size, len(NODE_FEATURE_NAMES)), dtype=np.float64)
    for var in range(size):
        is_pi = 1.0 if (var != 0 and aig.is_pi(var)) else 0.0
        is_and = 1.0 if aig.is_and(var) else 0.0
        inverted = 0.0
        if aig.is_and(var):
            f0, f1 = aig.fanins(var)
            inverted = float(is_complemented(f0)) + float(is_complemented(f1))
        features[var] = (
            is_pi,
            is_and,
            float(fanouts[var]),
            levels[var] / depth,
            inverted,
            1.0 if var in po_drivers else 0.0,
        )
    return features


def propagate(aig: Aig, features: np.ndarray, hops: int) -> np.ndarray:
    """Mean-aggregate *features* over the (undirected) AIG adjacency *hops* times."""
    size = aig.size
    edges: List[Tuple[int, int]] = []
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        edges.append((literal_var(f0), var))
        edges.append((literal_var(f1), var))
    if not edges:
        return features.copy()
    sources = np.array([e[0] for e in edges], dtype=np.int64)
    targets = np.array([e[1] for e in edges], dtype=np.int64)
    degree = np.ones(size, dtype=np.float64)  # +1 for the self loop
    np.add.at(degree, sources, 1.0)
    np.add.at(degree, targets, 1.0)
    current = features.copy()
    for _ in range(hops):
        aggregated = current.copy()  # self loop
        np.add.at(aggregated, targets, current[sources])
        np.add.at(aggregated, sources, current[targets])
        current = aggregated / degree[:, None]
    return current


@dataclass
class GnnParams:
    """Hyperparameters of the graph-convolution regressor."""

    hops: int = 3
    hidden_sizes: Tuple[int, ...] = (64, 32)
    learning_rate: float = 1e-3
    epochs: int = 300
    batch_size: int = 64

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ModelError("hops must be at least 1")


class GnnDelayRegressor:
    """SGC-style graph regression: propagate, pool, and regress with an MLP."""

    def __init__(self, params: Optional[GnnParams] = None, rng: RngLike = None) -> None:
        self.params = params or GnnParams()
        self._rng = rng
        self._head: Optional[MlpRegressor] = None

    # ------------------------------------------------------------------ #
    def graph_embedding(self, aig: Aig) -> np.ndarray:
        """Pooled graph-level embedding of one AIG."""
        node_features = node_feature_matrix(aig)
        propagated = propagate(aig, node_features, self.params.hops)
        mean_pool = propagated.mean(axis=0)
        max_pool = propagated.max(axis=0)
        size_scalars = np.array(
            [aig.num_ands, aig.depth(), aig.num_pis, aig.num_pos], dtype=np.float64
        )
        return np.concatenate([mean_pool, max_pool, size_scalars])

    def embed_many(self, aigs: Sequence[Aig]) -> np.ndarray:
        """Embedding matrix for a list of AIGs."""
        if not aigs:
            raise ModelError("need at least one graph")
        return np.vstack([self.graph_embedding(aig) for aig in aigs])

    # ------------------------------------------------------------------ #
    def fit(self, aigs: Sequence[Aig], delays_ps: Sequence[float]) -> "GnnDelayRegressor":
        """Train the readout head on the pooled embeddings."""
        embeddings = self.embed_many(aigs)
        targets = np.asarray(delays_ps, dtype=np.float64)
        if targets.shape[0] != embeddings.shape[0]:
            raise ModelError("one delay label per graph is required")
        head_params = MlpParams(
            hidden_sizes=self.params.hidden_sizes,
            learning_rate=self.params.learning_rate,
            epochs=self.params.epochs,
            batch_size=self.params.batch_size,
        )
        self._head = MlpRegressor(head_params, rng=self._rng)
        self._head.fit(embeddings, targets)
        return self

    def fit_embeddings(
        self, embeddings: np.ndarray, delays_ps: Sequence[float]
    ) -> "GnnDelayRegressor":
        """Train on precomputed embeddings (lets callers cache the propagation)."""
        targets = np.asarray(delays_ps, dtype=np.float64)
        head_params = MlpParams(
            hidden_sizes=self.params.hidden_sizes,
            learning_rate=self.params.learning_rate,
            epochs=self.params.epochs,
            batch_size=self.params.batch_size,
        )
        self._head = MlpRegressor(head_params, rng=self._rng)
        self._head.fit(np.asarray(embeddings, dtype=np.float64), targets)
        return self

    def predict(self, aigs: Sequence[Aig]) -> np.ndarray:
        """Predict post-mapping delay for a list of AIGs."""
        if self._head is None:
            raise ModelError("model used before fitting")
        return self._head.predict(self.embed_many(aigs))

    def predict_embeddings(self, embeddings: np.ndarray) -> np.ndarray:
        """Predict from precomputed embeddings."""
        if self._head is None:
            raise ModelError("model used before fitting")
        return self._head.predict(np.asarray(embeddings, dtype=np.float64))
