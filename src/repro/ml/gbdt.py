"""Gradient-boosted regression trees (from-scratch XGBoost surrogate).

The paper trains an XGBoost regressor with RMSE loss (learning rate 0.01,
max depth 16, 5000 estimators, subsample 0.8).  XGBoost itself is not
available offline, so this module implements the same algorithm family on
top of :mod:`repro.ml.tree`: squared-error gradient boosting with shrinkage,
row subsampling, column subsampling, L2 leaf regularisation, and optional
early stopping on a validation set.

The defaults here are scaled down (300 trees of depth 6) so the full
benchmark harness trains in seconds; the paper's settings can be requested
explicitly via :class:`GbdtParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.ml.tree import RegressionTree, TreeParams
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class GbdtParams:
    """Hyperparameters of the boosted ensemble."""

    n_estimators: int = 300
    learning_rate: float = 0.05
    max_depth: int = 6
    subsample: float = 0.8
    colsample: float = 1.0
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    early_stopping_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ModelError("n_estimators must be at least 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ModelError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ModelError("subsample must be in (0, 1]")

    @classmethod
    def paper_settings(cls) -> "GbdtParams":
        """The hyperparameters quoted in the paper (expensive to train)."""
        return cls(
            n_estimators=5000,
            learning_rate=0.01,
            max_depth=16,
            subsample=0.8,
        )


class GradientBoostingRegressor:
    """Squared-error gradient boosting over regression trees."""

    def __init__(self, params: Optional[GbdtParams] = None, rng: RngLike = None) -> None:
        self.params = params or GbdtParams()
        self._rng = ensure_rng(rng)
        self.trees: List[RegressionTree] = []
        self.base_prediction: float = 0.0
        self.train_rmse_history: List[float] = []
        self.validation_rmse_history: List[float] = []
        self.best_iteration: Optional[int] = None
        self._num_features: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        validation: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "GradientBoostingRegressor":
        """Fit the ensemble; optionally track a validation set for early stopping."""
        data = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if data.ndim != 2 or y.ndim != 1 or data.shape[0] != y.shape[0]:
            raise ModelError("feature/target shape mismatch")
        if data.shape[0] < 2:
            raise ModelError("need at least two samples to fit")
        params = self.params
        self._num_features = data.shape[1]
        self.trees = []
        self.train_rmse_history = []
        self.validation_rmse_history = []
        self.base_prediction = float(np.mean(y))
        predictions = np.full(y.shape, self.base_prediction, dtype=np.float64)

        val_data = val_y = None
        val_predictions = None
        if validation is not None:
            val_data = np.asarray(validation[0], dtype=np.float64)
            val_y = np.asarray(validation[1], dtype=np.float64)
            val_predictions = np.full(val_y.shape, self.base_prediction, dtype=np.float64)

        tree_params = TreeParams(
            max_depth=params.max_depth,
            min_child_weight=params.min_child_weight,
            reg_lambda=params.reg_lambda,
            gamma=params.gamma,
            colsample=params.colsample,
        )
        n_samples = data.shape[0]
        best_val = float("inf")
        rounds_since_best = 0

        for _iteration in range(params.n_estimators):
            gradients = predictions - y
            hessians = np.ones_like(y)
            if params.subsample < 1.0:
                count = max(2, int(round(params.subsample * n_samples)))
                chosen = self._rng.sample(range(n_samples), count)
                sample_idx = np.asarray(chosen, dtype=np.int64)
            else:
                sample_idx = np.arange(n_samples)
            tree = RegressionTree(tree_params, rng=self._rng)
            tree.fit_gradients(
                data[sample_idx], gradients[sample_idx], hessians[sample_idx]
            )
            update = tree.predict(data)
            predictions += params.learning_rate * update
            self.trees.append(tree)
            self.train_rmse_history.append(float(np.sqrt(np.mean((predictions - y) ** 2))))

            if val_data is not None:
                val_predictions += params.learning_rate * tree.predict(val_data)
                val_rmse = float(np.sqrt(np.mean((val_predictions - val_y) ** 2)))
                self.validation_rmse_history.append(val_rmse)
                if val_rmse < best_val - 1e-12:
                    best_val = val_rmse
                    self.best_iteration = len(self.trees)
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if (
                        params.early_stopping_rounds is not None
                        and rounds_since_best >= params.early_stopping_rounds
                    ):
                        break
        if self.best_iteration is None:
            self.best_iteration = len(self.trees)
        return self

    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray, num_trees: Optional[int] = None) -> np.ndarray:
        """Predict delays; *num_trees* truncates the ensemble (early stopping)."""
        if not self.trees:
            raise ModelError("model used before fitting")
        data = np.asarray(features, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        if self._num_features is not None and data.shape[1] != self._num_features:
            raise ModelError(
                f"expected {self._num_features} features, got {data.shape[1]}"
            )
        limit = len(self.trees) if num_trees is None else min(num_trees, len(self.trees))
        out = np.full(data.shape[0], self.base_prediction, dtype=np.float64)
        for tree in self.trees[:limit]:
            out += self.params.learning_rate * tree.predict(data)
        return out

    def predict_one(self, feature_vector: np.ndarray) -> float:
        """Scalar prediction for a single feature vector (SA inner loop)."""
        return float(self.predict(np.asarray(feature_vector).reshape(1, -1))[0])

    def feature_importance(self) -> np.ndarray:
        """Aggregated split-count importance across the ensemble."""
        if self._num_features is None:
            raise ModelError("model used before fitting")
        importance = np.zeros(self._num_features, dtype=np.float64)
        for tree in self.trees:
            importance += tree.feature_importance(self._num_features)
        total = importance.sum()
        return importance / total if total > 0 else importance

    @property
    def num_trees(self) -> int:
        """Number of fitted trees."""
        return len(self.trees)
