"""Random-forest regressor (bagging baseline for the model ablation)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ModelError
from repro.ml.tree import RegressionTree, TreeParams
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class ForestParams:
    """Hyperparameters of the random forest."""

    n_estimators: int = 100
    max_depth: int = 10
    colsample: float = 0.7
    bootstrap: bool = True
    min_child_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ModelError("n_estimators must be at least 1")


class RandomForestRegressor:
    """Bagged regression trees with column subsampling."""

    def __init__(self, params: Optional[ForestParams] = None, rng: RngLike = None) -> None:
        self.params = params or ForestParams()
        self._rng = ensure_rng(rng)
        self.trees: List[RegressionTree] = []
        self._num_features: Optional[int] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        """Fit the forest with bootstrap resampling."""
        data = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] != y.shape[0]:
            raise ModelError("feature/target shape mismatch")
        self._num_features = data.shape[1]
        n_samples = data.shape[0]
        tree_params = TreeParams(
            max_depth=self.params.max_depth,
            colsample=self.params.colsample,
            min_child_weight=self.params.min_child_weight,
        )
        self.trees = []
        for _ in range(self.params.n_estimators):
            if self.params.bootstrap:
                idx = np.asarray(
                    [self._rng.randrange(n_samples) for _ in range(n_samples)],
                    dtype=np.int64,
                )
            else:
                idx = np.arange(n_samples)
            tree = RegressionTree(tree_params, rng=self._rng)
            tree.fit(data[idx], y[idx])
            self.trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Average prediction over all trees."""
        if not self.trees:
            raise ModelError("model used before fitting")
        data = np.asarray(features, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        total = np.zeros(data.shape[0], dtype=np.float64)
        for tree in self.trees:
            total += tree.predict(data)
        return total / len(self.trees)
