"""Feature-importance analysis for the delay/area predictors.

Two complementary views are provided:

* **Model-internal importance** for the tree ensembles: how often a feature
  is chosen for a split ("count") and how much loss reduction its splits
  contribute ("gain", the XGBoost default).
* **Permutation importance** for any fitted model: how much a chosen error
  metric degrades when one feature column is shuffled, which measures what
  the model actually relies on at prediction time.

The feature-ablation benchmark uses these to explain *why* the Table II
feature groups matter, complementing the retrain-without-group ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.metrics import rmse
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class FeatureImportance:
    """Importance scores for one feature."""

    name: str
    score: float


@dataclass
class ImportanceReport:
    """Ranked feature importances."""

    entries: List[FeatureImportance]
    kind: str

    def ranked(self) -> List[FeatureImportance]:
        """Entries sorted by decreasing score."""
        return sorted(self.entries, key=lambda entry: entry.score, reverse=True)

    def scores(self) -> np.ndarray:
        """Scores in feature order."""
        return np.array([entry.score for entry in self.entries], dtype=np.float64)

    def top(self, count: int) -> List[str]:
        """Names of the *count* most important features."""
        return [entry.name for entry in self.ranked()[:count]]

    def format_table(self) -> str:
        """Human-readable ranking."""
        lines = [f"feature importance ({self.kind})"]
        width = max((len(entry.name) for entry in self.entries), default=10)
        for entry in self.ranked():
            lines.append(f"  {entry.name:<{width}}  {entry.score:10.4f}")
        return "\n".join(lines)


def _feature_names(num_features: int, names: Optional[Sequence[str]]) -> List[str]:
    if names is None:
        return [f"f{i}" for i in range(num_features)]
    if len(names) != num_features:
        raise ModelError(
            f"{len(names)} feature names supplied for {num_features} features"
        )
    return list(names)


def ensemble_importance(
    model,
    num_features: int,
    feature_names: Optional[Sequence[str]] = None,
    kind: str = "gain",
    normalize: bool = True,
) -> ImportanceReport:
    """Model-internal importance of a tree ensemble (GBDT or random forest).

    Parameters
    ----------
    kind:
        ``"gain"`` sums the loss reduction of every split on the feature;
        ``"count"`` counts how many splits use the feature.
    """
    if kind not in ("gain", "count"):
        raise ModelError(f"kind must be 'gain' or 'count', got {kind!r}")
    if not isinstance(model, (GradientBoostingRegressor, RandomForestRegressor)):
        raise ModelError(
            "ensemble_importance supports GradientBoostingRegressor and "
            f"RandomForestRegressor, got {type(model).__name__}"
        )
    if not model.trees:
        raise ModelError("model must be fitted before computing importance")
    totals = np.zeros(num_features, dtype=np.float64)
    for tree in model.trees:
        if kind == "gain":
            totals += tree.gain_importance(num_features)
        else:
            totals += tree.feature_importance(num_features)
    if normalize and totals.sum() > 0:
        totals = totals / totals.sum()
    names = _feature_names(num_features, feature_names)
    entries = [FeatureImportance(name, float(score)) for name, score in zip(names, totals)]
    return ImportanceReport(entries=entries, kind=kind)


def permutation_importance(
    model,
    features: np.ndarray,
    targets: np.ndarray,
    feature_names: Optional[Sequence[str]] = None,
    metric: Callable[[np.ndarray, np.ndarray], float] = rmse,
    n_repeats: int = 5,
    rng: RngLike = None,
) -> ImportanceReport:
    """Metric degradation when each feature column is shuffled.

    The score of a feature is ``mean(metric_shuffled) - metric_baseline``:
    positive values mean the model relies on the feature, values near zero
    mean it is ignored.  Works for any model exposing ``predict``.
    """
    if n_repeats < 1:
        raise ModelError("n_repeats must be at least 1")
    data = np.asarray(features, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] != y.shape[0]:
        raise ModelError("feature/target shape mismatch")
    if data.shape[0] < 2:
        raise ModelError("permutation importance needs at least two samples")
    generator = ensure_rng(rng)
    baseline = float(metric(y, model.predict(data)))
    num_features = data.shape[1]
    scores = np.zeros(num_features, dtype=np.float64)
    for feature in range(num_features):
        degradations = []
        for _ in range(n_repeats):
            shuffled = data.copy()
            order = list(range(data.shape[0]))
            generator.shuffle(order)
            shuffled[:, feature] = data[order, feature]
            degradations.append(float(metric(y, model.predict(shuffled))) - baseline)
        scores[feature] = float(np.mean(degradations))
    names = _feature_names(num_features, feature_names)
    entries = [FeatureImportance(name, float(score)) for name, score in zip(names, scores)]
    return ImportanceReport(entries=entries, kind="permutation")


def group_importance(
    report: ImportanceReport, groups: dict
) -> List[FeatureImportance]:
    """Aggregate a per-feature report into named feature groups.

    *groups* maps group name -> list of feature names; features not listed in
    any group are ignored.  Useful for summarising the Table II feature
    categories (depth / fanout / path-count).
    """
    by_name = {entry.name: entry.score for entry in report.entries}
    aggregated = []
    for group_name, members in groups.items():
        unknown = [name for name in members if name not in by_name]
        if unknown:
            raise ModelError(f"group {group_name!r} references unknown features {unknown}")
        aggregated.append(
            FeatureImportance(group_name, float(sum(by_name[name] for name in members)))
        )
    return sorted(aggregated, key=lambda entry: entry.score, reverse=True)
