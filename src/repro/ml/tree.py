"""Regression trees with second-order (XGBoost-style) split scoring.

The tree works on per-sample gradients/hessians rather than raw targets,
which lets the same code serve both the standalone decision-tree regressor
and the gradient-boosting ensemble.  For squared-error loss the gradient is
``prediction - target`` and the hessian is 1, so leaf values reduce to the
regularised mean residual.

Splits are found with the exact greedy algorithm: for every candidate
feature the samples are sorted and the gain

    0.5 * (GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)) - gamma

is evaluated at every boundary between distinct feature values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class TreeNode:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    value: float = 0.0
    #: loss reduction achieved by this split (0 for leaves); feeds the
    #: gain-based feature importance used in the feature-ablation study.
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def node_count(self) -> int:
        """Number of nodes in the subtree rooted here."""
        if self.is_leaf:
            return 1
        return 1 + self.left.node_count() + self.right.node_count()

    def depth(self) -> int:
        """Depth of the subtree rooted here (a single leaf has depth 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())


@dataclass
class TreeParams:
    """Hyperparameters shared by trees and boosted ensembles."""

    max_depth: int = 6
    min_child_weight: float = 1.0
    min_samples_split: int = 2
    reg_lambda: float = 1.0
    gamma: float = 0.0
    colsample: float = 1.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ModelError("max_depth must be at least 1")
        if not 0.0 < self.colsample <= 1.0:
            raise ModelError("colsample must be in (0, 1]")
        if self.min_child_weight < 0:
            raise ModelError("min_child_weight must be non-negative")


class RegressionTree:
    """A single gradient/hessian regression tree."""

    def __init__(self, params: Optional[TreeParams] = None, rng: RngLike = None) -> None:
        self.params = params or TreeParams()
        self._rng = ensure_rng(rng)
        self.root: Optional[TreeNode] = None

    # ------------------------------------------------------------------ #
    def fit_gradients(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
    ) -> "RegressionTree":
        """Fit the tree to minimise the second-order loss approximation."""
        data = np.asarray(features, dtype=np.float64)
        grad = np.asarray(gradients, dtype=np.float64)
        hess = np.asarray(hessians, dtype=np.float64)
        if data.ndim != 2 or grad.ndim != 1 or data.shape[0] != grad.shape[0]:
            raise ModelError("feature/gradient shape mismatch")
        indices = np.arange(data.shape[0])
        self.root = self._build(data, grad, hess, indices, depth=0)
        return self

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        """Fit directly to targets with squared-error loss (standalone use)."""
        targets = np.asarray(targets, dtype=np.float64)
        gradients = -targets  # prediction starts at 0, g = pred - y
        hessians = np.ones_like(targets)
        return self.fit_gradients(features, gradients, hessians)

    # ------------------------------------------------------------------ #
    def _leaf_value(self, grad_sum: float, hess_sum: float) -> float:
        return -grad_sum / (hess_sum + self.params.reg_lambda)

    def _build(
        self,
        data: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> TreeNode:
        grad_sum = float(grad[indices].sum())
        hess_sum = float(hess[indices].sum())
        leaf = TreeNode(value=self._leaf_value(grad_sum, hess_sum))
        if depth >= self.params.max_depth or len(indices) < self.params.min_samples_split:
            return leaf
        split = self._best_split(data, grad, hess, indices, grad_sum, hess_sum)
        if split is None:
            return leaf
        feature, threshold, left_idx, right_idx, gain = split
        node = TreeNode(feature=feature, threshold=threshold, gain=gain)
        node.left = self._build(data, grad, hess, left_idx, depth + 1)
        node.right = self._build(data, grad, hess, right_idx, depth + 1)
        node.value = leaf.value
        return node

    def _candidate_features(self, num_features: int) -> Sequence[int]:
        if self.params.colsample >= 1.0:
            return range(num_features)
        count = max(1, int(round(self.params.colsample * num_features)))
        return self._rng.sample(range(num_features), count)

    def _best_split(
        self,
        data: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
        grad_sum: float,
        hess_sum: float,
    ):
        params = self.params
        parent_score = grad_sum * grad_sum / (hess_sum + params.reg_lambda)
        best_gain = 0.0
        best = None
        for feature in self._candidate_features(data.shape[1]):
            values = data[indices, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_values = values[order]
            sorted_idx = indices[order]
            g = grad[sorted_idx]
            h = hess[sorted_idx]
            g_prefix = np.cumsum(g)
            h_prefix = np.cumsum(h)
            # Valid split positions: between distinct consecutive values.
            distinct = sorted_values[:-1] != sorted_values[1:]
            if not np.any(distinct):
                continue
            positions = np.nonzero(distinct)[0]
            gl = g_prefix[positions]
            hl = h_prefix[positions]
            gr = grad_sum - gl
            hr = hess_sum - hl
            valid = (hl >= params.min_child_weight) & (hr >= params.min_child_weight)
            if not np.any(valid):
                continue
            gains = 0.5 * (
                gl**2 / (hl + params.reg_lambda)
                + gr**2 / (hr + params.reg_lambda)
                - parent_score
            ) - params.gamma
            gains = np.where(valid, gains, -np.inf)
            best_pos = int(np.argmax(gains))
            if gains[best_pos] > best_gain:
                position = positions[best_pos]
                threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
                left_idx = sorted_idx[: position + 1]
                right_idx = sorted_idx[position + 1 :]
                best_gain = float(gains[best_pos])
                best = (int(feature), float(threshold), left_idx, right_idx, best_gain)
        return best

    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict one value per row of *features*."""
        if self.root is None:
            raise ModelError("tree used before fitting")
        data = np.asarray(features, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        out = np.empty(data.shape[0], dtype=np.float64)
        for i, row in enumerate(data):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def feature_importance(self, num_features: int) -> np.ndarray:
        """Split-count importance per feature."""
        importance = np.zeros(num_features, dtype=np.float64)
        if self.root is None:
            return importance

        def visit(node: TreeNode) -> None:
            if node.is_leaf:
                return
            importance[node.feature] += 1.0
            visit(node.left)
            visit(node.right)

        visit(self.root)
        return importance

    def gain_importance(self, num_features: int) -> np.ndarray:
        """Total split gain per feature (XGBoost's "gain" importance)."""
        importance = np.zeros(num_features, dtype=np.float64)
        if self.root is None:
            return importance

        def visit(node: TreeNode) -> None:
            if node.is_leaf:
                return
            importance[node.feature] += max(node.gain, 0.0)
            visit(node.left)
            visit(node.right)

        visit(self.root)
        return importance

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return 0 if self.root is None else self.root.node_count()
