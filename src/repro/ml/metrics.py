"""Regression metrics used throughout the evaluation (Table III, Fig. 1).

The paper reports the mean, maximum, and standard deviation of the absolute
percentage error between predicted and ground-truth post-mapping delay, plus
the Pearson correlation coefficient for the proxy-metric study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import ModelError


def _as_arrays(y_true: Sequence[float], y_pred: Sequence[float]):
    true = np.asarray(y_true, dtype=np.float64)
    pred = np.asarray(y_pred, dtype=np.float64)
    if true.shape != pred.shape:
        raise ModelError(f"shape mismatch: {true.shape} vs {pred.shape}")
    if true.size == 0:
        raise ModelError("metrics need at least one sample")
    return true, pred


def rmse(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Root mean squared error."""
    true, pred = _as_arrays(y_true, y_pred)
    return float(np.sqrt(np.mean((true - pred) ** 2)))


def mae(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Mean absolute error."""
    true, pred = _as_arrays(y_true, y_pred)
    return float(np.mean(np.abs(true - pred)))


def r2_score(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Coefficient of determination."""
    true, pred = _as_arrays(y_true, y_pred)
    ss_res = float(np.sum((true - pred) ** 2))
    ss_tot = float(np.sum((true - np.mean(true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient between two series."""
    a, b = _as_arrays(x, y)
    std_a = float(np.std(a))
    std_b = float(np.std(b))
    if std_a == 0.0 or std_b == 0.0:
        return 0.0
    return float(np.mean((a - np.mean(a)) * (b - np.mean(b))) / (std_a * std_b))


def absolute_percentage_errors(
    y_true: Sequence[float], y_pred: Sequence[float]
) -> np.ndarray:
    """Per-sample absolute percentage errors (in percent)."""
    true, pred = _as_arrays(y_true, y_pred)
    if np.any(true == 0.0):
        raise ModelError("percentage error undefined for zero ground-truth values")
    return np.abs(true - pred) / np.abs(true) * 100.0


@dataclass(frozen=True)
class PercentErrorStats:
    """Mean / max / std of the absolute percentage error (Table III columns)."""

    mean: float
    max: float
    std: float
    count: int

    def as_dict(self) -> Dict[str, float]:
        return {"mean": self.mean, "max": self.max, "std": self.std, "count": self.count}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"mean={self.mean:.2f}% max={self.max:.2f}% std={self.std:.2f}%"


def percent_error_stats(
    y_true: Sequence[float], y_pred: Sequence[float]
) -> PercentErrorStats:
    """The paper's Table III error summary for one design."""
    errors = absolute_percentage_errors(y_true, y_pred)
    return PercentErrorStats(
        mean=float(np.mean(errors)),
        max=float(np.max(errors)),
        std=float(np.std(errors)),
        count=int(errors.size),
    )
