"""k-nearest-neighbour regression baseline.

A deliberately simple instance-based model: predictions are the
(optionally distance-weighted) mean of the labels of the *k* training
samples closest in z-scored feature space.  It serves as an additional
baseline in the model-choice ablation — the paper only compares its boosted
trees against a GNN, but a nearest-neighbour predictor is a natural sanity
check for "are the Table II features informative at all?", because it uses
no learned structure beyond the feature geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.ml.dataset import FeatureScaler


@dataclass
class KnnParams:
    """Hyperparameters of the k-NN regressor."""

    n_neighbors: int = 5
    weights: str = "distance"
    scale_features: bool = True

    def __post_init__(self) -> None:
        if self.n_neighbors < 1:
            raise ModelError("n_neighbors must be at least 1")
        if self.weights not in ("uniform", "distance"):
            raise ModelError(f"weights must be 'uniform' or 'distance', got {self.weights!r}")


class KnnRegressor:
    """Distance-weighted k-nearest-neighbour regression."""

    def __init__(self, params: Optional[KnnParams] = None) -> None:
        self.params = params or KnnParams()
        self._features: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        self._scaler: Optional[FeatureScaler] = None

    # ------------------------------------------------------------------ #
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "KnnRegressor":
        """Memorise the training set (and fit the feature scaler)."""
        data = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if data.ndim != 2:
            raise ModelError("features must be a 2-D matrix")
        if y.ndim != 1 or y.shape[0] != data.shape[0]:
            raise ModelError("feature/target shape mismatch")
        if data.shape[0] == 0:
            raise ModelError("cannot fit on an empty dataset")
        if self.params.scale_features:
            self._scaler = FeatureScaler().fit(data)
            data = self._scaler.transform(data)
        else:
            self._scaler = None
        self._features = data
        self._targets = y
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict one value per row of *features*."""
        if self._features is None or self._targets is None:
            raise ModelError("KnnRegressor used before fitting")
        data = np.asarray(features, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        if data.shape[1] != self._features.shape[1]:
            raise ModelError(
                f"expected {self._features.shape[1]} features, got {data.shape[1]}"
            )
        if self._scaler is not None:
            data = self._scaler.transform(data)
        k = min(self.params.n_neighbors, self._features.shape[0])
        predictions = np.empty(data.shape[0], dtype=np.float64)
        for row_index, row in enumerate(data):
            distances = np.sqrt(np.sum((self._features - row) ** 2, axis=1))
            neighbor_idx = np.argpartition(distances, k - 1)[:k]
            neighbor_targets = self._targets[neighbor_idx]
            if self.params.weights == "uniform":
                predictions[row_index] = float(neighbor_targets.mean())
                continue
            neighbor_distances = distances[neighbor_idx]
            if np.any(neighbor_distances == 0.0):
                exact = neighbor_targets[neighbor_distances == 0.0]
                predictions[row_index] = float(exact.mean())
            else:
                weights = 1.0 / neighbor_distances
                predictions[row_index] = float(
                    np.sum(weights * neighbor_targets) / np.sum(weights)
                )
        return predictions

    @property
    def num_training_samples(self) -> int:
        """Number of memorised training samples (0 before fitting)."""
        return 0 if self._features is None else int(self._features.shape[0])
