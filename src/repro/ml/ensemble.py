"""Model averaging: combine several fitted delay/area predictors.

A cheap, robust way to squeeze a little more accuracy out of the predictors
without touching their training code: average the predictions of models
trained with different seeds or different families (GBDT + forest + k-NN).
Weights can be uniform or fitted on a held-out validation set by non-negative
least squares via projected gradient descent, which keeps the ensemble
interpretable (a convex combination of its members).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ModelError


class AveragingEnsemble:
    """A (weighted) average of already-fitted regression models."""

    def __init__(self, models: Sequence[object], weights: Optional[Sequence[float]] = None) -> None:
        if not models:
            raise ModelError("an ensemble needs at least one model")
        for model in models:
            if not hasattr(model, "predict"):
                raise ModelError(f"{type(model).__name__} has no predict method")
        self.models: List[object] = list(models)
        if weights is None:
            self.weights = np.full(len(self.models), 1.0 / len(self.models))
        else:
            self.weights = self._validate_weights(weights)

    # ------------------------------------------------------------------ #
    def _validate_weights(self, weights: Sequence[float]) -> np.ndarray:
        values = np.asarray(list(weights), dtype=np.float64)
        if values.shape != (len(self.models),):
            raise ModelError(
                f"expected {len(self.models)} weights, got {values.shape}"
            )
        if np.any(values < 0):
            raise ModelError("ensemble weights must be non-negative")
        total = float(values.sum())
        if total <= 0:
            raise ModelError("ensemble weights must not all be zero")
        return values / total

    def _member_predictions(self, features: np.ndarray) -> np.ndarray:
        """Stack member predictions as rows of a (models x samples) matrix."""
        predictions = [
            np.asarray(model.predict(features), dtype=np.float64).reshape(-1)
            for model in self.models
        ]
        lengths = {p.shape[0] for p in predictions}
        if len(lengths) != 1:
            raise ModelError("ensemble members disagree on the number of predictions")
        return np.vstack(predictions)

    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Weighted average of the member predictions."""
        stacked = self._member_predictions(np.asarray(features, dtype=np.float64))
        return self.weights @ stacked

    def fit_weights(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        iterations: int = 500,
        learning_rate: float = 0.05,
    ) -> "AveragingEnsemble":
        """Fit convex combination weights on a validation set.

        Minimises the squared error of the weighted average under the
        constraints ``w >= 0`` and ``sum(w) == 1`` with projected gradient
        descent; with a single member this is a no-op.
        """
        if iterations < 1:
            raise ModelError("iterations must be at least 1")
        y = np.asarray(targets, dtype=np.float64).reshape(-1)
        stacked = self._member_predictions(np.asarray(features, dtype=np.float64))
        if stacked.shape[1] != y.shape[0]:
            raise ModelError("feature/target shape mismatch")
        if len(self.models) == 1:
            self.weights = np.array([1.0])
            return self

        weights = np.full(len(self.models), 1.0 / len(self.models))
        scale = max(float(np.mean(stacked**2)), 1e-12)
        for _ in range(iterations):
            residual = weights @ stacked - y
            gradient = stacked @ residual / y.shape[0]
            weights = weights - learning_rate * gradient / scale
            weights = self._project_to_simplex(weights)
        self.weights = weights
        return self

    @staticmethod
    def _project_to_simplex(values: np.ndarray) -> np.ndarray:
        """Euclidean projection onto the probability simplex."""
        sorted_values = np.sort(values)[::-1]
        cumulative = np.cumsum(sorted_values) - 1.0
        indices = np.arange(1, values.shape[0] + 1)
        candidates = sorted_values - cumulative / indices
        rho = int(np.max(np.nonzero(candidates > 0)[0])) if np.any(candidates > 0) else 0
        theta = cumulative[rho] / (rho + 1)
        return np.maximum(values - theta, 0.0)

    def __len__(self) -> int:
        return len(self.models)
