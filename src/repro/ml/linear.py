"""Ridge linear regression baseline.

A linear model over the Table II features gives a useful lower bound in the
model ablation: if the boosted trees could not beat it, the features rather
than the model would be the bottleneck.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError


class RidgeRegressor:
    """Linear least squares with L2 regularisation on standardized features."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ModelError("alpha must be non-negative")
        self.alpha = alpha
        self.weights_: Optional[np.ndarray] = None
        self.bias_: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegressor":
        """Fit the closed-form ridge solution."""
        data = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] != y.shape[0]:
            raise ModelError("feature/target shape mismatch")
        self._mean = data.mean(axis=0)
        std = data.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        scaled = (data - self._mean) / self._std
        y_mean = float(np.mean(y))
        centered_y = y - y_mean
        gram = scaled.T @ scaled + self.alpha * np.eye(scaled.shape[1])
        self.weights_ = np.linalg.solve(gram, scaled.T @ centered_y)
        self.bias_ = y_mean
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for the given feature matrix."""
        if self.weights_ is None:
            raise ModelError("model used before fitting")
        data = np.asarray(features, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        scaled = (data - self._mean) / self._std
        return scaled @ self.weights_ + self.bias_
