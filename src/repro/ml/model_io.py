"""JSON persistence for the boosted-tree delay predictor.

The optimization flow trains a model once per design family and then reuses
it across many SA runs; persisting the ensemble lets the examples and
benchmarks cache trained models on disk instead of retraining.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ModelError
from repro.ml.gbdt import GbdtParams, GradientBoostingRegressor
from repro.ml.tree import RegressionTree, TreeNode, TreeParams

PathLike = Union[str, Path]


def _node_to_dict(node: TreeNode) -> Dict:
    if node.is_leaf:
        return {"value": node.value}
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "value": node.value,
        "gain": node.gain,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(data: Dict) -> TreeNode:
    if "feature" not in data:
        return TreeNode(value=float(data["value"]))
    return TreeNode(
        feature=int(data["feature"]),
        threshold=float(data["threshold"]),
        value=float(data.get("value", 0.0)),
        gain=float(data.get("gain", 0.0)),
        left=_node_from_dict(data["left"]),
        right=_node_from_dict(data["right"]),
    )


def gbdt_to_dict(model: GradientBoostingRegressor) -> Dict:
    """Serialise a fitted GBDT to plain JSON-compatible data."""
    if not model.trees:
        raise ModelError("cannot serialise an unfitted model")
    params = model.params
    return {
        "format": "repro-gbdt-v1",
        "params": {
            "n_estimators": params.n_estimators,
            "learning_rate": params.learning_rate,
            "max_depth": params.max_depth,
            "subsample": params.subsample,
            "colsample": params.colsample,
            "min_child_weight": params.min_child_weight,
            "reg_lambda": params.reg_lambda,
            "gamma": params.gamma,
        },
        "base_prediction": model.base_prediction,
        "num_features": model._num_features,
        "trees": [_node_to_dict(tree.root) for tree in model.trees],
    }


def gbdt_from_dict(data: Dict) -> GradientBoostingRegressor:
    """Rebuild a GBDT from :func:`gbdt_to_dict` output."""
    if data.get("format") != "repro-gbdt-v1":
        raise ModelError(f"unsupported model format: {data.get('format')!r}")
    params = GbdtParams(**data["params"])
    model = GradientBoostingRegressor(params)
    model.base_prediction = float(data["base_prediction"])
    model._num_features = data.get("num_features")
    tree_params = TreeParams(max_depth=params.max_depth, reg_lambda=params.reg_lambda)
    model.trees = []
    for tree_data in data["trees"]:
        tree = RegressionTree(tree_params)
        tree.root = _node_from_dict(tree_data)
        model.trees.append(tree)
    model.best_iteration = len(model.trees)
    return model


def save_gbdt(model: GradientBoostingRegressor, path: PathLike) -> None:
    """Write a fitted GBDT to a JSON file."""
    Path(path).write_text(json.dumps(gbdt_to_dict(model)), encoding="utf-8")


def load_gbdt(path: PathLike) -> GradientBoostingRegressor:
    """Load a GBDT previously written by :func:`save_gbdt`."""
    return gbdt_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
