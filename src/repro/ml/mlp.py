"""A small fully-connected regression network trained with Adam.

Used standalone as an additional tabular baseline and as the readout head of
the graph neural network in :mod:`repro.ml.gnn`.  Implemented directly in
numpy (forward and backward passes written out) because no deep-learning
framework is available offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class MlpParams:
    """Hyperparameters of the MLP regressor."""

    hidden_sizes: Tuple[int, ...] = (64, 32)
    learning_rate: float = 1e-3
    epochs: int = 300
    batch_size: int = 64
    weight_decay: float = 1e-5

    def __post_init__(self) -> None:
        if not self.hidden_sizes:
            raise ModelError("MLP needs at least one hidden layer")
        if self.epochs < 1:
            raise ModelError("epochs must be at least 1")


class AdamState:
    """Adam moment estimates for one parameter tensor."""

    def __init__(self, shape: Tuple[int, ...]) -> None:
        self.m = np.zeros(shape, dtype=np.float64)
        self.v = np.zeros(shape, dtype=np.float64)

    def update(
        self,
        parameter: np.ndarray,
        gradient: np.ndarray,
        learning_rate: float,
        step: int,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.m = beta1 * self.m + (1 - beta1) * gradient
        self.v = beta2 * self.v + (1 - beta2) * gradient * gradient
        m_hat = self.m / (1 - beta1**step)
        v_hat = self.v / (1 - beta2**step)
        parameter -= learning_rate * m_hat / (np.sqrt(v_hat) + eps)


class MlpRegressor:
    """Feed-forward network with ReLU activations and MSE loss."""

    def __init__(self, params: Optional[MlpParams] = None, rng: RngLike = None) -> None:
        self.params = params or MlpParams()
        self._rng = ensure_rng(rng)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        self._adam: List[Tuple[AdamState, AdamState]] = []
        self._step = 0
        self._input_mean: Optional[np.ndarray] = None
        self._input_std: Optional[np.ndarray] = None
        self._target_mean = 0.0
        self._target_std = 1.0
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------ #
    def _init_parameters(self, num_features: int) -> None:
        sizes = [num_features, *self.params.hidden_sizes, 1]
        np_rng = np.random.default_rng(self._rng.getrandbits(32))
        self.weights = []
        self.biases = []
        self._adam = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(np_rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out, dtype=np.float64))
            self._adam.append(
                (AdamState((fan_in, fan_out)), AdamState((fan_out,)))
            )
        self._step = 0

    def _forward(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        activations = [x]
        current = x
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = current @ w + b
            if layer < len(self.weights) - 1:
                current = np.maximum(z, 0.0)
            else:
                current = z
            activations.append(current)
        return current[:, 0], activations

    def _backward(
        self, activations: List[np.ndarray], error: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        gradients: List[Tuple[np.ndarray, np.ndarray]] = [None] * len(self.weights)
        delta = error.reshape(-1, 1)
        for layer in reversed(range(len(self.weights))):
            inputs = activations[layer]
            grad_w = inputs.T @ delta / delta.shape[0]
            grad_b = delta.mean(axis=0)
            grad_w += self.params.weight_decay * self.weights[layer]
            gradients[layer] = (grad_w, grad_b)
            if layer > 0:
                delta = delta @ self.weights[layer].T
                delta = delta * (activations[layer] > 0.0)
        return gradients

    # ------------------------------------------------------------------ #
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MlpRegressor":
        """Train the network on standardized inputs and targets."""
        data = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] != y.shape[0]:
            raise ModelError("feature/target shape mismatch")
        self._input_mean = data.mean(axis=0)
        std = data.std(axis=0)
        std[std == 0.0] = 1.0
        self._input_std = std
        self._target_mean = float(y.mean())
        self._target_std = float(y.std()) or 1.0
        x = (data - self._input_mean) / self._input_std
        t = (y - self._target_mean) / self._target_std
        self._init_parameters(x.shape[1])
        self.loss_history = []

        n_samples = x.shape[0]
        batch = min(self.params.batch_size, n_samples)
        for _epoch in range(self.params.epochs):
            order = list(range(n_samples))
            self._rng.shuffle(order)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n_samples, batch):
                idx = order[start : start + batch]
                xb, tb = x[idx], t[idx]
                pred, activations = self._forward(xb)
                error = pred - tb
                epoch_loss += float(np.mean(error**2))
                batches += 1
                gradients = self._backward(activations, error)
                self._step += 1
                for layer, (grad_w, grad_b) in enumerate(gradients):
                    w_state, b_state = self._adam[layer]
                    w_state.update(
                        self.weights[layer], grad_w, self.params.learning_rate, self._step
                    )
                    b_state.update(
                        self.biases[layer], grad_b, self.params.learning_rate, self._step
                    )
            self.loss_history.append(epoch_loss / max(batches, 1))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets in original units."""
        if not self.weights:
            raise ModelError("model used before fitting")
        data = np.asarray(features, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        x = (data - self._input_mean) / self._input_std
        pred, _ = self._forward(x)
        return pred * self._target_std + self._target_mean
