"""Hyperparameter tuning: k-fold cross-validation and grid search.

The paper selects its XGBoost hyperparameters by grid search; this module
provides the equivalent machinery for the from-scratch models.  It is model
agnostic: a *factory* callable turns a parameter dictionary into a fresh
unfitted model exposing ``fit``/``predict``, so the same grid-search driver
tunes the GBDT, the random forest, the MLP, or the k-NN baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.ml.gbdt import GbdtParams, GradientBoostingRegressor
from repro.ml.metrics import rmse
from repro.utils.rng import RngLike, ensure_rng

ModelFactory = Callable[[Dict[str, object]], object]
Metric = Callable[[np.ndarray, np.ndarray], float]


# --------------------------------------------------------------------------- #
# Cross-validation
# --------------------------------------------------------------------------- #
def kfold_indices(
    num_samples: int, k: int, rng: RngLike = None, shuffle: bool = True
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split ``range(num_samples)`` into *k* (train, validation) index pairs."""
    if k < 2:
        raise ModelError("k-fold cross-validation needs k >= 2")
    if num_samples < k:
        raise ModelError(f"cannot split {num_samples} samples into {k} folds")
    order = np.arange(num_samples)
    if shuffle:
        generator = ensure_rng(rng)
        permuted = list(range(num_samples))
        generator.shuffle(permuted)
        order = np.asarray(permuted, dtype=np.int64)
    folds = np.array_split(order, k)
    splits: List[Tuple[np.ndarray, np.ndarray]] = []
    for index in range(k):
        validation = folds[index]
        train = np.concatenate([folds[j] for j in range(k) if j != index])
        splits.append((train, validation))
    return splits


@dataclass
class CrossValidationResult:
    """Per-fold and aggregate scores of one model configuration."""

    fold_scores: List[float]
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def mean_score(self) -> float:
        return float(np.mean(self.fold_scores))

    @property
    def std_score(self) -> float:
        return float(np.std(self.fold_scores))

    @property
    def num_folds(self) -> int:
        return len(self.fold_scores)


def cross_validate(
    factory: ModelFactory,
    features: np.ndarray,
    targets: np.ndarray,
    params: Optional[Dict[str, object]] = None,
    k: int = 5,
    metric: Metric = rmse,
    rng: RngLike = None,
) -> CrossValidationResult:
    """Score ``factory(params)`` with k-fold cross-validation (lower = better)."""
    data = np.asarray(features, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] != y.shape[0]:
        raise ModelError("feature/target shape mismatch")
    params = dict(params or {})
    scores: List[float] = []
    for train_idx, val_idx in kfold_indices(data.shape[0], k, rng=rng):
        model = factory(params)
        model.fit(data[train_idx], y[train_idx])
        predictions = np.asarray(model.predict(data[val_idx]), dtype=np.float64)
        scores.append(float(metric(y[val_idx], predictions)))
    return CrossValidationResult(fold_scores=scores, params=params)


# --------------------------------------------------------------------------- #
# Grid search
# --------------------------------------------------------------------------- #
def expand_grid(grid: Dict[str, Sequence[object]]) -> List[Dict[str, object]]:
    """All parameter combinations of a ``name -> candidate values`` grid."""
    if not grid:
        raise ModelError("parameter grid must not be empty")
    names = list(grid)
    for name in names:
        if not grid[name]:
            raise ModelError(f"parameter {name!r} has no candidate values")
    combinations = []
    for values in product(*(grid[name] for name in names)):
        combinations.append(dict(zip(names, values)))
    return combinations


@dataclass
class GridSearchResult:
    """Every evaluated configuration plus the winner."""

    results: List[CrossValidationResult]
    metric_name: str = "rmse"

    @property
    def best(self) -> CrossValidationResult:
        if not self.results:
            raise ModelError("grid search produced no results")
        return min(self.results, key=lambda result: result.mean_score)

    @property
    def best_params(self) -> Dict[str, object]:
        return dict(self.best.params)

    @property
    def best_score(self) -> float:
        return self.best.mean_score

    def format_table(self) -> str:
        """One line per configuration, best first."""
        lines = [f"grid search ({len(self.results)} configurations, metric={self.metric_name})"]
        ordered = sorted(self.results, key=lambda result: result.mean_score)
        for result in ordered:
            settings = ", ".join(f"{k}={v}" for k, v in sorted(result.params.items()))
            lines.append(
                f"  {result.mean_score:10.4f} +/- {result.std_score:7.4f}  {settings}"
            )
        return "\n".join(lines)


def grid_search(
    factory: ModelFactory,
    grid: Dict[str, Sequence[object]],
    features: np.ndarray,
    targets: np.ndarray,
    k: int = 5,
    metric: Metric = rmse,
    metric_name: str = "rmse",
    rng: RngLike = None,
) -> GridSearchResult:
    """Cross-validate every combination in *grid* and rank them."""
    generator = ensure_rng(rng)
    results: List[CrossValidationResult] = []
    for params in expand_grid(grid):
        fold_rng = ensure_rng(generator.getrandbits(32))
        results.append(
            cross_validate(
                factory, features, targets, params=params, k=k, metric=metric, rng=fold_rng
            )
        )
    return GridSearchResult(results=results, metric_name=metric_name)


def gbdt_factory(base_params: Optional[GbdtParams] = None, seed: int = 0) -> ModelFactory:
    """A grid-search factory producing GBDTs that override *base_params*.

    The grid's keys must be :class:`~repro.ml.gbdt.GbdtParams` field names
    (``n_estimators``, ``learning_rate``, ``max_depth``, ``subsample``, ...).
    """
    base = base_params or GbdtParams()

    def factory(params: Dict[str, object]) -> GradientBoostingRegressor:
        merged = {
            "n_estimators": base.n_estimators,
            "learning_rate": base.learning_rate,
            "max_depth": base.max_depth,
            "subsample": base.subsample,
            "colsample": base.colsample,
            "min_child_weight": base.min_child_weight,
            "reg_lambda": base.reg_lambda,
            "gamma": base.gamma,
        }
        unknown = set(params) - set(merged)
        if unknown:
            raise ModelError(f"unknown GbdtParams fields in grid: {sorted(unknown)}")
        merged.update(params)
        return GradientBoostingRegressor(GbdtParams(**merged), rng=seed)

    return factory


def grid_search_gbdt(
    grid: Dict[str, Sequence[object]],
    features: np.ndarray,
    targets: np.ndarray,
    base_params: Optional[GbdtParams] = None,
    k: int = 4,
    rng: RngLike = None,
) -> GridSearchResult:
    """Convenience wrapper: grid search over GBDT hyperparameters."""
    return grid_search(
        gbdt_factory(base_params), grid, features, targets, k=k, rng=rng
    )
