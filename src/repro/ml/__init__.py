"""Machine-learning models for post-mapping delay prediction."""

from repro.ml.dataset import FeatureScaler, TimingDataset
from repro.ml.ensemble import AveragingEnsemble
from repro.ml.forest import ForestParams, RandomForestRegressor
from repro.ml.gbdt import GbdtParams, GradientBoostingRegressor
from repro.ml.gnn import GnnDelayRegressor, GnnParams, node_feature_matrix, propagate
from repro.ml.importance import (
    FeatureImportance,
    ImportanceReport,
    ensemble_importance,
    group_importance,
    permutation_importance,
)
from repro.ml.knn import KnnParams, KnnRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import (
    PercentErrorStats,
    absolute_percentage_errors,
    mae,
    pearson_correlation,
    percent_error_stats,
    r2_score,
    rmse,
)
from repro.ml.mlp import MlpParams, MlpRegressor
from repro.ml.model_io import gbdt_from_dict, gbdt_to_dict, load_gbdt, save_gbdt
from repro.ml.tree import RegressionTree, TreeParams
from repro.ml.tuning import (
    CrossValidationResult,
    GridSearchResult,
    cross_validate,
    expand_grid,
    gbdt_factory,
    grid_search,
    grid_search_gbdt,
    kfold_indices,
)

__all__ = [
    "AveragingEnsemble",
    "CrossValidationResult",
    "FeatureImportance",
    "FeatureScaler",
    "ForestParams",
    "GbdtParams",
    "GnnDelayRegressor",
    "GnnParams",
    "GradientBoostingRegressor",
    "GridSearchResult",
    "ImportanceReport",
    "KnnParams",
    "KnnRegressor",
    "MlpParams",
    "MlpRegressor",
    "PercentErrorStats",
    "RandomForestRegressor",
    "RegressionTree",
    "RidgeRegressor",
    "TimingDataset",
    "TreeParams",
    "absolute_percentage_errors",
    "cross_validate",
    "ensemble_importance",
    "expand_grid",
    "gbdt_factory",
    "gbdt_from_dict",
    "gbdt_to_dict",
    "grid_search",
    "grid_search_gbdt",
    "group_importance",
    "kfold_indices",
    "load_gbdt",
    "mae",
    "node_feature_matrix",
    "pearson_correlation",
    "percent_error_stats",
    "permutation_importance",
    "propagate",
    "r2_score",
    "rmse",
    "save_gbdt",
]
