"""A tiny wall-clock timer used by the runtime experiments (Fig. 2, Table IV)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TimerError


class Timer:
    """Context-manager stopwatch.

    ``elapsed`` is 0.0 until the timer has been stopped at least once, and
    :meth:`stop` on a timer that was never started raises :class:`TimerError`
    (it used to silently return the ``perf_counter`` epoch offset, thousands
    of bogus seconds).

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the stopwatch has been started and not yet stopped."""
        return self._start is not None

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds."""
        if self._start is None:
            raise TimerError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


@dataclass
class StageTimer:
    """Accumulates wall-clock time per named stage.

    The runtime experiments need a per-stage breakdown (transformation time,
    graph processing time, mapping+STA time, feature extraction + inference
    time); this helper keeps those accumulators in one place.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        """Accumulate *seconds* under *stage*."""
        self.totals[stage] = self.totals.get(stage, 0.0) + seconds
        self.counts[stage] = self.counts.get(stage, 0) + 1

    def time(self, stage: str) -> "_StageContext":
        """Return a context manager that records its block under *stage*."""
        return _StageContext(self, stage)

    def total(self, stage: str) -> float:
        """Total seconds recorded for *stage* (0.0 if never recorded)."""
        return self.totals.get(stage, 0.0)

    def mean(self, stage: str) -> float:
        """Mean seconds per call for *stage* (0.0 if never recorded)."""
        count = self.counts.get(stage, 0)
        if count == 0:
            return 0.0
        return self.totals[stage] / count

    def stages(self) -> List[str]:
        """Names of all recorded stages."""
        return sorted(self.totals)


class _StageContext:
    def __init__(self, parent: StageTimer, stage: str) -> None:
        self._parent = parent
        self._stage = stage
        self._timer = Timer()

    def __enter__(self) -> "_StageContext":
        self._timer.start()
        return self

    def __exit__(self, *exc) -> None:
        self._parent.add(self._stage, self._timer.stop())
