"""Small shared utilities: deterministic RNG handling, validation, timers."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
