"""Deterministic random-number-generator plumbing.

All stochastic components of the library (random AIG perturbation, simulated
annealing, model subsampling) accept either a seed, a ``random.Random``
instance, or ``None``.  :func:`ensure_rng` normalises those three cases so
that experiments are reproducible end to end.
"""

from __future__ import annotations

import random
from typing import Optional, Union

RngLike = Union[None, int, random.Random]


def ensure_rng(rng: RngLike = None) -> random.Random:
    """Return a ``random.Random`` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing ``random.Random`` which is returned unchanged.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"expected None, int, or random.Random, got {type(rng).__name__}")


def spawn_rng(rng: random.Random, stream: int = 0) -> random.Random:
    """Derive an independent child generator from *rng*.

    Used when a component needs its own stream (e.g. one per SA run in a
    sweep) without perturbing the parent generator's sequence.
    """
    seed = rng.getrandbits(64) ^ (0x9E3779B97F4A7C15 * (stream + 1) & (2**64 - 1))
    return random.Random(seed)
