"""Deterministic random-number-generator plumbing.

All stochastic components of the library (random AIG perturbation, simulated
annealing, model subsampling) accept either a seed, a ``random.Random``
instance, or ``None``.  :func:`ensure_rng` normalises those three cases so
that experiments are reproducible end to end.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

RngLike = Union[None, int, random.Random]


def ensure_rng(rng: RngLike = None) -> random.Random:
    """Return a ``random.Random`` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing ``random.Random`` which is returned unchanged.
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(f"expected None, int, or random.Random, got {type(rng).__name__}")


def spawn_rng(rng: random.Random, stream: int = 0) -> random.Random:
    """Derive an independent child generator from *rng*.

    Used when a component needs its own stream (e.g. one per SA run in a
    sweep, one per campaign cell) without perturbing the parent generator's
    sequence: the child seed is a hash of a *snapshot* of the parent's state
    and the stream index, so spawning any number of children leaves the
    parent's own sequence untouched, and the same (parent state, stream)
    pair always yields the same child regardless of how many other streams
    were spawned or in what order.
    """
    material = repr((rng.getstate(), stream)).encode("utf-8")
    seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
    return random.Random(seed)
