"""repro: reproduction of "ML-Based AIG Timing Prediction to Enhance Logic Optimization".

The package is organised as a set of substrates (AIG core, transformations,
standard-cell library, technology mapping, STA) topped by the paper's
contribution (graph-level feature extraction, gradient-boosted delay
prediction, and the ML-enhanced simulated-annealing optimization flow).

Quickstart
----------
>>> from repro.designs import build_design
>>> aig = build_design("EX68", seed=1)
>>> aig.num_pis
14
"""

from repro.version import __version__

__all__ = ["__version__"]
