"""repro: reproduction of "ML-Based AIG Timing Prediction to Enhance Logic Optimization".

The package is organised as a set of substrates (AIG core, transformations,
standard-cell library, technology mapping, STA) topped by the paper's
contribution (graph-level feature extraction, gradient-boosted delay
prediction, and the ML-enhanced simulated-annealing optimization flow).

The public entry point is the service layer in :mod:`repro.api`: a
:class:`~repro.api.SynthesisSession` owns the cell library, a cached (and
optionally process-parallel) PPA evaluator, and a registry of trained
models, and serves evaluation, optimization, dataset generation, and
training through typed requests.

Quickstart
----------
>>> from repro import SynthesisSession
>>> session = SynthesisSession()
>>> result = session.evaluate("EX68")
>>> result.delay_ps > 0
True
>>> session.optimize(design="EX68", flow="baseline", iterations=5, seed=1).flow
'baseline'
"""

from repro.version import __version__

__all__ = [
    "CachedEvaluator",
    "CampaignSpec",
    "EvalRequest",
    "Evaluator",
    "GroundTruthEvaluator",
    "IncrementalEvaluator",
    "OptimizeRequest",
    "OptimizeResult",
    "ParallelEvaluator",
    "PpaResult",
    "ResultStore",
    "ShardedResultStore",
    "SynthesisSession",
    "__version__",
    "campaign_report",
    "campaign_status",
    "default_session",
    "diff_stores",
    "evaluate_aig",
    "merge_store",
    "open_store",
    "run_campaign",
    "ServiceClient",
    "ServiceConfig",
    "SynthesisService",
    "create_service",
]

_SERVICE_EXPORTS = frozenset(
    {
        "ServiceClient",
        "ServiceConfig",
        "SynthesisService",
        "create_service",
    }
)

_CAMPAIGN_EXPORTS = frozenset(
    {
        "CampaignSpec",
        "ResultStore",
        "ShardedResultStore",
        "campaign_report",
        "campaign_status",
        "diff_stores",
        "merge_store",
        "open_store",
        "run_campaign",
    }
)
_API_EXPORTS = (
    frozenset(__all__) - {"__version__"} - _CAMPAIGN_EXPORTS - _SERVICE_EXPORTS
)


def __getattr__(name: str):
    # The service and campaign layers are re-exported lazily so
    # `import repro` stays cheap and the api -> opt -> repro.* import chain
    # never becomes circular.
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    if name in _CAMPAIGN_EXPORTS:
        from repro import campaign

        return getattr(campaign, name)
    if name in _SERVICE_EXPORTS:
        from repro import service

        return getattr(service, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
