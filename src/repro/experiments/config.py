"""Shared experiment configuration.

Two presets are provided: ``quick`` (CI-friendly, a few minutes end to end)
and ``full`` (closer to the paper's scale; tens of minutes).  Every
experiment module accepts an :class:`ExperimentConfig` so the benchmark
harness, the examples, and the tests can all dial the cost independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.designs.registry import TEST_DESIGNS, TRAIN_DESIGNS
from repro.ml.gbdt import GbdtParams


@dataclass
class ExperimentConfig:
    """Scale knobs shared across the experiment modules."""

    #: designs used for model training (paper: EX00, EX08, EX28, EX68).
    train_designs: Tuple[str, ...] = tuple(TRAIN_DESIGNS)
    #: designs used for unseen-design evaluation (paper: EX02, EX11, EX16, EX54).
    test_designs: Tuple[str, ...] = tuple(TEST_DESIGNS)
    #: AIG variants generated and labelled per design (paper: 40 000).
    samples_per_design: int = 40
    #: SA iterations per optimization run.
    sa_iterations: int = 30
    #: iterations used when measuring per-iteration runtime (Fig. 2 / Table IV).
    runtime_iterations: int = 8
    #: delay-weight grid for the Pareto sweeps (Fig. 5).
    sweep_delay_weights: Tuple[float, ...] = (1.0, 2.0, 4.0)
    #: temperature decay grid for the Pareto sweeps.
    sweep_decays: Tuple[float, ...] = (0.9, 0.97)
    #: model hyperparameters for the delay/area predictors.
    gbdt_params: GbdtParams = field(
        default_factory=lambda: GbdtParams(
            n_estimators=250, learning_rate=0.06, max_depth=6, subsample=0.8
        )
    )
    #: master seed for dataset generation and optimization runs.
    seed: int = 2025

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A configuration small enough for tests (seconds to a few minutes)."""
        return cls(
            train_designs=("EX68", "EX00"),
            test_designs=("EX68",),
            samples_per_design=12,
            sa_iterations=8,
            runtime_iterations=3,
            sweep_delay_weights=(1.0, 3.0),
            sweep_decays=(0.9,),
            gbdt_params=GbdtParams(n_estimators=80, learning_rate=0.1, max_depth=4),
            seed=11,
        )

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """The default benchmark-harness configuration (minutes)."""
        return cls()

    def all_designs(self) -> List[str]:
        """Train designs followed by test designs (no duplicates)."""
        names = list(self.train_designs)
        for name in self.test_designs:
            if name not in names:
                names.append(name)
        return names
