"""Plain-text table formatting shared by the experiment modules.

Every experiment renders its result as a fixed-width text table mirroring the
corresponding table or figure of the paper, so the benchmark harness output
can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render *rows* under *headers* as an aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_percent(value: float, decimals: int = 2) -> str:
    """Format a fraction as a signed percentage string."""
    return f"{value * 100:+.{decimals}f}%"
