"""Experiment modules, one per table/figure of the paper's evaluation.

Paper artefacts: Fig. 1, Table I, Fig. 2, Table III, Table IV, Fig. 5, and the
Sec. III-B model-choice comparison.  Extension studies (not in the paper but
supporting its claims): area-prediction accuracy, the learning curve over the
training-set size, the search-algorithm comparison under the ML cost, and the
post-mapping optimization study.
"""

from repro.experiments.area_accuracy import (
    AreaAccuracyResult,
    AreaDesignAccuracy,
    run_area_accuracy,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig1_correlation import CorrelationResult, run_fig1_correlation
from repro.experiments.fig2_runtime import Fig2Result, RuntimeComparison, run_fig2_runtime
from repro.experiments.fig5_pareto import Fig5Result, run_fig5_pareto
from repro.experiments.learning_curve import (
    LearningCurvePoint,
    LearningCurveResult,
    run_learning_curve,
)
from repro.experiments.optimizer_comparison import (
    OptimizerComparisonResult,
    OptimizerRow,
    run_optimizer_comparison,
)
from repro.experiments.postopt_study import (
    PostOptRow,
    PostOptStudyResult,
    run_postopt_study,
)
from repro.experiments.report import format_percent, format_table
from repro.experiments.table1_proxy_ties import (
    ProxyTie,
    ProxyTieResult,
    run_table1_proxy_ties,
)
from repro.experiments.table3_accuracy import (
    AccuracyResult,
    DesignAccuracy,
    run_table3_accuracy,
)
from repro.experiments.table4_runtime import (
    FlowRuntimeRow,
    Table4Result,
    run_table4_runtime,
)

__all__ = [
    "AccuracyResult",
    "AreaAccuracyResult",
    "AreaDesignAccuracy",
    "CorrelationResult",
    "DesignAccuracy",
    "ExperimentConfig",
    "Fig2Result",
    "Fig5Result",
    "FlowRuntimeRow",
    "LearningCurvePoint",
    "LearningCurveResult",
    "OptimizerComparisonResult",
    "OptimizerRow",
    "PostOptRow",
    "PostOptStudyResult",
    "ProxyTie",
    "ProxyTieResult",
    "RuntimeComparison",
    "Table4Result",
    "format_percent",
    "format_table",
    "run_area_accuracy",
    "run_fig1_correlation",
    "run_fig2_runtime",
    "run_fig5_pareto",
    "run_learning_curve",
    "run_optimizer_comparison",
    "run_postopt_study",
    "run_table1_proxy_ties",
    "run_table3_accuracy",
    "run_table4_runtime",
]
