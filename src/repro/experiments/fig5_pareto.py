"""Fig. 5 — delay/area Pareto fronts of the three optimization flows.

The paper sweeps the cost-function weights and the annealing decay rate for
each flow on a test design, plots the ground-truth delay/area of every
resulting optimal AIG, and shows that (a) the ground-truth flow and the ML
flow both dominate the proxy-driven baseline, and (b) the ML flow's front
nearly coincides with the ground-truth front.  Section II-B additionally
quantifies the baseline gap as "up to 22.7 % better delay at the same area".

This experiment reruns that study and reports the three fronts plus the
matched-area delay improvements between them.  Every (flow, sweep-setting)
pair is one campaign-engine cell, so the sweep shares the suite runner's
machinery: a file-backed (or sharded) store makes it resumable,
``max_workers > 1`` fans the runs across a process pool, and each cell
derives its RNG stream exactly as the serial sweep would — the fronts are
identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.campaign.runner import EngineCell, run_cells
from repro.campaign.schedule import SchedulerLike
from repro.campaign.spec import cell_id_for, default_context_fingerprint, model_fingerprint
from repro.campaign.store import CellResultStore, ResultStore
from repro.designs.registry import build_design
from repro.errors import CampaignError
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.opt.pareto import ParetoPoint, delay_at_matched_area, hypervolume_2d
from repro.opt.sweep import SweepConfig, SweepResult, SweepRun, run_sweep_setting

_CELL_FN = "repro.experiments.fig5_pareto:run_fig5_cell"

_FLOW_NAMES = ("baseline", "ground_truth", "ml")


@dataclass
class Fig5Result:
    """Sweep results and Pareto fronts of the three flows on one design."""

    design: str
    sweeps: Dict[str, SweepResult]

    # ------------------------------------------------------------------ #
    def front(self, flow: str) -> List[ParetoPoint]:
        """Pareto front of one flow ("baseline", "ground_truth", "ml")."""
        return self.sweeps[flow].front()

    @property
    def ground_truth_gain_over_baseline(self) -> Optional[float]:
        """Best matched-area delay improvement of ground truth vs baseline."""
        return delay_at_matched_area(self.front("ground_truth"), self.front("baseline"))

    @property
    def ml_gain_over_baseline(self) -> Optional[float]:
        """Best matched-area delay improvement of the ML flow vs baseline."""
        return delay_at_matched_area(self.front("ml"), self.front("baseline"))

    @property
    def ml_gap_to_ground_truth(self) -> Optional[float]:
        """Matched-area delay gap of ground truth vs the ML flow (small is good)."""
        return delay_at_matched_area(self.front("ground_truth"), self.front("ml"))

    def hypervolumes(self) -> Dict[str, float]:
        """Hypervolume of each front w.r.t. a common reference point."""
        all_points = [p for sweep in self.sweeps.values() for p in sweep.points()]
        reference = (
            max(p.delay for p in all_points) * 1.05,
            max(p.area for p in all_points) * 1.05,
        )
        return {
            name: hypervolume_2d(sweep.front(), reference)
            for name, sweep in self.sweeps.items()
        }

    def format_table(self) -> str:
        rows = []
        for name, sweep in self.sweeps.items():
            front = sweep.front()
            rows.append(
                (
                    name,
                    len(sweep.runs),
                    len(front),
                    sweep.best_delay(),
                    sweep.best_area(),
                    sweep.total_runtime_seconds(),
                )
            )
        table = format_table(
            ["flow", "runs", "front size", "best delay (ps)", "best area (um2)", "runtime (s)"],
            rows,
            title=f"Fig. 5 reproduction — Pareto sweep on {self.design}",
        )
        lines = [table]
        gt_gain = self.ground_truth_gain_over_baseline
        ml_gain = self.ml_gain_over_baseline
        gap = self.ml_gap_to_ground_truth
        if gt_gain is not None:
            lines.append(
                f"ground-truth flow beats baseline by up to {gt_gain * 100:.1f}% delay at matched area"
            )
        if ml_gain is not None:
            lines.append(
                f"ML flow beats baseline by up to {ml_gain * 100:.1f}% delay at matched area"
            )
        if gap is not None:
            lines.append(
                f"ground truth ahead of ML flow by {max(gap, 0.0) * 100:.1f}% delay at matched area"
            )
        return "\n".join(lines)


def run_fig5_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one (flow, sweep-setting) SA run and report its ground-truth PPA."""
    from repro.api.registry import create_flow
    from repro.campaign.cells import session_for_cell

    sweep = SweepConfig(
        delay_weights=tuple(payload["delay_weights"]),
        area_weights=tuple(payload["area_weights"]),
        temperature_decays=tuple(payload["temperature_decays"]),
        iterations=int(payload["iterations"]),
        initial_temperature=float(payload["initial_temperature"]),
        seed=int(payload["seed"]),
    )
    # The worker session's cached evaluator serves every in-loop and final
    # ground-truth evaluation — same numbers as a fresh evaluator, but the
    # mapper and PPA cache stay warm across the cells of this sweep.
    session = session_for_cell(payload)
    flow = create_flow(
        str(payload["flow"]),
        evaluator=session.evaluator,
        delay_model=payload.get("delay_model_obj"),
        area_model=payload.get("area_model_obj"),
    )
    aig = build_design(str(payload["design"]))
    result = run_sweep_setting(flow, aig, sweep, int(payload["index"]))
    return {
        # design/iterations are what the cost scheduler's observed-runtime
        # calibration groups and normalises on — keep them in the record.
        "design": str(payload["design"]),
        "flow": str(payload["flow"]),
        "index": int(payload["index"]),
        "iterations": sweep.iterations,
        "delay_ps": result.delay_ps,
        "area_um2": result.area_um2,
        "runtime_seconds": result.annealing.runtime_seconds,
    }


def run_fig5_pareto(
    delay_model,
    area_model=None,
    design: str = "EX16",
    config: Optional[ExperimentConfig] = None,
    sweep_config: Optional[SweepConfig] = None,
    store: Optional[CellResultStore] = None,
    max_workers: int = 1,
    scheduler: SchedulerLike = None,
) -> Fig5Result:
    """Run the Pareto sweep of the three flows on *design*.

    The (flow × setting) matrix runs through the campaign engine: *store*
    (file- or directory-backed) makes it resumable, *max_workers* fans the
    independent SA runs across a process pool, *scheduler* picks the
    submission order.
    """
    cfg = config or ExperimentConfig()
    sweep = sweep_config or SweepConfig(
        delay_weights=cfg.sweep_delay_weights,
        temperature_decays=cfg.sweep_decays,
        iterations=cfg.sa_iterations,
        seed=cfg.seed,
    )
    settings = sweep.settings()
    delay_fp = model_fingerprint(delay_model)
    area_fp = model_fingerprint(area_model)
    context = default_context_fingerprint()

    cells: List[EngineCell] = []
    for flow_name in _FLOW_NAMES:
        for index in range(len(settings)):
            identity = {
                "experiment": "fig5_pareto",
                "design": design,
                "flow": flow_name,
                "index": index,
                "delay_weights": list(sweep.delay_weights),
                "area_weights": list(sweep.area_weights),
                "temperature_decays": list(sweep.temperature_decays),
                "iterations": sweep.iterations,
                "initial_temperature": sweep.initial_temperature,
                "seed": sweep.seed,
                "context": context,
                # Retraining a model must invalidate resumed ML-flow cells.
                "delay_model": delay_fp if flow_name == "ml" else None,
                "area_model": area_fp if flow_name == "ml" else None,
            }
            payload = dict(identity)
            if flow_name == "ml":
                payload["delay_model_obj"] = delay_model
                payload["area_model_obj"] = area_model
            cells.append(
                EngineCell(cell_id=cell_id_for(identity), fn=_CELL_FN, payload=payload)
            )

    result_store = store if store is not None else ResultStore()
    run_cells(cells, result_store, max_workers=max_workers, scheduler=scheduler)

    latest = result_store.latest()
    sweeps = {name: SweepResult(flow=name) for name in _FLOW_NAMES}
    for cell in cells:
        record = latest.get(cell.cell_id)
        if record is None or record.get("status") != "ok":
            error = record.get("error", "never executed") if record else "never executed"
            raise CampaignError(
                f"fig5 cell {cell.payload['flow']}/setting {cell.payload['index']} "
                f"failed: {error}"
            )
        sweeps[str(record["flow"])].runs.append(
            SweepRun(
                delay_ps=float(record["delay_ps"]),
                area_um2=float(record["area_um2"]),
                runtime_seconds=float(record["runtime_seconds"]),
            )
        )
    return Fig5Result(design=design, sweeps=sweeps)
