"""Fig. 5 — delay/area Pareto fronts of the three optimization flows.

The paper sweeps the cost-function weights and the annealing decay rate for
each flow on a test design, plots the ground-truth delay/area of every
resulting optimal AIG, and shows that (a) the ground-truth flow and the ML
flow both dominate the proxy-driven baseline, and (b) the ML flow's front
nearly coincides with the ground-truth front.  Section II-B additionally
quantifies the baseline gap as "up to 22.7 % better delay at the same area".

This experiment reruns that study and reports the three fronts plus the
matched-area delay improvements between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.designs.registry import build_design
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.opt.flows import BaselineFlow, GroundTruthFlow, MlFlow
from repro.opt.pareto import ParetoPoint, delay_at_matched_area, hypervolume_2d
from repro.opt.sweep import SweepConfig, SweepResult, run_sweep


@dataclass
class Fig5Result:
    """Sweep results and Pareto fronts of the three flows on one design."""

    design: str
    sweeps: Dict[str, SweepResult]

    # ------------------------------------------------------------------ #
    def front(self, flow: str) -> List[ParetoPoint]:
        """Pareto front of one flow ("baseline", "ground_truth", "ml")."""
        return self.sweeps[flow].front()

    @property
    def ground_truth_gain_over_baseline(self) -> Optional[float]:
        """Best matched-area delay improvement of ground truth vs baseline."""
        return delay_at_matched_area(self.front("ground_truth"), self.front("baseline"))

    @property
    def ml_gain_over_baseline(self) -> Optional[float]:
        """Best matched-area delay improvement of the ML flow vs baseline."""
        return delay_at_matched_area(self.front("ml"), self.front("baseline"))

    @property
    def ml_gap_to_ground_truth(self) -> Optional[float]:
        """Matched-area delay gap of ground truth vs the ML flow (small is good)."""
        return delay_at_matched_area(self.front("ground_truth"), self.front("ml"))

    def hypervolumes(self) -> Dict[str, float]:
        """Hypervolume of each front w.r.t. a common reference point."""
        all_points = [p for sweep in self.sweeps.values() for p in sweep.points()]
        reference = (
            max(p.delay for p in all_points) * 1.05,
            max(p.area for p in all_points) * 1.05,
        )
        return {
            name: hypervolume_2d(sweep.front(), reference)
            for name, sweep in self.sweeps.items()
        }

    def format_table(self) -> str:
        rows = []
        for name, sweep in self.sweeps.items():
            front = sweep.front()
            rows.append(
                (
                    name,
                    len(sweep.runs),
                    len(front),
                    sweep.best_delay(),
                    sweep.best_area(),
                    sweep.total_runtime_seconds(),
                )
            )
        table = format_table(
            ["flow", "runs", "front size", "best delay (ps)", "best area (um2)", "runtime (s)"],
            rows,
            title=f"Fig. 5 reproduction — Pareto sweep on {self.design}",
        )
        lines = [table]
        gt_gain = self.ground_truth_gain_over_baseline
        ml_gain = self.ml_gain_over_baseline
        gap = self.ml_gap_to_ground_truth
        if gt_gain is not None:
            lines.append(
                f"ground-truth flow beats baseline by up to {gt_gain * 100:.1f}% delay at matched area"
            )
        if ml_gain is not None:
            lines.append(
                f"ML flow beats baseline by up to {ml_gain * 100:.1f}% delay at matched area"
            )
        if gap is not None:
            lines.append(
                f"ground truth ahead of ML flow by {max(gap, 0.0) * 100:.1f}% delay at matched area"
            )
        return "\n".join(lines)


def run_fig5_pareto(
    delay_model,
    area_model=None,
    design: str = "EX16",
    config: Optional[ExperimentConfig] = None,
    sweep_config: Optional[SweepConfig] = None,
) -> Fig5Result:
    """Run the Pareto sweep of the three flows on *design*."""
    cfg = config or ExperimentConfig()
    sweep = sweep_config or SweepConfig(
        delay_weights=cfg.sweep_delay_weights,
        temperature_decays=cfg.sweep_decays,
        iterations=cfg.sa_iterations,
        seed=cfg.seed,
    )
    aig = build_design(design)
    flows = {
        "baseline": BaselineFlow(),
        "ground_truth": GroundTruthFlow(),
        "ml": MlFlow(delay_model, area_model=area_model),
    }
    sweeps = {name: run_sweep(flow, aig, sweep) for name, flow in flows.items()}
    return Fig5Result(design=design, sweeps=sweeps)
