"""Table IV — per-iteration runtime of the three flows.

The paper's Table IV breaks the per-iteration cost into: the baseline flow
(transformation + graph processing), the ground-truth flow's additional
mapping + STA time, and the ML flow's additional feature-extraction +
inference time, reporting the percentage reduction of the ML column relative
to the ground-truth column (average ~81 %, maximum ~89 %).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.designs.registry import build_design
from repro.evaluation import GroundTruthEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.features.extract import FeatureExtractor
from repro.opt.annealing import AnnealingConfig
from repro.opt.flows import BaselineFlow, measure_iteration_runtime


@dataclass
class FlowRuntimeRow:
    """One row of Table IV."""

    design: str
    role: str
    num_ands: int
    baseline_seconds: float
    mapping_sta_seconds: float
    ml_inference_seconds: float

    @property
    def reduction(self) -> float:
        """Relative reduction of the ML column vs the mapping+STA column."""
        if self.mapping_sta_seconds <= 0:
            return 0.0
        return 1.0 - self.ml_inference_seconds / self.mapping_sta_seconds


@dataclass
class Table4Result:
    """All per-design flow runtimes."""

    rows: List[FlowRuntimeRow]

    @property
    def mean_reduction(self) -> float:
        """Mean ML-vs-ground-truth runtime reduction (paper: ~80.8 %)."""
        return sum(row.reduction for row in self.rows) / len(self.rows)

    @property
    def max_reduction(self) -> float:
        """Maximum reduction over the designs (paper: ~88.8 %)."""
        return max(row.reduction for row in self.rows)

    def format_table(self) -> str:
        rows = []
        for row in self.rows:
            rows.append(
                (
                    row.role,
                    f"{row.design} ({row.num_ands})",
                    row.baseline_seconds,
                    row.mapping_sta_seconds,
                    row.ml_inference_seconds,
                    f"{row.reduction * 100:.2f}%",
                )
            )
        table = format_table(
            [
                "role",
                "design (#nodes)",
                "baseline (s)",
                "mapping+STA (s)",
                "ML inference (s)",
                "reduction",
            ],
            rows,
            title="Table IV reproduction — per-iteration runtime of the three flows",
            float_format="{:.4f}",
        )
        return table + (
            f"\naverage reduction = {self.mean_reduction * 100:.2f}%   "
            f"max reduction = {self.max_reduction * 100:.2f}%"
        )


def run_table4_runtime(
    delay_model,
    config: Optional[ExperimentConfig] = None,
    designs: Optional[Sequence[str]] = None,
    repeats: int = 3,
) -> Table4Result:
    """Measure the three per-iteration cost components on every design.

    ``delay_model`` is a trained delay predictor (typically from the Table III
    experiment); its inference time is what the ML column measures.
    """
    cfg = config or ExperimentConfig()
    names = list(designs) if designs is not None else cfg.all_designs()
    baseline = BaselineFlow()
    evaluator = GroundTruthEvaluator()
    extractor = FeatureExtractor()
    run_config = AnnealingConfig(iterations=cfg.runtime_iterations, keep_history=False)

    rows: List[FlowRuntimeRow] = []
    train_set = set(cfg.train_designs)
    for name in names:
        aig = build_design(name)
        base_rt = measure_iteration_runtime(
            baseline, aig, iterations=cfg.runtime_iterations, rng=cfg.seed, config=run_config
        )
        # Ground-truth column: mapping + STA on the current AIG.
        start = time.perf_counter()
        for _ in range(repeats):
            evaluator.evaluate(aig)
        mapping_sta = (time.perf_counter() - start) / repeats
        # ML column: feature extraction + model inference.
        start = time.perf_counter()
        for _ in range(repeats):
            features = extractor.extract(aig).reshape(1, -1)
            delay_model.predict(features)
        ml_inference = (time.perf_counter() - start) / repeats
        rows.append(
            FlowRuntimeRow(
                design=name,
                role="train" if name in train_set else "test",
                num_ands=aig.num_ands,
                baseline_seconds=base_rt.total_seconds,
                mapping_sta_seconds=mapping_sta,
                ml_inference_seconds=ml_inference,
            )
        )
    return Table4Result(rows=rows)
