"""Table IV — per-iteration runtime of the three flows.

The paper's Table IV breaks the per-iteration cost into: the baseline flow
(transformation + graph processing), the ground-truth flow's additional
mapping + STA time, and the ML flow's additional feature-extraction +
inference time, reporting the percentage reduction of the ML column relative
to the ground-truth column (average ~81 %, maximum ~89 %).

Each design is one campaign-engine cell, so the measurement sweep shares the
suite runner's machinery: pass a file-backed
:class:`~repro.campaign.store.ResultStore` to make the sweep resumable, and
``max_workers > 1`` to fan the designs across a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.runner import EngineCell, run_cells
from repro.campaign.schedule import SchedulerLike
from repro.campaign.spec import cell_id_for, default_context_fingerprint, model_fingerprint
from repro.campaign.store import CellResultStore, ResultStore
from repro.designs.registry import build_design
from repro.errors import CampaignError
from repro.evaluation import GroundTruthEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.features.extract import FeatureExtractor
from repro.opt.annealing import AnnealingConfig
from repro.opt.flows import BaselineFlow, measure_iteration_runtime
from repro.utils.timer import Timer

_CELL_FN = "repro.experiments.table4_runtime:run_table4_cell"


@dataclass
class FlowRuntimeRow:
    """One row of Table IV."""

    design: str
    role: str
    num_ands: int
    baseline_seconds: float
    mapping_sta_seconds: float
    ml_inference_seconds: float

    @property
    def reduction(self) -> float:
        """Relative reduction of the ML column vs the mapping+STA column."""
        if self.mapping_sta_seconds <= 0:
            return 0.0
        return 1.0 - self.ml_inference_seconds / self.mapping_sta_seconds


@dataclass
class Table4Result:
    """All per-design flow runtimes."""

    rows: List[FlowRuntimeRow]

    @property
    def mean_reduction(self) -> float:
        """Mean ML-vs-ground-truth runtime reduction (paper: ~80.8 %)."""
        return sum(row.reduction for row in self.rows) / len(self.rows)

    @property
    def max_reduction(self) -> float:
        """Maximum reduction over the designs (paper: ~88.8 %)."""
        return max(row.reduction for row in self.rows)

    def format_table(self) -> str:
        rows = []
        for row in self.rows:
            rows.append(
                (
                    row.role,
                    f"{row.design} ({row.num_ands})",
                    row.baseline_seconds,
                    row.mapping_sta_seconds,
                    row.ml_inference_seconds,
                    f"{row.reduction * 100:.2f}%",
                )
            )
        table = format_table(
            [
                "role",
                "design (#nodes)",
                "baseline (s)",
                "mapping+STA (s)",
                "ML inference (s)",
                "reduction",
            ],
            rows,
            title="Table IV reproduction — per-iteration runtime of the three flows",
            float_format="{:.4f}",
        )
        return table + (
            f"\naverage reduction = {self.mean_reduction * 100:.2f}%   "
            f"max reduction = {self.max_reduction * 100:.2f}%"
        )


def run_table4_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Measure the three per-iteration cost components on one design."""
    name = str(payload["design"])
    iterations = int(payload["iterations"])
    repeats = int(payload["repeats"])
    delay_model = payload["delay_model"]

    aig = build_design(name)
    baseline = BaselineFlow()
    evaluator = GroundTruthEvaluator()
    extractor = FeatureExtractor()
    run_config = AnnealingConfig(iterations=iterations, keep_history=False)
    base_rt = measure_iteration_runtime(
        baseline, aig, iterations=iterations, rng=int(payload["seed"]), config=run_config
    )
    # Ground-truth column: mapping + STA on the current AIG.
    with Timer() as sta_timer:
        for _ in range(repeats):
            evaluator.evaluate(aig)
    mapping_sta = sta_timer.elapsed / repeats
    # ML column: feature extraction + model inference.
    with Timer() as ml_timer:
        for _ in range(repeats):
            features = extractor.extract(aig).reshape(1, -1)
            delay_model.predict(features)
    ml_inference = ml_timer.elapsed / repeats
    return {
        "design": name,
        # The cost scheduler normalises observed runtimes by this budget.
        "iterations": iterations,
        "num_ands": aig.num_ands,
        "baseline_seconds": base_rt.total_seconds,
        "mapping_sta_seconds": mapping_sta,
        "ml_inference_seconds": ml_inference,
    }


def run_table4_runtime(
    delay_model,
    config: Optional[ExperimentConfig] = None,
    designs: Optional[Sequence[str]] = None,
    repeats: int = 3,
    store: Optional[CellResultStore] = None,
    max_workers: int = 1,
    scheduler: SchedulerLike = None,
) -> Table4Result:
    """Measure the three per-iteration cost components on every design.

    ``delay_model`` is a trained delay predictor (typically from the Table III
    experiment); its inference time is what the ML column measures.  The
    per-design sweep runs through the campaign engine: *store* (file- or
    directory-backed) makes it resumable, *max_workers* fans designs across
    a process pool, *scheduler* picks the submission order.
    """
    cfg = config or ExperimentConfig()
    names = list(designs) if designs is not None else cfg.all_designs()
    # The mapping+STA column depends on the cell library and mapper
    # configuration, so resumed cells must invalidate when those change.
    context = default_context_fingerprint()
    cells: List[EngineCell] = []
    for name in names:
        identity = {
            "experiment": "table4_runtime",
            "design": name,
            "iterations": cfg.runtime_iterations,
            "repeats": repeats,
            "seed": cfg.seed,
            "context": context,
            # Retraining the model must invalidate resumed cells: its
            # inference time is the ML column being measured.
            "delay_model": model_fingerprint(delay_model),
        }
        payload = dict(identity)
        payload["delay_model"] = delay_model
        cells.append(
            EngineCell(cell_id=cell_id_for(identity), fn=_CELL_FN, payload=payload)
        )
    result_store = store if store is not None else ResultStore()
    run_cells(cells, result_store, max_workers=max_workers, scheduler=scheduler)

    latest = result_store.latest()
    train_set = set(cfg.train_designs)
    rows: List[FlowRuntimeRow] = []
    for name, cell in zip(names, cells):
        record = latest.get(cell.cell_id)
        if record is None or record.get("status") != "ok":
            error = record.get("error", "never executed") if record else "never executed"
            raise CampaignError(f"table4 cell for design {name!r} failed: {error}")
        rows.append(
            FlowRuntimeRow(
                design=name,
                role="train" if name in train_set else "test",
                num_ands=int(record["num_ands"]),
                baseline_seconds=float(record["baseline_seconds"]),
                mapping_sta_seconds=float(record["mapping_sta_seconds"]),
                ml_inference_seconds=float(record["ml_inference_seconds"]),
            )
        )
    return Table4Result(rows=rows)
