"""Learning curve: prediction accuracy versus training-set size.

The paper labels 40 000 AIG variants per design; this reproduction defaults
to far fewer for runtime reasons.  The learning-curve experiment quantifies
what that scaling knob costs: the delay model is retrained on increasing
numbers of variants per training design and evaluated, at every size, on the
full corpora of the unseen test designs.  The resulting curve shows how
quickly accuracy saturates and supports the scaled-down defaults documented
in DESIGN.md.

Each curve point (one training-set size) is an independent model fit, so
every point is one campaign-engine cell: pass a file-backed (or sharded)
store to resume an interrupted curve, and ``max_workers > 1`` to fit the
points concurrently.  Cell identities fingerprint the labelled corpora by
content — regenerating the data invalidates every resumed point.
"""

from __future__ import annotations

import hashlib
from dataclasses import astuple, dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.campaign.runner import EngineCell, run_cells
from repro.campaign.schedule import SchedulerLike
from repro.campaign.spec import cell_id_for
from repro.campaign.store import CellResultStore, ResultStore
from repro.datagen.generator import DatasetGenerator, DesignCorpus, GenerationConfig
from repro.errors import CampaignError
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.ml.gbdt import GbdtParams, GradientBoostingRegressor
from repro.utils.timer import Timer
from repro.ml.metrics import percent_error_stats

_CELL_FN = "repro.experiments.learning_curve:run_learning_curve_cell"


@dataclass
class LearningCurvePoint:
    """Accuracy of a model trained with *samples_per_design* variants."""

    samples_per_design: int
    train_error_percent: float
    test_error_percent: float
    training_seconds: float


@dataclass
class LearningCurveResult:
    """The full accuracy-versus-data curve."""

    points: List[LearningCurvePoint]
    train_designs: List[str]
    test_designs: List[str]

    @property
    def best_test_error(self) -> float:
        """Smallest unseen-design error over the curve."""
        return min(point.test_error_percent for point in self.points)

    def format_table(self) -> str:
        rows = [
            (
                point.samples_per_design,
                f"{point.train_error_percent:.2f}%",
                f"{point.test_error_percent:.2f}%",
                f"{point.training_seconds:.2f}s",
            )
            for point in self.points
        ]
        return format_table(
            ["samples/design", "train mean %err", "unseen mean %err", "train time"],
            rows,
            title="Learning curve — delay-prediction error vs training-set size",
        )


def corpora_fingerprint(corpora: Dict[str, DesignCorpus]) -> str:
    """Content identity of labelled corpora for campaign cell ids.

    Hashes the features and delay labels of every design, so regenerated
    (or re-labelled) data invalidates any resumed curve point exactly like
    editing a design file invalidates its optimize cells.
    """
    digest = hashlib.sha256()
    for name in sorted(corpora):
        corpus = corpora[name]
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(corpus.features).tobytes())
        digest.update(np.ascontiguousarray(corpus.delays_ps).tobytes())
    return digest.hexdigest()[:16]


#: corpora shared with in-process (and fork-inherited pool) cell workers,
#: keyed by content fingerprint so stale data can never be picked up.
_CORPORA_REGISTRY: Dict[str, Dict[str, DesignCorpus]] = {}


def _register_corpora(fingerprint: str, corpora: Dict[str, DesignCorpus]) -> None:
    if len(_CORPORA_REGISTRY) >= 2 and fingerprint not in _CORPORA_REGISTRY:
        _CORPORA_REGISTRY.pop(next(iter(_CORPORA_REGISTRY)))
    _CORPORA_REGISTRY[fingerprint] = corpora


def _corpora_travel_inline() -> bool:
    """Whether cell payloads must carry the corpora themselves.

    Serial cells run in this process and pool workers on fork platforms
    inherit the registry, so the multi-megabyte corpora only need to ride
    inside every payload (pickled once per cell) on spawn-style platforms.
    """
    import multiprocessing

    try:
        return multiprocessing.get_start_method() != "fork"
    # repro-lint: ignore[C3] -- capability probe: an exotic platform with
    # no start method gets the conservative default (assume spawn).
    except Exception:  # pragma: no cover - platform without a start method
        return True


def _mean_error(
    model: GradientBoostingRegressor, corpora: Dict[str, DesignCorpus], designs: Sequence[str]
) -> float:
    errors = []
    for design in designs:
        corpus = corpora[design]
        stats = percent_error_stats(corpus.delays_ps, model.predict(corpus.features))
        errors.append(stats.mean)
    return float(np.mean(errors)) if errors else 0.0


def run_learning_curve_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Fit the delay model at one training-set size and score it."""
    corpora: Optional[Dict[str, DesignCorpus]] = _CORPORA_REGISTRY.get(
        str(payload["corpora"])
    )
    if corpora is None:
        corpora = payload["corpora_obj"]
    count = int(payload["samples_per_design"])
    train_designs = list(payload["train_designs"])
    test_designs = list(payload["test_designs"])
    params = GbdtParams(*payload["gbdt_params"])

    features = []
    labels = []
    for design in train_designs:
        corpus = corpora[design]
        take = min(count, corpus.features.shape[0])
        features.append(corpus.features[:take])
        labels.append(corpus.delays_ps[:take])
    train_features = np.vstack(features)
    train_labels = np.concatenate(labels)

    with Timer() as training_timer:
        model = GradientBoostingRegressor(params, rng=int(payload["seed"]))
        model.fit(train_features, train_labels)
    elapsed = training_timer.elapsed

    return {
        "samples_per_design": count,
        "train_error_percent": _mean_error(model, corpora, train_designs),
        "test_error_percent": _mean_error(model, corpora, test_designs),
        "training_seconds": elapsed,
    }


def run_learning_curve(
    config: Optional[ExperimentConfig] = None,
    sample_counts: Optional[Sequence[int]] = None,
    corpora: Optional[Dict[str, DesignCorpus]] = None,
    store: Optional[CellResultStore] = None,
    max_workers: int = 1,
    scheduler: SchedulerLike = None,
) -> LearningCurveResult:
    """Train the delay model at several training-set sizes and evaluate each.

    When *corpora* is supplied it must contain at least ``max(sample_counts)``
    variants per training design; smaller training sets are produced by
    truncation so every point reuses the same labelled data (no re-labelling).
    The per-size sweep runs through the campaign engine: *store* makes it
    resumable, *max_workers* fits curve points concurrently.
    """
    cfg = config or ExperimentConfig()
    if sample_counts is None:
        largest = cfg.samples_per_design
        sample_counts = sorted({max(4, largest // 4), max(6, largest // 2), largest})
    if not sample_counts:
        raise ValueError("sample_counts must not be empty")
    largest = max(sample_counts)

    generator = DatasetGenerator(
        GenerationConfig(samples_per_design=largest, seed=cfg.seed)
    )
    if corpora is None:
        corpora = generator.generate(cfg.all_designs(), rng=cfg.seed)

    train_designs = [d for d in cfg.train_designs if d in corpora]
    test_designs = [d for d in cfg.test_designs if d in corpora]
    data_fingerprint = corpora_fingerprint(corpora)
    _register_corpora(data_fingerprint, corpora)
    ship_inline = max_workers > 1 and _corpora_travel_inline()
    params_tuple = list(astuple(cfg.gbdt_params))

    cells: List[EngineCell] = []
    counts = sorted(sample_counts)
    for count in counts:
        identity = {
            "experiment": "learning_curve",
            "samples_per_design": count,
            "train_designs": train_designs,
            "test_designs": test_designs,
            "corpora": data_fingerprint,
            "gbdt_params": params_tuple,
            "seed": cfg.seed,
        }
        payload = dict(identity)
        if ship_inline:
            payload["corpora_obj"] = corpora
        cells.append(
            EngineCell(cell_id=cell_id_for(identity), fn=_CELL_FN, payload=payload)
        )
    result_store = store if store is not None else ResultStore()
    run_cells(cells, result_store, max_workers=max_workers, scheduler=scheduler)

    latest = result_store.latest()
    points: List[LearningCurvePoint] = []
    for count, cell in zip(counts, cells):
        record = latest.get(cell.cell_id)
        if record is None or record.get("status") != "ok":
            error = record.get("error", "never executed") if record else "never executed"
            raise CampaignError(
                f"learning-curve cell for {count} samples/design failed: {error}"
            )
        points.append(
            LearningCurvePoint(
                samples_per_design=int(record["samples_per_design"]),
                train_error_percent=float(record["train_error_percent"]),
                test_error_percent=float(record["test_error_percent"]),
                training_seconds=float(record["training_seconds"]),
            )
        )

    return LearningCurveResult(
        points=points, train_designs=train_designs, test_designs=test_designs
    )
