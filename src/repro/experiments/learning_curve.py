"""Learning curve: prediction accuracy versus training-set size.

The paper labels 40 000 AIG variants per design; this reproduction defaults
to far fewer for runtime reasons.  The learning-curve experiment quantifies
what that scaling knob costs: the delay model is retrained on increasing
numbers of variants per training design and evaluated, at every size, on the
full corpora of the unseen test designs.  The resulting curve shows how
quickly accuracy saturates and supports the scaled-down defaults documented
in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datagen.generator import DatasetGenerator, DesignCorpus, GenerationConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.metrics import percent_error_stats


@dataclass
class LearningCurvePoint:
    """Accuracy of a model trained with *samples_per_design* variants."""

    samples_per_design: int
    train_error_percent: float
    test_error_percent: float
    training_seconds: float


@dataclass
class LearningCurveResult:
    """The full accuracy-versus-data curve."""

    points: List[LearningCurvePoint]
    train_designs: List[str]
    test_designs: List[str]

    @property
    def best_test_error(self) -> float:
        """Smallest unseen-design error over the curve."""
        return min(point.test_error_percent for point in self.points)

    def format_table(self) -> str:
        rows = [
            (
                point.samples_per_design,
                f"{point.train_error_percent:.2f}%",
                f"{point.test_error_percent:.2f}%",
                f"{point.training_seconds:.2f}s",
            )
            for point in self.points
        ]
        return format_table(
            ["samples/design", "train mean %err", "unseen mean %err", "train time"],
            rows,
            title="Learning curve — delay-prediction error vs training-set size",
        )


def _mean_error(
    model: GradientBoostingRegressor, corpora: Dict[str, DesignCorpus], designs: Sequence[str]
) -> float:
    errors = []
    for design in designs:
        corpus = corpora[design]
        stats = percent_error_stats(corpus.delays_ps, model.predict(corpus.features))
        errors.append(stats.mean)
    return float(np.mean(errors)) if errors else 0.0


def run_learning_curve(
    config: Optional[ExperimentConfig] = None,
    sample_counts: Optional[Sequence[int]] = None,
    corpora: Optional[Dict[str, DesignCorpus]] = None,
) -> LearningCurveResult:
    """Train the delay model at several training-set sizes and evaluate each.

    When *corpora* is supplied it must contain at least ``max(sample_counts)``
    variants per training design; smaller training sets are produced by
    truncation so every point reuses the same labelled data (no re-labelling).
    """
    cfg = config or ExperimentConfig()
    if sample_counts is None:
        largest = cfg.samples_per_design
        sample_counts = sorted({max(4, largest // 4), max(6, largest // 2), largest})
    if not sample_counts:
        raise ValueError("sample_counts must not be empty")
    largest = max(sample_counts)

    generator = DatasetGenerator(
        GenerationConfig(samples_per_design=largest, seed=cfg.seed)
    )
    if corpora is None:
        corpora = generator.generate(cfg.all_designs(), rng=cfg.seed)

    train_designs = [d for d in cfg.train_designs if d in corpora]
    test_designs = [d for d in cfg.test_designs if d in corpora]

    points: List[LearningCurvePoint] = []
    for count in sorted(sample_counts):
        features = []
        labels = []
        for design in train_designs:
            corpus = corpora[design]
            take = min(count, corpus.features.shape[0])
            features.append(corpus.features[:take])
            labels.append(corpus.delays_ps[:take])
        train_features = np.vstack(features)
        train_labels = np.concatenate(labels)

        start = time.perf_counter()
        model = GradientBoostingRegressor(cfg.gbdt_params, rng=cfg.seed)
        model.fit(train_features, train_labels)
        elapsed = time.perf_counter() - start

        points.append(
            LearningCurvePoint(
                samples_per_design=count,
                train_error_percent=_mean_error(model, corpora, train_designs),
                test_error_percent=_mean_error(model, corpora, test_designs),
                training_seconds=elapsed,
            )
        )

    return LearningCurveResult(
        points=points, train_designs=train_designs, test_designs=test_designs
    )
