"""Table III — accuracy of the delay predictor on training and unseen designs.

Reproduces the paper's central accuracy table: generate labelled AIG variants
for the eight benchmark designs, train the gradient-boosted model on the four
training designs, and report the mean / max / std of the absolute percentage
error per design — including the four designs the model never saw.

The same experiment optionally trains the GNN comparison model (Sec. III-B of
the paper reports the GNN to be ~2 % worse on average) and an area model
(the abstract's secondary target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datagen.generator import DatasetGenerator, DesignCorpus, GenerationConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.ml.dataset import TimingDataset
from repro.ml.gbdt import GbdtParams, GradientBoostingRegressor
from repro.ml.gnn import GnnDelayRegressor, GnnParams
from repro.ml.metrics import PercentErrorStats, percent_error_stats
from repro.utils.timer import Timer


@dataclass
class DesignAccuracy:
    """One row of Table III."""

    design: str
    role: str
    num_pis: int
    num_pos: int
    node_min: int
    node_max: int
    stats: PercentErrorStats


@dataclass
class AccuracyResult:
    """Full Table III reproduction plus the trained models."""

    rows: List[DesignAccuracy]
    delay_model: GradientBoostingRegressor
    area_model: Optional[GradientBoostingRegressor]
    corpora: Dict[str, DesignCorpus]
    dataset: TimingDataset
    train_designs: List[str]
    test_designs: List[str]
    training_seconds: float
    gnn_rows: List[DesignAccuracy] = field(default_factory=list)
    gnn_training_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def mean_error_all(self) -> float:
        """Mean absolute %error averaged over all designs (paper: 4.03 %)."""
        return float(np.mean([row.stats.mean for row in self.rows]))

    @property
    def mean_error_test(self) -> float:
        """Mean absolute %error over the unseen designs only."""
        test = [row.stats.mean for row in self.rows if row.role == "test"]
        return float(np.mean(test)) if test else 0.0

    @property
    def max_error_all(self) -> float:
        """Worst per-sample %error over all designs (paper: 39.85 %)."""
        return float(max(row.stats.max for row in self.rows))

    @property
    def mean_std_all(self) -> float:
        """Mean of the per-design %error standard deviations (paper: 3.27 %)."""
        return float(np.mean([row.stats.std for row in self.rows]))

    @property
    def gnn_mean_error_all(self) -> Optional[float]:
        """Mean GNN %error over all designs (None when the GNN was skipped)."""
        if not self.gnn_rows:
            return None
        return float(np.mean([row.stats.mean for row in self.gnn_rows]))

    def format_table(self) -> str:
        rows = []
        for row in self.rows:
            rows.append(
                (
                    row.role,
                    row.design,
                    f"{row.num_pis}/{row.num_pos}",
                    f"{row.node_min}-{row.node_max}",
                    f"{row.stats.mean:.2f}%",
                    f"{row.stats.max:.2f}%",
                    f"{row.stats.std:.2f}%",
                )
            )
        table = format_table(
            ["role", "design", "PI/PO", "#node range", "mean %err", "max %err", "std %err"],
            rows,
            title="Table III reproduction — delay-prediction accuracy",
        )
        summary = (
            f"\naverage mean %err = {self.mean_error_all:.2f}%   "
            f"max %err = {self.max_error_all:.2f}%   "
            f"average std %err = {self.mean_std_all:.2f}%"
        )
        if self.gnn_rows:
            summary += (
                f"\nGNN average mean %err = {self.gnn_mean_error_all:.2f}% "
                f"(tree model: {self.mean_error_all:.2f}%), "
                f"GNN training {self.gnn_training_seconds:.1f}s vs "
                f"tree {self.training_seconds:.1f}s"
            )
        return table + summary


# --------------------------------------------------------------------------- #
def _per_design_stats(
    corpora: Dict[str, DesignCorpus],
    predictions: Dict[str, np.ndarray],
    roles: Dict[str, str],
) -> List[DesignAccuracy]:
    rows: List[DesignAccuracy] = []
    for design, corpus in corpora.items():
        node_counts = [aig.num_ands for aig in corpus.aigs] or [0]
        stats = percent_error_stats(corpus.delays_ps, predictions[design])
        pis = corpus.aigs[0].num_pis if corpus.aigs else 0
        pos = corpus.aigs[0].num_pos if corpus.aigs else 0
        rows.append(
            DesignAccuracy(
                design=design,
                role=roles[design],
                num_pis=pis,
                num_pos=pos,
                node_min=min(node_counts),
                node_max=max(node_counts),
                stats=stats,
            )
        )
    return rows


def run_table3_accuracy(
    config: Optional[ExperimentConfig] = None,
    include_gnn: bool = False,
    include_area_model: bool = True,
    corpora: Optional[Dict[str, DesignCorpus]] = None,
) -> AccuracyResult:
    """Run the Table III experiment and return per-design accuracy."""
    cfg = config or ExperimentConfig()
    generator = DatasetGenerator(
        GenerationConfig(samples_per_design=cfg.samples_per_design, seed=cfg.seed)
    )
    designs = cfg.all_designs()
    if corpora is None:
        corpora = generator.generate(designs, rng=cfg.seed)
    dataset = generator.to_dataset(corpora)

    train_designs = [d for d in cfg.train_designs if d in corpora]
    test_designs = [d for d in cfg.test_designs if d in corpora]
    train = dataset.for_designs(train_designs)

    with Timer() as training_timer:
        delay_model = GradientBoostingRegressor(cfg.gbdt_params, rng=cfg.seed)
        delay_model.fit(train.features, train.labels)
    training_seconds = training_timer.elapsed

    area_model = None
    if include_area_model:
        area_train_labels = np.asarray(train.areas, dtype=np.float64)
        area_model = GradientBoostingRegressor(cfg.gbdt_params, rng=cfg.seed + 1)
        area_model.fit(train.features, area_train_labels)

    roles = {d: ("train" if d in train_designs else "test") for d in corpora}
    predictions = {
        design: delay_model.predict(corpus.features) for design, corpus in corpora.items()
    }
    rows = _per_design_stats(corpora, predictions, roles)

    gnn_rows: List[DesignAccuracy] = []
    gnn_seconds = 0.0
    if include_gnn:
        gnn = GnnDelayRegressor(GnnParams(epochs=200), rng=cfg.seed)
        train_aigs = [aig for d in train_designs for aig in corpora[d].aigs]
        train_delays = np.concatenate([corpora[d].delays_ps for d in train_designs])
        with Timer() as gnn_timer:
            gnn.fit(train_aigs, train_delays)
        gnn_seconds = gnn_timer.elapsed
        gnn_predictions = {
            design: gnn.predict(corpus.aigs) for design, corpus in corpora.items()
        }
        gnn_rows = _per_design_stats(corpora, gnn_predictions, roles)

    return AccuracyResult(
        rows=rows,
        delay_model=delay_model,
        area_model=area_model,
        corpora=corpora,
        dataset=dataset,
        train_designs=train_designs,
        test_designs=test_designs,
        training_seconds=training_seconds,
        gnn_rows=gnn_rows,
        gnn_training_seconds=gnn_seconds,
    )
