"""Search-algorithm comparison under the ML cost function.

The paper argues its delay/area predictors are not tied to simulated
annealing ("our models can also be integrated into other conventional
approaches besides SA").  This experiment substantiates that claim: the same
ML cost function drives simulated annealing, a greedy steepest-descent
search, and a genetic algorithm, each given (approximately) the same number
of cost evaluations, and the resulting best AIGs are compared on their
*ground-truth* post-mapping delay and area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.aig.graph import Aig
from repro.designs.registry import build_design
from repro.evaluation import GroundTruthEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.opt.annealing import AnnealingConfig, SimulatedAnnealing
from repro.opt.cost import MlCost, ProxyCost
from repro.opt.genetic import GeneticConfig, GeneticOptimizer
from repro.opt.greedy import GreedyConfig, GreedyOptimizer


@dataclass
class OptimizerRow:
    """Outcome of one search algorithm on one design."""

    algorithm: str
    cost_function: str
    ground_truth_delay_ps: float
    ground_truth_area_um2: float
    cost_evaluations: int
    runtime_seconds: float


@dataclass
class OptimizerComparisonResult:
    """All algorithms, plus the unoptimized reference point."""

    design: str
    initial_delay_ps: float
    initial_area_um2: float
    rows: List[OptimizerRow]

    def best_row(self) -> OptimizerRow:
        """Row with the smallest ground-truth delay (ties broken by area)."""
        return min(
            self.rows, key=lambda row: (row.ground_truth_delay_ps, row.ground_truth_area_um2)
        )

    def row(self, algorithm: str) -> OptimizerRow:
        """Row of a specific algorithm."""
        for candidate in self.rows:
            if candidate.algorithm == algorithm:
                return candidate
        raise KeyError(f"no result for algorithm {algorithm!r}")

    def format_table(self) -> str:
        rows = [
            (
                row.algorithm,
                row.cost_function,
                f"{row.ground_truth_delay_ps:.1f}",
                f"{row.ground_truth_area_um2:.1f}",
                row.cost_evaluations,
                f"{row.runtime_seconds:.2f}s",
            )
            for row in self.rows
        ]
        table = format_table(
            ["algorithm", "cost", "delay (ps)", "area (um2)", "evaluations", "runtime"],
            rows,
            title=f"Search-algorithm comparison on {self.design} (ground-truth PPA of best AIG)",
        )
        return (
            table
            + f"\nunoptimized reference: delay = {self.initial_delay_ps:.1f} ps, "
            + f"area = {self.initial_area_um2:.1f} um2"
        )


def run_optimizer_comparison(
    delay_model,
    config: Optional[ExperimentConfig] = None,
    design: Optional[str] = None,
    area_model=None,
    initial: Optional[Aig] = None,
    include_proxy_baseline: bool = True,
    evaluator=None,
) -> OptimizerComparisonResult:
    """Drive SA, greedy search, and a GA with the same ML cost function.

    The evaluation budget of every algorithm is derived from
    ``config.sa_iterations`` so the comparison is evaluation-count fair.
    An injected *evaluator* (cached/parallel/incremental) serves every
    ground-truth check, so repeated and structurally overlapping best-AIG
    evaluations share one state pool.
    """
    cfg = config or ExperimentConfig()
    design_name = design or (cfg.test_designs[0] if cfg.test_designs else cfg.train_designs[0])
    aig = initial if initial is not None else build_design(design_name)
    if evaluator is None:
        evaluator = GroundTruthEvaluator()
    initial_ppa = evaluator.evaluate(aig)

    budget = max(cfg.sa_iterations, 4)
    rows: List[OptimizerRow] = []

    def ml_cost() -> MlCost:
        return MlCost(delay_model, area_model=area_model)

    # Simulated annealing (the paper's search paradigm).
    annealer = SimulatedAnnealing(
        ml_cost(), AnnealingConfig(iterations=budget, keep_history=False), rng=cfg.seed
    )
    sa_result = annealer.run(aig)
    sa_ppa = evaluator.evaluate(sa_result.best_aig)
    rows.append(
        OptimizerRow(
            algorithm="simulated_annealing",
            cost_function="ml",
            ground_truth_delay_ps=sa_ppa.delay_ps,
            ground_truth_area_um2=sa_ppa.area_um2,
            cost_evaluations=sa_result.iterations_run + 1,
            runtime_seconds=sa_result.runtime_seconds,
        )
    )

    # Greedy steepest descent with the same evaluation budget.
    candidates_per_step = 2
    greedy_config = GreedyConfig(
        max_steps=max(1, budget // candidates_per_step),
        candidates_per_step=candidates_per_step,
        patience=max(2, budget // 4),
        keep_history=False,
    )
    greedy_result = GreedyOptimizer(ml_cost(), greedy_config, rng=cfg.seed + 1).run(aig)
    greedy_ppa = evaluator.evaluate(greedy_result.best_aig)
    rows.append(
        OptimizerRow(
            algorithm="greedy",
            cost_function="ml",
            ground_truth_delay_ps=greedy_ppa.delay_ps,
            ground_truth_area_um2=greedy_ppa.area_um2,
            cost_evaluations=greedy_result.evaluations,
            runtime_seconds=greedy_result.runtime_seconds,
        )
    )

    # Genetic algorithm with population*generations ~= budget.
    population = max(4, min(8, budget))
    generations = max(1, budget // population)
    genetic_config = GeneticConfig(
        population_size=population,
        generations=generations,
        genome_length=4,
        keep_history=False,
    )
    genetic_result = GeneticOptimizer(ml_cost(), genetic_config, rng=cfg.seed + 2).run(aig)
    genetic_ppa = evaluator.evaluate(genetic_result.best_aig)
    rows.append(
        OptimizerRow(
            algorithm="genetic",
            cost_function="ml",
            ground_truth_delay_ps=genetic_ppa.delay_ps,
            ground_truth_area_um2=genetic_ppa.area_um2,
            cost_evaluations=genetic_result.evaluations,
            runtime_seconds=genetic_result.runtime_seconds,
        )
    )

    # Proxy-cost SA baseline for context (the conventional flow).
    if include_proxy_baseline:
        proxy_annealer = SimulatedAnnealing(
            ProxyCost(), AnnealingConfig(iterations=budget, keep_history=False), rng=cfg.seed
        )
        proxy_result = proxy_annealer.run(aig)
        proxy_ppa = evaluator.evaluate(proxy_result.best_aig)
        rows.append(
            OptimizerRow(
                algorithm="simulated_annealing",
                cost_function="proxy",
                ground_truth_delay_ps=proxy_ppa.delay_ps,
                ground_truth_area_um2=proxy_ppa.area_um2,
                cost_evaluations=proxy_result.iterations_run + 1,
                runtime_seconds=proxy_result.runtime_seconds,
            )
        )

    return OptimizerComparisonResult(
        design=design_name,
        initial_delay_ps=initial_ppa.delay_ps,
        initial_area_um2=initial_ppa.area_um2,
        rows=rows,
    )
