"""Search-algorithm comparison under the ML cost function.

The paper argues its delay/area predictors are not tied to simulated
annealing ("our models can also be integrated into other conventional
approaches besides SA").  This experiment substantiates that claim: the same
ML cost function drives simulated annealing, a greedy steepest-descent
search, and a genetic algorithm, each given (approximately) the same number
of cost evaluations, and the resulting best AIGs are compared on their
*ground-truth* post-mapping delay and area.

Each algorithm is one campaign-engine cell, so the comparison can be
resumed from a file-backed store or fanned across workers like any other
suite run (an injected evaluator forces serial in-process execution so its
shared state stays meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.aig.graph import Aig
from repro.campaign.runner import EngineCell, run_cells
from repro.campaign.schedule import SchedulerLike
from repro.campaign.spec import cell_id_for, model_fingerprint
from repro.campaign.store import CellResultStore, ResultStore
from repro.designs.registry import build_design
from repro.errors import CampaignError
from repro.evaluation import GroundTruthEvaluator
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.opt.annealing import AnnealingConfig, SimulatedAnnealing
from repro.opt.budget import genetic_config_for_budget, greedy_config_for_budget
from repro.opt.cost import MlCost, ProxyCost
from repro.opt.genetic import GeneticOptimizer
from repro.opt.greedy import GreedyOptimizer

_CELL_FN = "repro.experiments.optimizer_comparison:run_optimizer_cell"


def delay_guard_tolerance(budget: int) -> float:
    """Allowed final-vs-initial delay ratio for the benchmark sanity guard.

    Every algorithm keeps the best candidate seen, so at realistic budgets
    the optimized design can only be marginally worse than the unoptimized
    one under the *ground-truth* metric (the ML cost ranks candidates with
    a model, so a small inversion is possible).  At tiny smoke budgets
    (single-digit evaluations) the searches are still in their random
    opening moves and the model has almost nothing to choose between, so
    the guard must widen rather than flake — the historical ±10 % band is
    only statistically sound from a few dozen evaluations up.
    """
    if budget >= 24:
        return 1.10
    if budget >= 8:
        return 1.25
    return 1.50


@dataclass
class OptimizerRow:
    """Outcome of one search algorithm on one design."""

    algorithm: str
    cost_function: str
    ground_truth_delay_ps: float
    ground_truth_area_um2: float
    cost_evaluations: int
    runtime_seconds: float


@dataclass
class OptimizerComparisonResult:
    """All algorithms, plus the unoptimized reference point."""

    design: str
    initial_delay_ps: float
    initial_area_um2: float
    rows: List[OptimizerRow]

    def best_row(self) -> OptimizerRow:
        """Row with the smallest ground-truth delay (ties broken by area)."""
        return min(
            self.rows, key=lambda row: (row.ground_truth_delay_ps, row.ground_truth_area_um2)
        )

    def row(self, algorithm: str) -> OptimizerRow:
        """Row of a specific algorithm."""
        for candidate in self.rows:
            if candidate.algorithm == algorithm:
                return candidate
        raise KeyError(f"no result for algorithm {algorithm!r}")

    def format_table(self) -> str:
        rows = [
            (
                row.algorithm,
                row.cost_function,
                f"{row.ground_truth_delay_ps:.1f}",
                f"{row.ground_truth_area_um2:.1f}",
                row.cost_evaluations,
                f"{row.runtime_seconds:.2f}s",
            )
            for row in self.rows
        ]
        table = format_table(
            ["algorithm", "cost", "delay (ps)", "area (um2)", "evaluations", "runtime"],
            rows,
            title=f"Search-algorithm comparison on {self.design} (ground-truth PPA of best AIG)",
        )
        return (
            table
            + f"\nunoptimized reference: delay = {self.initial_delay_ps:.1f} ps, "
            + f"area = {self.initial_area_um2:.1f} um2"
        )


def run_optimizer_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one search algorithm on one design and report ground-truth PPA."""
    algorithm = str(payload["algorithm"])
    cost_kind = str(payload["cost_function"])
    budget = int(payload["budget"])
    seed = int(payload["seed"])
    aig: Aig = payload["aig"] if payload.get("aig") is not None else build_design(
        str(payload["design"])
    )
    evaluator = payload.get("evaluator")
    if evaluator is None:
        # No injected shared evaluator: use this worker's persistent
        # ground-truth session so the mapper stays warm across cells.
        from repro.campaign.cells import session_for_cell

        evaluator = session_for_cell({"evaluator": "ground_truth"}).evaluator
    if cost_kind == "ml":
        cost = MlCost(payload["delay_model"], area_model=payload.get("area_model"))
    else:
        cost = ProxyCost()

    if algorithm == "simulated_annealing":
        result = SimulatedAnnealing(
            cost, AnnealingConfig(iterations=budget, keep_history=False), rng=seed
        ).run(aig)
        evaluations = result.iterations_run + 1
    elif algorithm == "greedy":
        result = GreedyOptimizer(
            cost, greedy_config_for_budget(budget), rng=seed
        ).run(aig)
        evaluations = result.evaluations
    elif algorithm == "genetic":
        result = GeneticOptimizer(
            cost, genetic_config_for_budget(budget), rng=seed
        ).run(aig)
        evaluations = result.evaluations
    else:
        raise CampaignError(f"unknown algorithm {algorithm!r}")

    ppa = evaluator.evaluate(result.best_aig)
    return {
        # design/budget are what the cost scheduler's observed-runtime
        # calibration groups and normalises on — keep them in the record.
        "design": str(payload["design"]),
        "budget": budget,
        "algorithm": algorithm,
        "cost_function": cost_kind,
        "ground_truth_delay_ps": ppa.delay_ps,
        "ground_truth_area_um2": ppa.area_um2,
        "cost_evaluations": evaluations,
        "runtime_seconds": result.runtime_seconds,
    }


def run_optimizer_comparison(
    delay_model,
    config: Optional[ExperimentConfig] = None,
    design: Optional[str] = None,
    area_model=None,
    initial: Optional[Aig] = None,
    include_proxy_baseline: bool = True,
    evaluator=None,
    store: Optional[CellResultStore] = None,
    max_workers: int = 1,
    scheduler: SchedulerLike = None,
) -> OptimizerComparisonResult:
    """Drive SA, greedy search, and a GA with the same ML cost function.

    The evaluation budget of every algorithm is derived from
    ``config.sa_iterations`` so the comparison is evaluation-count fair.
    An injected *evaluator* (cached/parallel/incremental) serves every
    ground-truth check, so repeated and structurally overlapping best-AIG
    evaluations share one state pool; injecting one forces serial execution
    (a process pool would silently fork that shared state).
    """
    cfg = config or ExperimentConfig()
    design_name = design or (cfg.test_designs[0] if cfg.test_designs else cfg.train_designs[0])
    aig = initial if initial is not None else build_design(design_name)
    shared_evaluator = evaluator
    if shared_evaluator is not None:
        max_workers = 1
    initial_ppa = (shared_evaluator or GroundTruthEvaluator()).evaluate(aig)

    budget = max(cfg.sa_iterations, 4)
    matrix = [
        ("simulated_annealing", "ml", cfg.seed),
        ("greedy", "ml", cfg.seed + 1),
        ("genetic", "ml", cfg.seed + 2),
    ]
    if include_proxy_baseline:
        # Proxy-cost SA baseline for context (the conventional flow).
        matrix.append(("simulated_annealing", "proxy", cfg.seed))

    cells: List[EngineCell] = []
    for algorithm, cost_kind, seed in matrix:
        identity = {
            "experiment": "optimizer_comparison",
            "design": design_name,
            "aig_key": aig.exact_key() if initial is not None else None,
            "algorithm": algorithm,
            "cost_function": cost_kind,
            "budget": budget,
            "seed": seed,
            # Retraining a model must invalidate resumed cells that used it.
            "delay_model": model_fingerprint(delay_model) if cost_kind == "ml" else None,
            "area_model": model_fingerprint(area_model) if cost_kind == "ml" else None,
        }
        payload = dict(identity)
        payload.update(
            {
                "aig": initial,
                "delay_model": delay_model,
                "area_model": area_model,
                "evaluator": shared_evaluator,
            }
        )
        cells.append(
            EngineCell(cell_id=cell_id_for(identity), fn=_CELL_FN, payload=payload)
        )

    result_store = store if store is not None else ResultStore()
    run_cells(cells, result_store, max_workers=max_workers, scheduler=scheduler)

    latest = result_store.latest()
    rows: List[OptimizerRow] = []
    for cell in cells:
        record = latest.get(cell.cell_id)
        if record is None or record.get("status") != "ok":
            error = record.get("error", "never executed") if record else "never executed"
            raise CampaignError(
                f"optimizer cell {cell.payload['algorithm']}/"
                f"{cell.payload['cost_function']} failed: {error}"
            )
        rows.append(
            OptimizerRow(
                algorithm=str(record["algorithm"]),
                cost_function=str(record["cost_function"]),
                ground_truth_delay_ps=float(record["ground_truth_delay_ps"]),
                ground_truth_area_um2=float(record["ground_truth_area_um2"]),
                cost_evaluations=int(record["cost_evaluations"]),
                runtime_seconds=float(record["runtime_seconds"]),
            )
        )
    return OptimizerComparisonResult(
        design=design_name,
        initial_delay_ps=initial_ppa.delay_ps,
        initial_area_um2=initial_ppa.area_um2,
        rows=rows,
    )
