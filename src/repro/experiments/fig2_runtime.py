"""Fig. 2 — per-iteration runtime of the baseline vs ground-truth flows.

The paper times one iteration of the original (proxy-driven) optimization
flow against one iteration of the ground-truth flow (which adds technology
mapping and STA) on the eight benchmark designs and observes slowdowns of up
to roughly 20x, growing with design size.  This experiment measures the same
two quantities per design with the SA engine's stage timers.  Each design is
one campaign-engine cell, so the sweep is resumable from a file-backed (or
sharded) store and fans across a process pool like any other suite run; the
cells deliberately build *fresh* flows and evaluators — runtime is the
quantity being measured, so nothing here may come out of a warm cache.

Note on absolute ratios: the paper's transformations run inside ABC (C code),
so its per-iteration baseline cost is very small; in this pure-Python stack
the transformation step is relatively more expensive and the overall ratio is
smaller, but the qualitative result — the ground-truth flow's overhead is the
mapping + STA step and grows with design size — is unchanged.  Table IV's
comparison of the *added* per-iteration cost (mapping+STA vs ML inference) is
unaffected by this difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.runner import EngineCell, run_cells
from repro.campaign.schedule import SchedulerLike
from repro.campaign.spec import cell_id_for, default_context_fingerprint
from repro.campaign.store import CellResultStore, ResultStore
from repro.designs.registry import build_design
from repro.errors import CampaignError
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.opt.annealing import AnnealingConfig
from repro.opt.flows import BaselineFlow, GroundTruthFlow, measure_iteration_runtime

_CELL_FN = "repro.experiments.fig2_runtime:run_fig2_cell"


@dataclass
class RuntimeComparison:
    """Per-design baseline vs ground-truth per-iteration runtime."""

    design: str
    num_ands: int
    baseline_seconds: float
    ground_truth_seconds: float

    @property
    def slowdown(self) -> float:
        """Ground-truth flow runtime divided by baseline runtime."""
        if self.baseline_seconds <= 0:
            return float("inf")
        return self.ground_truth_seconds / self.baseline_seconds


@dataclass
class Fig2Result:
    """All per-design runtime comparisons."""

    rows: List[RuntimeComparison]

    @property
    def max_slowdown(self) -> float:
        """Largest slowdown over the designs (paper: ~20x)."""
        return max(row.slowdown for row in self.rows)

    @property
    def mean_slowdown(self) -> float:
        """Mean slowdown over the designs."""
        return sum(row.slowdown for row in self.rows) / len(self.rows)

    def format_table(self) -> str:
        rows = [
            (
                f"{row.design} ({row.num_ands})",
                row.baseline_seconds,
                row.ground_truth_seconds,
                f"{row.slowdown:.1f}x",
            )
            for row in sorted(self.rows, key=lambda r: r.num_ands)
        ]
        table = format_table(
            ["design (#nodes)", "baseline s/iter", "ground-truth s/iter", "slowdown"],
            rows,
            title="Fig. 2 reproduction — per-iteration runtime, baseline vs ground truth",
            float_format="{:.4f}",
        )
        return table + (
            f"\nmean slowdown = {self.mean_slowdown:.1f}x, "
            f"max slowdown = {self.max_slowdown:.1f}x"
        )


@dataclass
class IncrementalRuntimeRow:
    """Evaluation-work comparison of one SA run with the incremental engine.

    ``dp_nodes_possible`` counts the match-DP node visits a from-scratch
    evaluator would have performed on the same evaluation sequence;
    ``dp_nodes_evaluated`` counts what the incremental evaluator actually
    performed (structural revisits cost zero, incrementally re-mapped
    candidates cost only their dirty cone).
    """

    design: str
    num_ands: int
    iterations: int
    evaluations: int
    structural_hits: int
    incremental_maps: int
    full_maps: int
    dp_nodes_evaluated: int
    dp_nodes_possible: int
    evaluation_seconds: float

    @property
    def visit_reduction(self) -> float:
        """From-scratch node visits divided by actual node visits (>= 1)."""
        if self.dp_nodes_evaluated == 0:
            return float("inf") if self.dp_nodes_possible else 1.0
        return self.dp_nodes_possible / self.dp_nodes_evaluated


@dataclass
class Fig2IncrementalResult:
    """Incremental-evaluation comparison rows (fig. 2 companion)."""

    rows: List[IncrementalRuntimeRow]

    def format_table(self) -> str:
        rows = [
            (
                f"{row.design} ({row.num_ands})",
                row.iterations,
                f"{row.structural_hits}/{row.incremental_maps}/{row.full_maps}",
                row.dp_nodes_evaluated,
                row.dp_nodes_possible,
                f"{row.visit_reduction:.2f}x",
                row.evaluation_seconds,
            )
            for row in sorted(self.rows, key=lambda r: r.num_ands)
        ]
        return format_table(
            [
                "design (#nodes)",
                "SA iters",
                "hit/inc/full",
                "visits actual",
                "visits from-scratch",
                "reduction",
                "eval s",
            ],
            rows,
            title=(
                "Fig. 2 companion — SA evaluation work, incremental vs "
                "from-scratch mapping+STA"
            ),
            float_format="{:.2f}",
        )


def run_fig2_incremental(
    config: Optional[ExperimentConfig] = None,
    designs: Optional[Sequence[str]] = None,
    iterations: Optional[int] = None,
    max_dirty_fraction: float = 0.9,
) -> Fig2IncrementalResult:
    """Run SA with the incremental evaluator and report evaluation work.

    Defaults to the largest registered design (where from-scratch
    evaluation hurts most) and to enough SA iterations for the search to
    reach its converged regime, which is where the paper's optimization
    loops spend most of their time and where structure revisits and small
    dirty cones dominate.
    """
    from repro.api.incremental import IncrementalEvaluator
    from repro.opt.flows import GroundTruthFlow

    cfg = config or ExperimentConfig()
    if designs is None:
        built = {name: build_design(name) for name in cfg.all_designs()}
        names = [max(built, key=lambda n: built[n].num_ands)]
    else:
        built = {name: build_design(name) for name in designs}
        names = list(designs)
    sa_iterations = iterations if iterations is not None else 120

    rows: List[IncrementalRuntimeRow] = []
    for name in names:
        aig = built[name]
        aig.journal.enable()
        evaluator = IncrementalEvaluator(max_dirty_fraction=max_dirty_fraction)
        flow = GroundTruthFlow(evaluator=evaluator)
        run_config = AnnealingConfig(iterations=sa_iterations, keep_history=False)
        result = flow.run(aig, config=run_config, rng=cfg.seed)
        stats = evaluator.stats
        rows.append(
            IncrementalRuntimeRow(
                design=name,
                num_ands=aig.num_ands,
                iterations=sa_iterations,
                evaluations=stats.evaluations,
                structural_hits=stats.structural_hits,
                incremental_maps=stats.incremental_maps,
                full_maps=stats.full_maps,
                dp_nodes_evaluated=stats.dp_nodes_evaluated,
                dp_nodes_possible=stats.dp_nodes_possible,
                evaluation_seconds=result.annealing.stage_timer.total("evaluation"),
            )
        )
    return Fig2IncrementalResult(rows=rows)


def run_fig2_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Time baseline vs ground-truth iterations on one design.

    Flows and evaluators are built fresh inside the cell: the measured
    quantity *is* the from-scratch per-iteration cost, so warm worker
    sessions must not serve it.
    """
    name = str(payload["design"])
    iterations = int(payload["iterations"])
    seed = int(payload["seed"])
    aig = build_design(name)
    run_config = AnnealingConfig(iterations=iterations, keep_history=False)
    base_rt = measure_iteration_runtime(
        BaselineFlow(), aig, iterations=iterations, rng=seed, config=run_config
    )
    gt_rt = measure_iteration_runtime(
        GroundTruthFlow(), aig, iterations=iterations, rng=seed, config=run_config
    )
    return {
        "design": name,
        # The cost scheduler normalises observed runtimes by this budget.
        "iterations": iterations,
        "num_ands": aig.num_ands,
        "baseline_seconds": base_rt.total_seconds,
        "ground_truth_seconds": gt_rt.total_seconds,
    }


def run_fig2_runtime(
    config: Optional[ExperimentConfig] = None,
    designs: Optional[Sequence[str]] = None,
    catalog: Optional[Sequence[List[str]]] = None,
    store: Optional[CellResultStore] = None,
    max_workers: int = 1,
    scheduler: SchedulerLike = None,
) -> Fig2Result:
    """Measure baseline vs ground-truth per-iteration runtime on each design.

    The per-design sweep runs through the campaign engine: *store*
    (file- or directory-backed) makes it resumable, *max_workers* fans
    designs across a process pool, *scheduler* picks the submission order.
    """
    cfg = config or ExperimentConfig()
    names = list(designs) if designs is not None else cfg.all_designs()
    # The measured ground-truth cost depends on the cell library and mapper
    # configuration, so resumed cells must invalidate when those change.
    context = default_context_fingerprint()
    cells: List[EngineCell] = []
    for name in names:
        identity = {
            "experiment": "fig2_runtime",
            "design": name,
            "iterations": cfg.runtime_iterations,
            "seed": cfg.seed,
            "context": context,
        }
        cells.append(
            EngineCell(cell_id=cell_id_for(identity), fn=_CELL_FN, payload=dict(identity))
        )
    result_store = store if store is not None else ResultStore()
    run_cells(cells, result_store, max_workers=max_workers, scheduler=scheduler)

    latest = result_store.latest()
    rows: List[RuntimeComparison] = []
    for name, cell in zip(names, cells):
        record = latest.get(cell.cell_id)
        if record is None or record.get("status") != "ok":
            error = record.get("error", "never executed") if record else "never executed"
            raise CampaignError(f"fig2 cell for design {name!r} failed: {error}")
        rows.append(
            RuntimeComparison(
                design=name,
                num_ands=int(record["num_ands"]),
                baseline_seconds=float(record["baseline_seconds"]),
                ground_truth_seconds=float(record["ground_truth_seconds"]),
            )
        )
    return Fig2Result(rows=rows)
