"""Table I — AIGs with identical proxy metrics but different true PPA.

The paper exhibits two AIGs of the same design with the same level and node
count whose post-mapping delay differs by more than 30 % (and area by a few
percent): an optimizer driven by proxy metrics cannot tell them apart.  This
experiment searches a pool of perturbed variants for such proxy ties and
reports the most divergent pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datagen.generator import DatasetGenerator, DesignCorpus, GenerationConfig
from repro.designs.registry import build_design
from repro.experiments.report import format_table


@dataclass(frozen=True)
class ProxyTie:
    """Two AIG variants indistinguishable by proxy metrics."""

    level: int
    node_count: int
    delay_a_ps: float
    delay_b_ps: float
    area_a_um2: float
    area_b_um2: float

    @property
    def delay_gap_ratio(self) -> float:
        """Larger delay divided by smaller delay (>= 1)."""
        low, high = sorted((self.delay_a_ps, self.delay_b_ps))
        return high / low if low > 0 else 1.0

    @property
    def area_gap_ratio(self) -> float:
        """Larger area divided by smaller area (>= 1)."""
        low, high = sorted((self.area_a_um2, self.area_b_um2))
        return high / low if low > 0 else 1.0


@dataclass
class ProxyTieResult:
    """All proxy ties found in the variant pool."""

    design: str
    ties: List[ProxyTie]
    samples: int

    @property
    def worst_tie(self) -> Optional[ProxyTie]:
        """The tie with the largest delay divergence."""
        if not self.ties:
            return None
        return max(self.ties, key=lambda t: t.delay_gap_ratio)

    def format_table(self) -> str:
        worst = self.worst_tie
        if worst is None:
            return (
                f"Table I reproduction — no proxy ties found among {self.samples} "
                f"variants of {self.design}"
            )
        rows = [
            ("AIG1", worst.level, worst.node_count, worst.delay_a_ps, worst.area_a_um2),
            ("AIG2", worst.level, worst.node_count, worst.delay_b_ps, worst.area_b_um2),
        ]
        table = format_table(
            ["candidate", "level", "nodes", "delay (ps)", "area (um2)"],
            rows,
            title=f"Table I reproduction — proxy tie on {self.design} "
            f"({len(self.ties)} ties in {self.samples} variants)",
        )
        return table + (
            f"\ndelay differs by {worst.delay_gap_ratio:.2f}x at identical proxy metrics"
        )


def run_table1_proxy_ties(
    design: str = "mult",
    samples: int = 40,
    seed: int = 3,
    corpus: Optional[DesignCorpus] = None,
) -> ProxyTieResult:
    """Search perturbed variants of *design* for proxy-metric ties."""
    if corpus is None:
        generator = DatasetGenerator(GenerationConfig(samples_per_design=samples, seed=seed))
        corpus = generator.generate_for_aig(design, build_design(design), rng=seed)

    buckets: Dict[Tuple[int, int], List[int]] = {}
    for index, aig in enumerate(corpus.aigs):
        key = (aig.depth(), aig.num_ands)
        buckets.setdefault(key, []).append(index)

    ties: List[ProxyTie] = []
    for (level, nodes), indices in buckets.items():
        if len(indices) < 2:
            continue
        # Compare the two most delay-divergent members of the bucket.
        ordered = sorted(indices, key=lambda i: corpus.delays_ps[i])
        first, last = ordered[0], ordered[-1]
        if first == last:
            continue
        ties.append(
            ProxyTie(
                level=level,
                node_count=nodes,
                delay_a_ps=float(corpus.delays_ps[last]),
                delay_b_ps=float(corpus.delays_ps[first]),
                area_a_um2=float(corpus.areas_um2[last]),
                area_b_um2=float(corpus.areas_um2[first]),
            )
        )
    return ProxyTieResult(design=corpus.design, ties=ties, samples=len(corpus.aigs))
