"""Fig. 1 — correlation between AIG levels and post-mapping delay.

The paper plots post-technology-mapping maximum delay against the number of
AIG levels for a pool of AIG variants of a multiplier design and reports a
Pearson correlation of only 0.74, with the best post-mapping delay *not*
achieved by the variant with the fewest levels.  This experiment regenerates
that study: perturb the multiplier, map and time every variant, and report
the correlation plus the level/delay pairs needed to redraw the scatter plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.datagen.generator import DatasetGenerator, GenerationConfig
from repro.designs.registry import build_design
from repro.errors import ReproError
from repro.experiments.report import format_table
from repro.ml.metrics import pearson_correlation


@dataclass
class CorrelationResult:
    """Outcome of the Fig. 1 study."""

    design: str
    levels: List[float]
    delays_ps: List[float]
    node_counts: List[int]
    pearson: float
    best_delay_ps: float
    level_of_best_delay: float
    min_level: float
    delay_at_min_level_ps: float

    @property
    def best_delay_is_at_min_level(self) -> bool:
        """True when the minimum-level variant also has the best delay."""
        return self.level_of_best_delay <= self.min_level

    @property
    def delay_penalty_at_min_level(self) -> float:
        """Relative delay penalty of the min-level variant vs the true best."""
        if self.best_delay_ps == 0:
            return 0.0
        return (self.delay_at_min_level_ps - self.best_delay_ps) / self.best_delay_ps

    def scatter_points(self) -> List[Tuple[float, float]]:
        """(level, delay) pairs for plotting the Fig. 1 scatter."""
        return list(zip(self.levels, self.delays_ps))

    def format_table(self) -> str:
        rows = [
            ("samples", len(self.levels)),
            ("pearson(level, delay)", round(self.pearson, 4)),
            ("best delay (ps)", round(self.best_delay_ps, 2)),
            ("level of best-delay AIG", self.level_of_best_delay),
            ("minimum level", self.min_level),
            ("delay at minimum level (ps)", round(self.delay_at_min_level_ps, 2)),
            ("delay penalty at min level", f"{self.delay_penalty_at_min_level * 100:.1f}%"),
        ]
        return format_table(
            ["metric", "value"],
            rows,
            title=f"Fig. 1 reproduction — proxy correlation on {self.design}",
        )


def run_fig1_correlation(
    design: str = "mult",
    samples: int = 40,
    seed: int = 1,
    generator: Optional[DatasetGenerator] = None,
) -> CorrelationResult:
    """Run the proxy-correlation study and return the collected data."""
    if samples < 3:
        raise ReproError("the correlation study needs at least 3 samples")
    gen = generator or DatasetGenerator(
        GenerationConfig(samples_per_design=samples, seed=seed)
    )
    base = build_design(design)
    corpus = gen.generate_for_aig(design, base, rng=seed)

    levels = [float(aig.depth()) for aig in corpus.aigs]
    node_counts = [aig.num_ands for aig in corpus.aigs]
    delays = [float(d) for d in corpus.delays_ps]
    correlation = pearson_correlation(levels, delays)

    best_index = min(range(len(delays)), key=lambda i: delays[i])
    min_level = min(levels)
    min_level_indices = [i for i, lvl in enumerate(levels) if lvl == min_level]
    delay_at_min_level = min(delays[i] for i in min_level_indices)

    return CorrelationResult(
        design=design,
        levels=levels,
        delays_ps=delays,
        node_counts=node_counts,
        pearson=correlation,
        best_delay_ps=delays[best_index],
        level_of_best_delay=levels[best_index],
        min_level=min_level,
        delay_at_min_level_ps=delay_at_min_level,
    )
