"""Post-mapping optimization study across the benchmark designs.

Logic synthesis does not stop at technology mapping: gate sizing and fanout
buffering routinely recover delay on the mapped netlist.  This study maps
every benchmark design, runs the post-mapping optimizer, and reports the
delay/area movement — both to validate the substrate (the optimizer must
never make delay worse) and to quantify how much headroom the mapped
netlists leave on the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.designs.registry import build_design
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.library.sky130_lite import load_sky130_lite
from repro.mapping.mapper import TechnologyMapper
from repro.mapping.postopt import PostMappingOptimizer, PostOptOptions


@dataclass
class PostOptRow:
    """Post-mapping optimization outcome for one design."""

    design: str
    gates: int
    delay_before_ps: float
    delay_after_ps: float
    area_before_um2: float
    area_after_um2: float
    upsized: int
    downsized: int
    buffers: int

    @property
    def delay_improvement_percent(self) -> float:
        if self.delay_before_ps == 0:
            return 0.0
        return (self.delay_before_ps - self.delay_after_ps) / self.delay_before_ps * 100.0

    @property
    def area_change_percent(self) -> float:
        if self.area_before_um2 == 0:
            return 0.0
        return (self.area_after_um2 - self.area_before_um2) / self.area_before_um2 * 100.0


@dataclass
class PostOptStudyResult:
    """Per-design rows plus aggregate improvements."""

    rows: List[PostOptRow]

    @property
    def mean_delay_improvement_percent(self) -> float:
        return float(np.mean([row.delay_improvement_percent for row in self.rows]))

    @property
    def mean_area_change_percent(self) -> float:
        return float(np.mean([row.area_change_percent for row in self.rows]))

    def format_table(self) -> str:
        rows = [
            (
                row.design,
                row.gates,
                f"{row.delay_before_ps:.1f}",
                f"{row.delay_after_ps:.1f}",
                f"{row.delay_improvement_percent:.1f}%",
                f"{row.area_change_percent:+.1f}%",
                row.upsized,
                row.downsized,
                row.buffers,
            )
            for row in self.rows
        ]
        table = format_table(
            [
                "design",
                "gates",
                "delay before",
                "delay after",
                "delay gain",
                "area change",
                "upsized",
                "downsized",
                "buffers",
            ],
            rows,
            title="Post-mapping optimization (gate sizing + fanout buffering)",
        )
        return (
            table
            + f"\nmean delay improvement = {self.mean_delay_improvement_percent:.2f}%   "
            + f"mean area change = {self.mean_area_change_percent:+.2f}%"
        )


def run_postopt_study(
    config: Optional[ExperimentConfig] = None,
    designs: Optional[Sequence[str]] = None,
    options: Optional[PostOptOptions] = None,
) -> PostOptStudyResult:
    """Map every design, run post-mapping optimization, and summarise."""
    cfg = config or ExperimentConfig()
    names = list(designs) if designs is not None else cfg.all_designs()
    library = load_sky130_lite()
    mapper = TechnologyMapper(library)
    optimizer = PostMappingOptimizer(library, options)

    rows: List[PostOptRow] = []
    for name in names:
        aig = build_design(name)
        netlist = mapper.map(aig)
        _, report = optimizer.optimize(netlist)
        rows.append(
            PostOptRow(
                design=name,
                gates=netlist.num_gates,
                delay_before_ps=report.delay_before_ps,
                delay_after_ps=report.delay_after_ps,
                area_before_um2=report.area_before_um2,
                area_after_um2=report.area_after_um2,
                upsized=report.upsized_gates,
                downsized=report.downsized_gates,
                buffers=report.buffers_inserted,
            )
        )
    return PostOptStudyResult(rows=rows)
