"""Area-prediction accuracy on training and unseen designs.

The paper's abstract states that ML models predict both post-mapping *delay
and area*; its evaluation tables only report delay accuracy.  This experiment
fills that gap with the exact Table III protocol applied to the area label:
train a gradient-boosted model on the four training designs' post-mapping
areas and report per-design mean / max / std absolute percentage error,
including on the four unseen designs.

It also reports the error of the conventional area proxy (AND-node count
scaled by a fitted area-per-node constant) so the value added by the learned
model over the proxy is visible directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datagen.generator import DatasetGenerator, DesignCorpus, GenerationConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.metrics import PercentErrorStats, percent_error_stats
from repro.utils.timer import Timer


@dataclass
class AreaDesignAccuracy:
    """Per-design area-prediction accuracy (model vs node-count proxy)."""

    design: str
    role: str
    model_stats: PercentErrorStats
    proxy_stats: PercentErrorStats


@dataclass
class AreaAccuracyResult:
    """Full area-accuracy study."""

    rows: List[AreaDesignAccuracy]
    area_model: GradientBoostingRegressor
    area_per_and_um2: float
    train_designs: List[str]
    test_designs: List[str]
    training_seconds: float

    @property
    def mean_model_error(self) -> float:
        """Mean absolute %error of the learned model over all designs."""
        return float(np.mean([row.model_stats.mean for row in self.rows]))

    @property
    def mean_proxy_error(self) -> float:
        """Mean absolute %error of the node-count proxy over all designs."""
        return float(np.mean([row.proxy_stats.mean for row in self.rows]))

    @property
    def mean_model_error_test(self) -> float:
        """Model error restricted to the unseen designs."""
        test = [row.model_stats.mean for row in self.rows if row.role == "test"]
        return float(np.mean(test)) if test else 0.0

    def format_table(self) -> str:
        rows = []
        for row in self.rows:
            rows.append(
                (
                    row.role,
                    row.design,
                    f"{row.model_stats.mean:.2f}%",
                    f"{row.model_stats.max:.2f}%",
                    f"{row.model_stats.std:.2f}%",
                    f"{row.proxy_stats.mean:.2f}%",
                )
            )
        table = format_table(
            ["role", "design", "model mean %err", "model max %err", "model std %err", "proxy mean %err"],
            rows,
            title="Area-prediction accuracy (model vs AND-count proxy)",
        )
        summary = (
            f"\naverage model %err = {self.mean_model_error:.2f}%   "
            f"average proxy %err = {self.mean_proxy_error:.2f}%   "
            f"fitted area/AND = {self.area_per_and_um2:.3f} um2"
        )
        return table + summary


def run_area_accuracy(
    config: Optional[ExperimentConfig] = None,
    corpora: Optional[Dict[str, DesignCorpus]] = None,
) -> AreaAccuracyResult:
    """Run the area-prediction accuracy study."""
    cfg = config or ExperimentConfig()
    generator = DatasetGenerator(
        GenerationConfig(samples_per_design=cfg.samples_per_design, seed=cfg.seed)
    )
    if corpora is None:
        corpora = generator.generate(cfg.all_designs(), rng=cfg.seed)
    dataset = generator.to_dataset(corpora)

    train_designs = [d for d in cfg.train_designs if d in corpora]
    test_designs = [d for d in cfg.test_designs if d in corpora]
    train = dataset.for_designs(train_designs)
    train_areas = np.asarray(train.areas, dtype=np.float64)

    with Timer() as training_timer:
        area_model = GradientBoostingRegressor(cfg.gbdt_params, rng=cfg.seed + 1)
        area_model.fit(train.features, train_areas)
    training_seconds = training_timer.elapsed

    # The proxy the baseline flow uses for area is the AND-node count; fit the
    # single scale factor on the training designs (least-squares through 0).
    train_nodes = np.array(
        [aig.num_ands for d in train_designs for aig in corpora[d].aigs], dtype=np.float64
    )
    area_per_and = float(np.sum(train_nodes * train_areas) / max(np.sum(train_nodes**2), 1e-9))

    rows: List[AreaDesignAccuracy] = []
    for design, corpus in corpora.items():
        role = "train" if design in train_designs else "test"
        model_pred = area_model.predict(corpus.features)
        nodes = np.array([aig.num_ands for aig in corpus.aigs], dtype=np.float64)
        proxy_pred = nodes * area_per_and
        rows.append(
            AreaDesignAccuracy(
                design=design,
                role=role,
                model_stats=percent_error_stats(corpus.areas_um2, model_pred),
                proxy_stats=percent_error_stats(corpus.areas_um2, proxy_pred),
            )
        )

    return AreaAccuracyResult(
        rows=rows,
        area_model=area_model,
        area_per_and_um2=area_per_and,
        train_designs=train_designs,
        test_designs=test_designs,
        training_seconds=training_seconds,
    )
