"""Lint engine: file discovery, rule execution, baseline subtraction.

The engine is itself held to the invariants it checks: file discovery is
sorted (D5), results are ordered by location (D1), and nothing here reads
a clock or global random state.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.devtools.lint.baseline import Baseline, BaselineMatch
from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.finding import Finding
from repro.devtools.lint.registry import Rule, all_rules
from repro.devtools.lint.walker import walk_file

#: Pseudo-rule id for files that fail to parse; never baselined away.
PARSE_ERROR_RULE = "E1"


@dataclass
class LintResult:
    """Everything one lint run produced, pre- and post-baseline."""

    root: Path
    files: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    match: Optional[BaselineMatch] = None

    @property
    def new_findings(self) -> List[Finding]:
        return self.match.new_findings if self.match else list(self.findings)

    @property
    def suppressed(self) -> List[Finding]:
        return self.match.suppressed if self.match else []

    @property
    def stale_baseline(self) -> List[Dict[str, object]]:
        return self.match.stale if self.match else []

    @property
    def exit_code(self) -> int:
        return 1 if self.new_findings else 0

    def summary_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.new_findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def discover_files(
    root: Path, paths: Sequence[str], config: LintConfig
) -> List[Path]:
    """All ``.py`` files under *paths*, sorted, minus excluded ones."""
    seen = set()
    ordered: List[Path] = []
    for entry in paths:
        target = (root / entry).resolve() if not Path(entry).is_absolute() else Path(entry)
        if target.is_file():
            candidates = [target]
        elif target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        else:
            raise FileNotFoundError(f"lint path does not exist: {entry}")
        for candidate in candidates:
            rel = _rel_path(candidate, root)
            if config.excluded(rel) or rel in seen:
                continue
            seen.add(rel)
            ordered.append(candidate)
    ordered.sort(key=lambda p: _rel_path(p, root))
    return ordered


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def build_rules(config: LintConfig) -> List[Rule]:
    rules: List[Rule] = []
    for cls in all_rules():
        if config.select is not None and cls.rule_id not in config.select:
            continue
        rules.append(cls())
    return rules


def run_lint(
    root: Path,
    paths: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint *paths* (default: the configured roots) under *root*.

    When *baseline* is given, findings it covers are subtracted; the
    result's ``new_findings`` / ``exit_code`` reflect only the remainder.
    """
    config = config if config is not None else LintConfig()
    scan_paths = list(paths) if paths else list(config.paths)
    rules = build_rules(config)
    memoized = frozenset(config.memoized_apis)
    result = LintResult(root=root)
    all_findings: List[Finding] = []
    for file_path in discover_files(root, scan_paths, config):
        rel = _rel_path(file_path, root)
        result.files.append(rel)
        try:
            source = file_path.read_text(encoding="utf-8")
            ctx = walk_file(rel, source, rules, memoized_apis=memoized)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            all_findings.append(
                Finding(
                    path=rel,
                    line=line,
                    col=0,
                    rule_id=PARSE_ERROR_RULE,
                    message=f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}",
                    snippet="",
                )
            )
            continue
        for finding in ctx.findings:
            if config.rule_allows(finding.rule_id, rel):
                continue
            if ctx.pragmas.suppresses(finding.line, finding.rule_id):
                continue
            all_findings.append(finding)
    all_findings.sort(key=Finding.sort_key)
    result.findings = all_findings
    if baseline is not None:
        result.match = baseline.match(all_findings)
    return result


def self_check() -> int:  # pragma: no cover - convenience entry point
    """Lint this repository with its own configuration; return exit code."""
    from repro.devtools.lint.cli import main

    return main([])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(self_check())
