"""Shared single-parse file walker.

Each file is read and parsed exactly once; the resulting AST is traversed
exactly once, dispatching every node to every rule that declared interest
in its type.  The walker maintains the context rules need to reason about
scope — parent links, the enclosing function/class stacks, and a resolved
import table — so individual rules stay small and never re-walk the tree
from the root.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.devtools.lint.finding import Finding
from repro.devtools.lint.pragmas import PragmaIndex
from repro.devtools.lint.registry import Rule


class ImportTable:
    """Maps local names to the dotted module/object paths they denote.

    ``import numpy as np``              → ``np -> numpy``
    ``import os.path``                  → ``os -> os``
    ``from random import randint as r`` → ``r -> random.randint``
    """

    def __init__(self) -> None:
        self._names: Dict[str, str] = {}

    def record(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self._names[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                self._names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path for a Name/Attribute chain, or ``None``.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when ``np``
        maps to ``numpy``; chains rooted at unknown names resolve to the
        literal chain text so callers can still match absolute spellings.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._names.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class FileContext:
    """Everything rules may consult while visiting one file."""

    def __init__(
        self,
        rel_path: str,
        source: str,
        tree: ast.Module,
        memoized_apis: frozenset = frozenset(),
    ) -> None:
        self.rel_path = rel_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self.pragmas = PragmaIndex(self.lines)
        self.imports = ImportTable()
        self.memoized_apis = memoized_apis
        self.findings: List[Finding] = []
        # Traversal state maintained by the walker:
        self.class_stack: List[ast.ClassDef] = []
        self.func_stack: List[ast.AST] = []
        # Parent links for the whole tree, built up front so rules may ask
        # for ancestors of nodes the depth-first dispatch has not reached.
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # ------------------------------------------------------------------ #
    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST):
        """Yield parents from the immediate one to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self) -> Optional[ast.AST]:
        return self.func_stack[-1] if self.func_stack else None

    def enclosing_class(self) -> Optional[ast.ClassDef]:
        return self.class_stack[-1] if self.class_stack else None


_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)


def walk_file(
    rel_path: str,
    source: str,
    rules: Sequence[Rule],
    memoized_apis: frozenset = frozenset(),
) -> FileContext:
    """Parse *source* once and run every rule over the tree.

    Raises :class:`SyntaxError` if the file does not parse; the engine
    turns that into a finding.
    """
    tree = ast.parse(source, filename=rel_path)
    ctx = FileContext(rel_path, source, tree, memoized_apis=memoized_apis)

    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        rule.begin_file(ctx)
        for node_type in rule.interests:
            dispatch.setdefault(node_type, []).append(rule)

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            ctx.imports.record(node)
        interested = dispatch.get(type(node))
        if interested:
            for rule in interested:
                rule.visit(node, ctx)
        is_func = isinstance(node, _FUNC_TYPES)
        is_class = isinstance(node, ast.ClassDef)
        if is_func:
            ctx.func_stack.append(node)
        if is_class:
            ctx.class_stack.append(node)
        for child in ast.iter_child_nodes(node):
            visit(child)
        if is_func:
            ctx.func_stack.pop()
        if is_class:
            ctx.class_stack.pop()

    visit(tree)
    for rule in rules:
        rule.end_file(ctx)
    return ctx
