"""Rule base class and registry.

Rules subclass :class:`Rule`, declare the AST node types they want to see
in :attr:`Rule.interests`, and register themselves with the
:func:`register_rule` class decorator.  The shared walker parses each file
exactly once and dispatches every node to every interested rule, so adding
a rule never adds a parse or a traversal.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple, Type

from repro.devtools.lint.finding import Finding


class Rule:
    """One statically-checkable invariant.

    Subclasses set the class attributes below and implement :meth:`visit`
    (called once per interesting node during the shared walk).  Hooks
    :meth:`begin_file` / :meth:`end_file` bracket each file; per-file state
    must be reset in :meth:`begin_file` because one rule instance is reused
    across the whole run.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    interests: Tuple[Type[ast.AST], ...] = ()

    def begin_file(self, ctx) -> None:  # pragma: no cover - default no-op
        pass

    def visit(self, node: ast.AST, ctx) -> None:  # pragma: no cover - default no-op
        pass

    def end_file(self, ctx) -> None:  # pragma: no cover - default no-op
        pass

    # ------------------------------------------------------------------ #
    def report(self, ctx, node: ast.AST, message: str) -> None:
        """Emit a finding anchored at *node*."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ctx.line_text(line)
        ctx.findings.append(
            Finding(
                path=ctx.rel_path,
                line=line,
                col=col,
                rule_id=self.rule_id,
                message=message,
                snippet=snippet,
            )
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *cls* to the global rule registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by rule id."""
    # Import for the registration side effect; idempotent after first call.
    from repro.devtools.lint.rules import concurrency, determinism  # noqa: F401

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    for cls in all_rules():
        if cls.rule_id == rule_id:
            return cls
    raise KeyError(rule_id)
