"""Inline suppression pragmas.

A violation may be acknowledged in-source with::

    risky_line()  # repro-lint: ignore[D1] -- one-line justification

or, for lines too long to carry a trailing comment, with a standalone
pragma comment that applies to the next code line::

    # repro-lint: ignore[C1,C3] -- justification
    risky_line()

The rule list is mandatory — ``ignore[*]`` silences every rule on the
line, but a named rule list is strongly preferred so the suppression
stops matching when the rule it excused is retired.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9*,\s]+)\]")

_COMMENT_ONLY_RE = re.compile(r"^\s*#")


def _parse_rule_list(raw: str) -> FrozenSet[str]:
    rules = []
    for token in raw.split(","):
        token = token.strip()
        if token:
            rules.append(token.upper() if token != "*" else "*")
    return frozenset(rules)


class PragmaIndex:
    """Per-file map from line number to the rule ids suppressed there."""

    def __init__(self, lines: List[str]) -> None:
        self._by_line: Dict[int, FrozenSet[str]] = {}
        pending: FrozenSet[str] = frozenset()
        for lineno, text in enumerate(lines, start=1):
            match = PRAGMA_RE.search(text)
            rules = _parse_rule_list(match.group(1)) if match else frozenset()
            if _COMMENT_ONLY_RE.match(text) or not text.strip():
                # Standalone pragma comments accumulate and bind to the next
                # code line; blank/comment lines pass pending pragmas along.
                pending = pending | rules
                continue
            effective = rules | pending
            pending = frozenset()
            if effective:
                self._by_line[lineno] = effective

    def suppresses(self, line: int, rule_id: str) -> bool:
        rules = self._by_line.get(line, frozenset())
        return rule_id in rules or "*" in rules

    def suppressed_lines(self) -> Dict[int, FrozenSet[str]]:
        return dict(self._by_line)
