"""Suppression baseline.

The baseline is a checked-in JSON file recording the fingerprints of
*accepted* findings — violations that were triaged, judged tolerable, and
deliberately not fixed.  A lint run subtracts baselined findings from its
output, so the tool gates on **new** findings only: deleting a baseline
entry immediately un-suppresses the finding it excused and fails the run.

Entries carry a count because one fingerprint (path + rule + line text)
may legitimately match several source lines; ``count`` occurrences are
suppressed, any extra ones are new findings.  Entries that no longer match
anything are *stale* and are reported (and dropped on ``--write-baseline``)
so the baseline can only shrink toward zero.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.devtools.lint.finding import Finding

BASELINE_VERSION = 1


@dataclass
class BaselineMatch:
    """Outcome of subtracting a baseline from a finding list."""

    new_findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale: List[Dict[str, object]] = field(default_factory=list)


class Baseline:
    def __init__(self, entries: Dict[str, Dict[str, object]]) -> None:
        # fingerprint -> {"rule", "path", "count", "note"?}
        self._entries = entries

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls({})
        data = json.loads(path.read_text(encoding="utf-8"))
        entries: Dict[str, Dict[str, object]] = {}
        for entry in data.get("entries", []):
            fingerprint = str(entry["fingerprint"])
            entries[fingerprint] = {
                "rule": str(entry.get("rule", "")),
                "path": str(entry.get("path", "")),
                "count": int(entry.get("count", 1)),
            }
            if entry.get("note"):
                entries[fingerprint]["note"] = str(entry["note"])
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts: Counter = Counter()
        meta: Dict[str, Tuple[str, str]] = {}
        for finding in findings:
            fingerprint = finding.fingerprint()
            counts[fingerprint] += 1
            meta[fingerprint] = (finding.rule_id, finding.path)
        entries = {
            fingerprint: {
                "rule": meta[fingerprint][0],
                "path": meta[fingerprint][1],
                "count": counts[fingerprint],
            }
            for fingerprint in counts
        }
        return cls(entries)

    def write(self, path: Path) -> None:
        entries = [
            {"fingerprint": fingerprint, **self._entries[fingerprint]}
            for fingerprint in self._entries
        ]
        entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def match(self, findings: List[Finding]) -> BaselineMatch:
        """Split *findings* into new vs baselined; report stale entries."""
        result = BaselineMatch()
        used: Counter = Counter()
        for finding in sorted(findings, key=Finding.sort_key):
            fingerprint = finding.fingerprint()
            entry = self._entries.get(fingerprint)
            if entry is not None and used[fingerprint] < int(entry["count"]):
                used[fingerprint] += 1
                result.suppressed.append(finding)
            else:
                result.new_findings.append(finding)
        for fingerprint in sorted(self._entries):
            entry = self._entries[fingerprint]
            unused = int(entry["count"]) - used[fingerprint]
            if unused > 0:
                stale = {"fingerprint": fingerprint, **entry}
                stale["count"] = unused
                result.stale.append(stale)
        return result
