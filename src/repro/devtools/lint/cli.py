"""``repro lint`` command-line front end.

Exit codes: ``0`` — no new findings (everything is fixed, pragma'd, or
baselined); ``1`` — at least one new finding (or a parse failure); ``2`` —
usage error.  ``--write-baseline`` accepts the current findings as the new
baseline (dropping stale entries) and exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.config import load_config
from repro.devtools.lint.engine import LintResult, run_lint
from repro.devtools.lint.registry import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based determinism & concurrency invariant checker "
            "(rules D1-D5, C1-C3)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root holding pyproject.toml and the baseline",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        help="also write the report to this file (same format as --format)",
    )
    parser.add_argument(
        "--baseline",
        help="baseline file (default: [tool.repro-lint] baseline setting)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.rule_id}  {cls.title}")
        lines.append(f"    {cls.rationale}")
    return "\n".join(lines)


def format_text(result: LintResult) -> str:
    lines: List[str] = []
    for finding in result.new_findings:
        lines.append(f"{finding.location()}: {finding.rule_id} {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    for stale in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {stale['fingerprint']} "
            f"({stale['rule']} in {stale['path']}, count {stale['count']}) — "
            "remove it with --write-baseline"
        )
    counts = result.summary_counts()
    by_rule = (
        " (" + ", ".join(f"{rule}: {n}" for rule, n in counts.items()) + ")"
        if counts
        else ""
    )
    lines.append(
        f"{len(result.new_findings)} new finding(s){by_rule}, "
        f"{len(result.suppressed)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr(ies) "
        f"across {len(result.files)} file(s)"
    )
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    payload = {
        "root": str(result.root),
        "files_scanned": len(result.files),
        "findings": [finding.to_dict() for finding in result.new_findings],
        "baselined": len(result.suppressed),
        "stale_baseline": result.stale_baseline,
        "summary": result.summary_counts(),
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.root).resolve()
    config = load_config(root)
    if args.select:
        config.select = [r.strip().upper() for r in args.select.split(",") if r.strip()]

    baseline_path = root / (args.baseline or config.baseline)
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(baseline_path)

    try:
        result = run_lint(
            root,
            paths=args.paths or None,
            config=config,
            baseline=baseline,
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings).write(baseline_path)
        print(
            f"wrote {baseline_path} with {len(result.findings)} accepted "
            f"finding(s) from {len(result.files)} file(s)"
        )
        return 0

    report = format_json(result) if args.format == "json" else format_text(result)
    print(report)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
