"""``[tool.repro-lint]`` configuration loaded from ``pyproject.toml``.

Recognised keys (all optional)::

    [tool.repro-lint]
    paths = ["src", "tests", "benchmarks"]   # default scan roots
    exclude = ["tests/lint_fixtures"]        # path prefixes / fnmatch globs
    baseline = "lint-baseline.json"          # suppression baseline file
    select = ["D1", "C3"]                    # restrict to these rules
    memoized-apis = ["cut_sets"]             # C2: calls returning shared state

    [tool.repro-lint.allow]                  # whole-file rule exemptions
    D4 = ["src/repro/utils/timer.py", "benchmarks/*"]

Python 3.11+ parses with :mod:`tomllib`; older interpreters fall back to a
minimal parser covering exactly the subset above (string lists and string
values in the two ``repro-lint`` tables).
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_EXCLUDE = ("tests/lint_fixtures",)
DEFAULT_BASELINE = "lint-baseline.json"
DEFAULT_MEMOIZED_APIS = (
    "cut_sets",
    "cone_truth_table",
    "cut_cache",
    "fanin_var_lists",
    "levels_list",
    "and_level_groups",
)


@dataclass
class LintConfig:
    paths: List[str] = field(default_factory=lambda: list(DEFAULT_PATHS))
    exclude: List[str] = field(default_factory=lambda: list(DEFAULT_EXCLUDE))
    baseline: str = DEFAULT_BASELINE
    select: Optional[List[str]] = None
    memoized_apis: List[str] = field(
        default_factory=lambda: list(DEFAULT_MEMOIZED_APIS)
    )
    allow: Dict[str, List[str]] = field(default_factory=dict)

    def rule_allows(self, rule_id: str, rel_path: str) -> bool:
        """True when *rel_path* is wholly exempt from *rule_id*."""
        return any(
            _path_matches(rel_path, pattern)
            for pattern in self.allow.get(rule_id, ())
        )

    def excluded(self, rel_path: str) -> bool:
        return any(_path_matches(rel_path, pattern) for pattern in self.exclude)


def _path_matches(rel_path: str, pattern: str) -> bool:
    """fnmatch on the whole path, or directory-prefix match for plain names."""
    if fnmatch.fnmatch(rel_path, pattern):
        return True
    if not any(ch in pattern for ch in "*?["):
        prefix = pattern.rstrip("/")
        return rel_path == prefix or rel_path.startswith(prefix + "/")
    return False


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.repro-lint]`` from *root*/pyproject.toml if present."""
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return LintConfig()
    text = pyproject.read_text(encoding="utf-8")
    data = _parse_toml(text)
    tool = data.get("tool", {}) if isinstance(data, dict) else {}
    section = tool.get("repro-lint", {}) if isinstance(tool, dict) else {}
    if not isinstance(section, dict):
        return LintConfig()
    config = LintConfig()
    if isinstance(section.get("paths"), list):
        config.paths = [str(p) for p in section["paths"]]
    if isinstance(section.get("exclude"), list):
        config.exclude = [str(p) for p in section["exclude"]]
    if isinstance(section.get("baseline"), str):
        config.baseline = section["baseline"]
    if isinstance(section.get("select"), list):
        config.select = [str(r).upper() for r in section["select"]]
    if isinstance(section.get("memoized-apis"), list):
        config.memoized_apis = [str(a) for a in section["memoized-apis"]]
    allow = section.get("allow")
    if isinstance(allow, dict):
        config.allow = {
            str(rule).upper(): [str(p) for p in patterns]
            for rule, patterns in allow.items()
            if isinstance(patterns, list)
        }
    return config


def _parse_toml(text: str) -> Dict:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11 fallback
        return _parse_toml_subset(text)
    return tomllib.loads(text)


_TABLE_RE = re.compile(r"^\s*\[([^\]]+)\]\s*$")
_KV_RE = re.compile(r"^\s*([\w][\w.-]*)\s*=\s*(.+?)\s*$")


def _parse_toml_subset(text: str) -> Dict:  # pragma: no cover - 3.9/3.10 only
    """Tiny TOML subset: tables of string scalars and string arrays."""
    result: Dict = {}
    current = result
    buffered = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0] if not raw.lstrip().startswith('"') else raw
        if buffered:
            line = buffered + " " + line.strip()
            buffered = ""
        table = _TABLE_RE.match(line)
        if table:
            current = result
            for part in table.group(1).split("."):
                current = current.setdefault(part.strip().strip('"'), {})
            continue
        kv = _KV_RE.match(line)
        if not kv:
            continue
        key, value = kv.group(1), kv.group(2)
        if value.startswith("[") and not value.rstrip().endswith("]"):
            buffered = line
            continue
        current[key] = _parse_value(value)
    return result


def _parse_value(value: str):  # pragma: no cover - 3.9/3.10 only
    value = value.strip()
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1]
        return [
            item.strip().strip('"').strip("'")
            for item in inner.split(",")
            if item.strip()
        ]
    return value.strip('"').strip("'")
