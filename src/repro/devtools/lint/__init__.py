"""repro-lint: AST-based determinism & concurrency invariant checker.

The repository's load-bearing contract is bitwise determinism — golden CLI
outputs, campaign stores identical at any worker count, byte-exact
transform tie-breaks — plus thread-safety of the service layer and the
shared memoised array-core snapshots.  This package checks those
invariants *statically*:

- a rule registry (:mod:`repro.devtools.lint.registry`) with two families:
  determinism D1–D5 and concurrency/safety C1–C3;
- a shared single-parse walker (:mod:`repro.devtools.lint.walker`);
- inline ``# repro-lint: ignore[RULE] -- why`` pragmas
  (:mod:`repro.devtools.lint.pragmas`);
- a suppression baseline so only *new* findings gate
  (:mod:`repro.devtools.lint.baseline`);
- ``[tool.repro-lint]`` configuration (:mod:`repro.devtools.lint.config`);
- the ``repro lint`` CLI (:mod:`repro.devtools.lint.cli`).
"""

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.config import LintConfig, load_config
from repro.devtools.lint.engine import LintResult, run_lint
from repro.devtools.lint.finding import Finding
from repro.devtools.lint.registry import Rule, all_rules, register_rule

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "load_config",
    "register_rule",
    "run_lint",
]
