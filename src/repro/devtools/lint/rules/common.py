"""Shared AST helpers for lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

#: Calls through which iteration order cannot escape: they reduce, re-sort,
#: or discard the order of their iterable argument.
ORDER_NEUTRAL_CALLS = frozenset(
    {
        "sorted",
        "set",
        "frozenset",
        "len",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "Counter",
        "dict",  # keyed — insertion order differs but lookups don't
    }
)

_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Every node belonging to *scope*, excluding nested scopes.

    Nested function and class definitions get their own rule visits, so
    descending into them here would double-report.  The nested ``def``'s
    own node (name, decorators, defaults) is still yielded.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_TYPES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def root_name(node: ast.AST) -> Optional[str]:
    """The variable a ``x.attr[k].method(...)`` chain is rooted at."""
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Starred):
            node = node.value
        else:
            return None


def in_order_neutral_context(ctx, node: ast.AST) -> bool:
    """True when every path from *node* to its statement passes through an
    order-insensitive consumer (``sorted(...)``, ``len(...)``, membership
    tests, ...)."""
    child = node
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.Call):
            func = ancestor.func
            if child in ancestor.args and isinstance(func, ast.Name):
                if func.id in ORDER_NEUTRAL_CALLS:
                    return True
        if isinstance(ancestor, ast.Compare):
            if any(isinstance(op, (ast.In, ast.NotIn)) for op in ancestor.ops):
                return True
        if isinstance(ancestor, ast.stmt):
            return False
        child = ancestor
    return False


def call_attr_name(node: ast.AST) -> Optional[str]:
    """``m`` for a ``<expr>.m(...)`` call node, else ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None
