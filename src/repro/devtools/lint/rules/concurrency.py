"""Concurrency & safety rules C1–C3.

C1 targets the threaded service layer (job manager, worker session pools):
state guarded by ``with self._lock:`` in one method must not be touched
bare in another.  C2 guards the array-core's shared memoised snapshots:
structures returned by memoised APIs are cached by reference and must be
treated as immutable.  C3 flags broad exception handlers that swallow
failures without recording or re-raising them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.devtools.lint.registry import Rule, register_rule
from repro.devtools.lint.rules.common import root_name, scope_nodes

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "setdefault",
        "put",
    }
)

#: Methods excluded from C1: construction and teardown happen-before /
#: happen-after any concurrent access.
_C1_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__del__", "__post_init__"})


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_names(cls: ast.ClassDef) -> Set[str]:
    """Attributes used as ``with self.<attr>:`` contexts, name contains 'lock'."""
    names: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.With):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and "lock" in attr.lower():
                    names.add(attr)
    return names


class _AttrAccess:
    __slots__ = ("attr", "node", "guarded", "write")

    def __init__(self, attr: str, node: ast.AST, guarded: bool, write: bool) -> None:
        self.attr = attr
        self.node = node
        self.guarded = guarded
        self.write = write


def _collect_accesses(
    method: ast.FunctionDef, locks: Set[str], assume_guarded: bool
) -> List[_AttrAccess]:
    accesses: List[_AttrAccess] = []

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, ast.With):
            holds = any(
                _self_attr(item.context_expr) in locks for item in node.items
            )
            for item in node.items:
                visit(item.context_expr, guarded)
            for stmt in node.body:
                visit(stmt, guarded or holds)
            return
        attr = _self_attr(node)
        if attr is not None and attr not in locks:
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            accesses.append(_AttrAccess(attr, node, guarded, write))
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    for stmt in method.body:
        visit(stmt, assume_guarded)

    # A ``self.x.append(...)`` call mutates through the read binding: count
    # the access as a write so read-vs-mutate races are not missed.
    mutated_at: Set[int] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            inner = _self_attr(node.func.value)
            if inner is not None:
                mutated_at.add(id(node.func.value))
    for access in accesses:
        if id(access.node) in mutated_at:
            access.write = True
    return accesses


@register_rule
class LockConsistency(Rule):
    rule_id = "C1"
    title = "attribute accessed both under and outside its lock"
    rationale = (
        "If any method touches self.<attr> inside `with self._lock:` while "
        "another touches it bare, the lock protects nothing — the bare "
        "access races with every guarded writer.  Methods named *_locked "
        "are treated as called-with-lock-held by convention; __init__ is "
        "exempt (construction happens-before sharing)."
    )
    interests = (ast.ClassDef,)

    def visit(self, cls: ast.ClassDef, ctx) -> None:
        locks = _lock_names(cls)
        if not locks:
            return
        guarded_lines: Dict[str, int] = {}
        unguarded: Dict[str, List[_AttrAccess]] = {}
        any_write: Set[str] = set()
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in _C1_EXEMPT_METHODS:
                continue
            assume_guarded = stmt.name.endswith("_locked")
            for access in _collect_accesses(stmt, locks, assume_guarded):
                if access.write:
                    any_write.add(access.attr)
                if access.guarded:
                    guarded_lines.setdefault(access.attr, access.node.lineno)
                else:
                    unguarded.setdefault(access.attr, []).append(access)
        for attr in sorted(set(guarded_lines) & set(unguarded) & any_write):
            first = min(unguarded[attr], key=lambda a: a.node.lineno)
            self.report(
                ctx,
                first.node,
                f"self.{attr} is guarded by {sorted(locks)[0]} at line "
                f"{guarded_lines[attr]} but accessed without it here; hold "
                "the lock (or rename the method *_locked if callers do)",
            )


@register_rule
class MemoizedMutation(Rule):
    rule_id = "C2"
    title = "mutation of a memoised API's return value"
    rationale = (
        "cut_sets / cone_truth_table and the AigArrays caches return shared "
        "structures by reference (memoised across clones and snapshots); "
        "mutating one poisons every other reader.  Copy before mutating."
    )
    interests = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, scope: ast.AST, ctx) -> None:
        memoized = ctx.memoized_apis
        if not memoized:
            return
        tainted = self._tainted_names(scope, memoized)

        def is_memoized_chain(expr: ast.AST) -> bool:
            for part in ast.walk(expr):
                if isinstance(part, ast.Attribute) and part.attr in memoized:
                    return True
            root = root_name(expr)
            return root is not None and root in tainted

        for node in scope_nodes(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and is_memoized_chain(node.func.value)
            ):
                self.report(
                    ctx,
                    node,
                    f".{node.func.attr}() mutates a structure returned by a "
                    "memoised API; copy it first (list(...)/dict(...))",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and is_memoized_chain(
                        target.value
                    ):
                        self.report(
                            ctx,
                            target,
                            "index-assignment into a memoised API's return "
                            "value; copy it first",
                        )

    @staticmethod
    def _tainted_names(scope: ast.AST, memoized) -> Set[str]:
        tainted: Set[str] = set()
        copied: Set[str] = set()
        for node in scope_nodes(scope):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if not names:
                continue
            taints = any(
                isinstance(part, ast.Attribute) and part.attr in memoized
                for part in ast.walk(value)
            )
            # Copy idioms launder the taint: list(x), dict(x), sorted(x),
            # x.copy(), copy.deepcopy(x) all produce caller-owned objects.
            launders = (
                isinstance(value, ast.Call)
                and (
                    (
                        isinstance(value.func, ast.Name)
                        and value.func.id
                        in ("list", "dict", "set", "tuple", "sorted", "frozenset")
                    )
                    or (
                        isinstance(value.func, ast.Attribute)
                        and value.func.attr in ("copy", "deepcopy")
                    )
                )
            )
            for name in names:
                if taints and not launders:
                    tainted.add(name)
                elif launders:
                    copied.add(name)
        return tainted - copied


_LOGGING_CALL_NAMES = frozenset(
    {
        "print",
        "warn",
        "warning",
        "error",
        "exception",
        "critical",
        "log",
        "debug",
        "info",
        "fail",
    }
)


def _is_broad(handler_type: Optional[ast.AST]) -> bool:
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in ("Exception", "BaseException")
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(elt) for elt in handler_type.elts)
    return False


@register_rule
class SwallowedException(Rule):
    rule_id = "C3"
    title = "broad except swallows the failure"
    rationale = (
        "`except Exception: pass` hides engine and store failures that the "
        "crash-safe resume machinery is designed to surface.  Record the "
        "error (store/log it or use the bound exception) or re-raise."
    )
    interests = (ast.ExceptHandler,)

    def visit(self, handler: ast.ExceptHandler, ctx) -> None:
        if not _is_broad(handler.type):
            return
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return
            if isinstance(node, ast.Name) and node.id == handler.name:
                return  # the bound exception is used — recorded somewhere
            if isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name in _LOGGING_CALL_NAMES:
                    return
        label = "bare except" if handler.type is None else "except Exception"
        self.report(
            ctx,
            handler,
            f"{label} swallows the error without recording or re-raising; "
            "narrow the type, use the exception, or log it",
        )
