"""Determinism rules D1–D5.

These encode the repository's bitwise-reproducibility contract: golden CLI
outputs, campaign stores identical at any worker count, and transform
tie-breaks that must not depend on hash seeds, wall clocks, or directory
order.  Each rule exists because a real violation of its invariant has
shipped here (or nearly did) and cost a differential-debugging campaign.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.devtools.lint.registry import Rule, register_rule
from repro.devtools.lint.rules.common import (
    in_order_neutral_context,
    scope_nodes,
)

_SET_ANNOTATIONS = frozenset(
    {"set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet"}
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Loop-body operations through which iteration order escapes into results.
_ORDER_SENSITIVE_APPENDS = frozenset(
    {"append", "extend", "insert", "write", "writelines", "put"}
)

_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter", "next"})


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in _SET_ANNOTATIONS
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _SET_ANNOTATIONS
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        head = annotation.value.split("[", 1)[0].strip().rsplit(".", 1)[-1]
        return head in _SET_ANNOTATIONS
    return False


class _SetTypes:
    """Names known to hold ``set``/``frozenset`` values in one scope."""

    def __init__(self, scope: ast.AST) -> None:
        self.names: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            for arg in all_args:
                if _annotation_is_set(arg.annotation):
                    self.names.add(arg.arg)
        # Two passes reach names defined through one level of indirection
        # (``a = set(...)`` after ``b = a`` textually precedes it).
        for _ in range(2):
            for node in scope_nodes(scope):
                if isinstance(node, ast.Assign) and self.is_set_expr(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.names.add(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if _annotation_is_set(node.annotation) or (
                        node.value is not None and self.is_set_expr(node.value)
                    ):
                        self.names.add(node.target.id)

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self.is_set_expr(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _order_escape(body: List[ast.stmt], loop_names: Set[str]) -> Optional[ast.AST]:
    """First order-sensitive operation in a loop body, or ``None``.

    Yielding, appending to a sequence, writing to a stream, printing, and
    non-counter ``+=`` accumulation (float addition does not commute
    bitwise) all leak the iteration order into observable results.  So does
    running-extremum selection (``if level > best: best_leaf = leaf``):
    with a strict comparison, ties keep the first element *in iteration
    order* — the exact tie-break PR 7 had to preserve byte-for-byte.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _ORDER_SENSITIVE_APPENDS
                ):
                    return node
                if isinstance(func, ast.Name) and func.id == "print":
                    return node
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                if not (
                    isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node
            if isinstance(node, ast.If) and _is_extremum_selection(
                node, loop_names
            ):
                return node
    return None


def _is_extremum_selection(node: ast.If, loop_names: Set[str]) -> bool:
    """``if x <cmp> best: winner = <uses loop var>`` — ties follow order."""
    has_ordering_test = any(
        isinstance(part, ast.Compare)
        and len(part.ops) == 1
        and isinstance(part.ops[0], (ast.Lt, ast.Gt, ast.LtE, ast.GtE))
        for part in ast.walk(node.test)
    )
    if not has_ordering_test:
        return False
    for stmt in node.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) for t in stmt.targets):
            continue
        value_names = {
            n.id for n in ast.walk(stmt.value) if isinstance(n, ast.Name)
        }
        if value_names & loop_names:
            return True
    return False


@register_rule
class SetIterationOrder(Rule):
    rule_id = "D1"
    title = "set iteration order escapes into results"
    rationale = (
        "Iterating a set observes PYTHONHASHSEED-dependent order; when that "
        "order reaches a list, a file, or a float accumulation, outputs stop "
        "being reproducible across processes.  Wrap the set in sorted() or "
        "consume it order-insensitively."
    )
    interests = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx) -> None:
        sets = _SetTypes(node)
        for inner in scope_nodes(node):
            if isinstance(inner, ast.For) and sets.is_set_expr(inner.iter):
                escape = _order_escape(
                    inner.body + inner.orelse, _target_names(inner.target)
                )
                if escape is not None:
                    self.report(
                        ctx,
                        inner.iter,
                        "iteration over a set whose order escapes (via line "
                        f"{getattr(escape, 'lineno', inner.lineno)}); wrap in "
                        "sorted() or restructure the loop order-insensitively",
                    )
            elif isinstance(inner, (ast.ListComp, ast.GeneratorExp)):
                first = inner.generators[0]
                if sets.is_set_expr(first.iter) and not in_order_neutral_context(
                    ctx, inner
                ):
                    self.report(
                        ctx,
                        first.iter,
                        "comprehension over a set produces order-dependent "
                        "sequence; wrap the set in sorted()",
                    )
            elif isinstance(inner, ast.Call):
                func = inner.func
                wrapped = (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_WRAPPERS
                    and inner.args
                    and sets.is_set_expr(inner.args[0])
                )
                joined = (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and inner.args
                    and sets.is_set_expr(inner.args[0])
                )
                if (wrapped or joined) and not in_order_neutral_context(ctx, inner):
                    self.report(
                        ctx,
                        inner,
                        "set converted to an ordered sequence without sorted()",
                    )


@register_rule
class BuiltinHashIdentity(Rule):
    rule_id = "D2"
    title = "builtin hash() used as a persistent or dedup identity"
    rationale = (
        "hash() of str/bytes (and anything containing them) is salted per "
        "process (PYTHONHASHSEED), and even unsalted values differ across "
        "platforms — any identity that outlives the process, or dedups work "
        "across processes, must use a stable digest (hashlib.sha256)."
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "hash"):
            return
        enclosing = ctx.enclosing_function()
        if enclosing is not None and enclosing.name == "__hash__":
            return  # in-process hashing protocol — the one legitimate use
        self.report(
            ctx,
            node,
            "builtin hash() is process-seeded; use a stable digest "
            "(hashlib.sha256 over a canonical payload) for identities",
        )


_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


@register_rule
class GlobalRandomState(Rule):
    rule_id = "D3"
    title = "unseeded global random state"
    rationale = (
        "Module-level random/numpy.random calls draw from interpreter-global "
        "state that any import or thread can perturb; reproducible code "
        "takes an injected RngLike (repro.utils.rng) or a seeded Generator."
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx) -> None:
        resolved = ctx.imports.resolve(node.func)
        if resolved is None:
            return
        parts = resolved.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] not in _RANDOM_ALLOWED:
                self.report(
                    ctx,
                    node,
                    f"global random.{parts[1]}() draws from shared module "
                    "state; inject an RngLike / random.Random instance",
                )
        elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
            if parts[2] not in _NUMPY_RANDOM_ALLOWED:
                self.report(
                    ctx,
                    node,
                    f"legacy numpy.random.{parts[2]}() uses the global "
                    "RandomState; use numpy.random.default_rng(seed)",
                )


_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class WallClockRead(Rule):
    rule_id = "D4"
    title = "wall-clock read outside the Timer plumbing"
    rationale = (
        "Raw clock reads leak nondeterministic values into records that the "
        "store-equality and golden-output checks must then special-case; all "
        "timing belongs in repro.utils.Timer / StageTimer so it lands only "
        "in TIMING_FIELDS, which every differential comparison strips."
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx) -> None:
        resolved = ctx.imports.resolve(node.func)
        if resolved in _WALL_CLOCK_CALLS:
            self.report(
                ctx,
                node,
                f"{resolved}() read outside Timer/StageTimer; route timing "
                "through repro.utils.timer so it stays inside TIMING_FIELDS",
            )


_FS_ENUM_ATTRS = frozenset({"glob", "rglob", "iterdir", "scandir"})

_FS_ENUM_CALLS = frozenset(
    {
        "os.listdir",
        "os.scandir",
        "os.walk",
        "glob.glob",
        "glob.iglob",
    }
)


@register_rule
class UnsortedFilesystemEnumeration(Rule):
    rule_id = "D5"
    title = "unsorted filesystem enumeration escapes"
    rationale = (
        "glob/iterdir/listdir order is filesystem-dependent (and differs "
        "between local runs and CI); results that feed outputs, stores, or "
        "merges must be wrapped in sorted()."
    )
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx) -> None:
        func = node.func
        matched: Optional[str] = None
        resolved = ctx.imports.resolve(func)
        if resolved in _FS_ENUM_CALLS:
            matched = resolved
        elif isinstance(func, ast.Attribute) and func.attr in _FS_ENUM_ATTRS:
            matched = func.attr
        if matched is None:
            return
        if in_order_neutral_context(ctx, node):
            return
        self.report(
            ctx,
            node,
            f"{matched}() enumerates the filesystem in platform order; "
            "wrap in sorted() before the order can escape",
        )
