"""Rule families.

``determinism`` (D1–D5) guards the bitwise-reproducibility contract;
``concurrency`` (C1–C3) guards the threaded service and shared memoised
state.  Importing this package's modules registers every rule.
"""
