"""Core data model for repro-lint findings.

A :class:`Finding` is one rule violation at one source location.  Findings
are identified across revisions by a *fingerprint* that deliberately omits
the line number — hashing the repository-relative path, the rule id, and
the normalized source-line text — so that unrelated edits shifting a file
do not invalidate the suppression baseline.  Duplicate fingerprints within
one file (the same violating line text appearing twice) are disambiguated
by an occurrence index assigned in line order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    """Repository-relative POSIX path of the offending file."""

    line: int
    """1-based source line of the violation."""

    col: int
    """0-based column offset of the violating node."""

    rule_id: str
    """Short rule identifier, e.g. ``D1`` or ``C3``."""

    message: str
    """Human-readable description of this specific violation."""

    snippet: str = ""
    """The stripped source line the finding points at."""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        payload = "::".join((self.path, self.rule_id, self.snippet))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class FileReport:
    """All findings produced for one file, pre-baseline."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    parse_error: bool = False
