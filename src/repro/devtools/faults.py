"""Deterministic fault injection for the campaign fabric.

The fault-tolerance story of the engine (leases, quarantine, progress
journals, crash-safe stores) is only trustworthy if failure is a *tested*
input, not a hope.  This module turns failure into a seeded, replayable
schedule: a :class:`FaultPlan` — parsed from the :data:`FAULT_PLAN_ENV`
environment variable, so spawn children inherit it — fires named fault
kinds at registered *sites* in the runner, the stores, and the lease layer.
The chaos differential suite drives seeded plans over sharded multi-writer
campaigns and asserts every run converges, after resumes, to the fault-free
store.

Spec format (one env string, ``;``-separated)::

    seed=42;dir=/tmp/fault-state;error@cell:p=0.3,max=2;crash@cell:nth=4,max=1

Global keys:

* ``seed=<int>`` — seeds the hash that decides probabilistic firing.
* ``dir=<path>`` — state directory where fires are journalled durably, so
  ``max=`` caps hold **across processes and resumes** (a crash fault that
  fired once stays fired for the re-run).  Without ``dir``, caps are
  per-process.

Each rule is ``<kind>@<site>`` plus ``,``-separated parameters:

* ``p=<float>`` — fire when ``sha256(seed, kind, site, key, count)`` maps
  below ``p`` (deterministic: same plan + same call sequence = same fires).
* ``nth=<int>`` — fire on exactly the nth eligible call at the site
  (1-based, counted per process).
* ``match=<substr>`` — only calls whose key contains the substring.
* ``max=<int>`` — total fire cap for this rule (durable with ``dir=``).
* ``delay=<float>`` — sleep length for ``hang`` / ``heartbeat_stall``.

Fault kinds (what a fire does at the call site):

=================  ==========================================================
``crash``          ``os._exit(70)`` — a worker/writer dies mid-flight.
``hang``           sleep ``delay`` seconds — a cell overruns its timeout.
``error``          raise :class:`FaultInjectedError` — a transient cell error.
``torn_append``    write *half* the pending JSONL line, fsync, ``os._exit`` —
                   the torn-tail-write a kill mid-append leaves behind.
``oserror``        raise ``OSError`` before writing — a failing append/fsync.
``heartbeat_stall``  sleep ``delay`` seconds inside the lease heartbeat, so
                   held leases expire and other writers steal the cells.
=================  ==========================================================

Registered sites: ``cell`` (start of every cell execution, key = cell id),
``store_append`` (every durable JSONL append, key = file path),
``flush`` (the engine's canonical-order store flush, key = cell id), and
``lease_heartbeat`` (each heartbeat beat, key = writer name).

Production code calls :func:`fault_hook`, which is a no-op costing one env
lookup when no plan is set — the fabric pays nothing in normal operation.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: environment variable holding the active fault-plan spec (inherited by
#: spawn children, so pool workers fault under the same plan as the parent).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: fault kinds a rule may name.
FAULT_KINDS = ("crash", "hang", "error", "torn_append", "oserror", "heartbeat_stall")

#: exit code used by injected crashes, so harnesses can tell an injected
#: death from a genuine one.
CRASH_EXIT_CODE = 70


class FaultPlanError(ReproError):
    """Raised for malformed fault-plan specs."""


class FaultInjectedError(RuntimeError):
    """The transient error raised by the ``error`` fault kind.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected faults
    model arbitrary worker failures, and the engine must recover from any
    exception type, not just its own hierarchy.
    """


@dataclass(frozen=True)
class FaultRule:
    """One ``kind@site`` clause of a fault plan."""

    kind: str
    site: str
    p: float = 0.0
    nth: Optional[int] = None
    match: str = ""
    max_fires: Optional[int] = None
    delay_s: float = 30.0

    def describe(self) -> str:
        """The canonical ``kind@site`` label of this rule."""
        return f"{self.kind}@{self.site}"


def _rule_params(raw: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        key, sep, value = chunk.partition("=")
        if not sep:
            raise FaultPlanError(f"bad fault rule parameter {chunk!r} (want key=value)")
        params[key.strip()] = value.strip()
    return params


def parse_fault_plan(spec: str) -> "FaultPlan":
    """Parse one :data:`FAULT_PLAN_ENV` spec string into a :class:`FaultPlan`."""
    seed = 0
    state_dir: Optional[Path] = None
    rules: List[FaultRule] = []
    for token in spec.split(";"):
        token = token.strip()
        if not token:
            continue
        if "@" not in token:
            key, sep, value = token.partition("=")
            if not sep:
                raise FaultPlanError(f"bad fault plan token {token!r}")
            key = key.strip()
            if key == "seed":
                try:
                    seed = int(value)
                except ValueError as exc:
                    raise FaultPlanError(f"bad fault plan seed {value!r}") from exc
            elif key == "dir":
                state_dir = Path(value.strip())
            else:
                raise FaultPlanError(f"unknown fault plan key {key!r}")
            continue
        head, _, raw_params = token.partition(":")
        kind, _, site = head.partition("@")
        kind = kind.strip()
        site = site.strip()
        if kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {kind!r}; available: {list(FAULT_KINDS)}"
            )
        if not site:
            raise FaultPlanError(f"fault rule {token!r} names no site")
        params = _rule_params(raw_params)
        try:
            rule = FaultRule(
                kind=kind,
                site=site,
                p=float(params.pop("p", 0.0)),
                nth=int(params.pop("nth")) if "nth" in params else None,
                match=params.pop("match", ""),
                max_fires=int(params.pop("max")) if "max" in params else None,
                delay_s=float(params.pop("delay", 30.0)),
            )
        except ValueError as exc:
            raise FaultPlanError(f"bad fault rule {token!r}: {exc}") from exc
        if params:
            raise FaultPlanError(
                f"unknown fault rule parameter(s) {sorted(params)} in {token!r}"
            )
        if rule.nth is None and rule.p <= 0.0:
            raise FaultPlanError(
                f"fault rule {token!r} never fires: set p= or nth="
            )
        rules.append(rule)
    return FaultPlan(seed=seed, state_dir=state_dir, rules=rules)


@dataclass
class FaultPlan:
    """A seeded schedule of fault fires, deterministic per call sequence."""

    seed: int = 0
    state_dir: Optional[Path] = None
    rules: List[FaultRule] = field(default_factory=list)
    #: per-(rule, site) call counters, private to this process.
    _counts: Dict[Tuple[int, str], int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Durable fire accounting (max= caps that survive crashes/resumes)
    # ------------------------------------------------------------------ #
    def _fired_path(self) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / "fired.jsonl"

    def _fires_so_far(self, rule_index: int) -> int:
        path = self._fired_path()
        if path is None:
            return self._counts.get((rule_index, "__fired__"), 0)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return sum(
                    1
                    for line in handle
                    if line.strip() and json.loads(line).get("rule") == rule_index
                )
        except (OSError, json.JSONDecodeError):
            return 0

    def _record_fire(self, rule_index: int, site: str, key: str) -> None:
        self._counts["__fired__total__", site] = (
            self._counts.get(("__fired__total__", site), 0) + 1
        )
        path = self._fired_path()
        if path is None:
            self._counts[(rule_index, "__fired__")] = (
                self._counts.get((rule_index, "__fired__"), 0) + 1
            )
            return
        # Plain write, NOT append_jsonl_record: the fire journal must never
        # recurse through the store_append fault site it is accounting for.
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "a", encoding="utf-8") as handle:
                rule = self.rules[rule_index]
                handle.write(
                    json.dumps(
                        {"rule": rule_index, "fault": rule.describe(),
                         "site": site, "key": key},
                        sort_keys=True,
                    )
                    + "\n"
                )
                handle.flush()
                os.fsync(handle.fileno())
        # repro-lint: ignore[C3] -- a fire that cannot be journalled still
        # fires; losing the durable cap only risks an extra injected fault,
        # which the fabric must tolerate anyway.
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def _decides_to_fire(self, rule: FaultRule, key: str, count: int) -> bool:
        if rule.nth is not None:
            return count == rule.nth
        material = f"{self.seed}:{rule.kind}:{rule.site}:{key}:{count}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return fraction < rule.p

    def fire(self, site: str, key: str = "", path: Optional[Path] = None,
             line: str = "") -> None:
        """Evaluate every matching rule at *site* and execute any fires.

        *path* / *line* carry the pending write for ``store_append`` sites,
        so ``torn_append`` can leave a genuinely torn half-line behind.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.match and rule.match not in key:
                continue
            counter_key = (index, site)
            count = self._counts.get(counter_key, 0) + 1
            self._counts[counter_key] = count
            if not self._decides_to_fire(rule, key, count):
                continue
            if rule.max_fires is not None and self._fires_so_far(index) >= rule.max_fires:
                continue
            self._record_fire(index, site, key)
            self._execute(rule, key, path=path, line=line)

    def _execute(self, rule: FaultRule, key: str, path: Optional[Path],
                 line: str) -> None:
        if rule.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if rule.kind == "hang":
            time.sleep(rule.delay_s)
            return
        if rule.kind == "error":
            raise FaultInjectedError(
                f"injected transient fault at {rule.site} (key={key!r})"
            )
        if rule.kind == "oserror":
            raise OSError(f"injected append/fsync failure at {rule.site} (key={key!r})")
        if rule.kind == "torn_append":
            if path is not None and line:
                # Leave exactly what a kill mid-append leaves: a prefix of
                # the line, durably on disk, with no trailing newline.
                try:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    with open(path, "a", encoding="utf-8") as handle:
                        handle.write(line[: max(1, len(line) // 2)])
                        handle.flush()
                        os.fsync(handle.fileno())
                # repro-lint: ignore[C3] -- the injected death below is the
                # point; an unwritable store just means a clean crash.
                except OSError:
                    pass
            os._exit(CRASH_EXIT_CODE)
        if rule.kind == "heartbeat_stall":
            time.sleep(rule.delay_s)
            return


#: the parsed plan for the current env spec, cached per spec string so
#: in-process env changes (tests) swap plans while steady-state processes
#: parse exactly once.
_ACTIVE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The :class:`FaultPlan` for the current environment, if any."""
    global _ACTIVE
    spec = os.environ.get(FAULT_PLAN_ENV)
    if not spec:
        return None
    cached_spec, cached_plan = _ACTIVE
    if cached_spec != spec:
        cached_plan = parse_fault_plan(spec)
        _ACTIVE = (spec, cached_plan)
    return cached_plan


def fault_hook(site: str, key: str = "", path: Optional[Path] = None,
               line: str = "") -> None:
    """Fire any planned faults for *site*; free when no plan is active.

    This is the single call production code embeds at a fault site.  With
    :data:`FAULT_PLAN_ENV` unset it is one dict lookup.
    """
    if not os.environ.get(FAULT_PLAN_ENV):
        return
    plan = active_plan()
    if plan is not None:
        plan.fire(site, key=key, path=path, line=line)
