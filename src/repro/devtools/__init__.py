"""Developer tooling that ships with the repository (not part of the
synthesis runtime).

Currently: :mod:`repro.devtools.lint`, the repro-lint static analysis
framework that enforces the repository's determinism and concurrency
invariants at the AST level.
"""
