"""Equivalence-preserving AIG transformations and scripts."""

from repro.transforms.balance import Balance
from repro.transforms.base import IdentityTransform, Transform, TransformResult
from repro.transforms.engine import ScriptResult, apply_script, apply_transform
from repro.transforms.refactor import Refactor
from repro.transforms.resub import Resubstitute
from repro.transforms.resynth import synthesize_truth
from repro.transforms.rewrite import Rewrite
from repro.transforms.scripts import (
    NAMED_SCRIPTS,
    primitive_transforms,
    resolve_script,
    script_catalog,
)
from repro.transforms.strash import Strash, Sweep

__all__ = [
    "Balance",
    "IdentityTransform",
    "NAMED_SCRIPTS",
    "Refactor",
    "Resubstitute",
    "Rewrite",
    "ScriptResult",
    "Strash",
    "Sweep",
    "Transform",
    "TransformResult",
    "apply_script",
    "apply_transform",
    "primitive_transforms",
    "resolve_script",
    "script_catalog",
    "synthesize_truth",
]
