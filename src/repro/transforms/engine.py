"""Transformation engine: apply scripts with optional equivalence checking.

The engine is the single entry point used by data generation and by the
optimization flows.  It resolves script names, applies each step, and (when
``verify=True``) checks functional equivalence against the input graph after
every step, raising :class:`~repro.errors.TransformError` on any mismatch so
that an unsound transform can never silently corrupt an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.aig.equivalence import check_equivalence
from repro.aig.graph import Aig, AigStats
from repro.errors import TransformError
from repro.transforms.base import Transform, TransformResult
from repro.transforms.scripts import NAMED_SCRIPTS, resolve_script
from repro.utils.rng import RngLike

ScriptLike = Union[str, Sequence[str], Sequence[Transform]]


@dataclass
class ScriptResult:
    """Outcome of running a full script."""

    steps: List[TransformResult] = field(default_factory=list)

    @property
    def aig(self) -> Aig:
        """The final AIG after the last step."""
        if not self.steps:
            raise TransformError("script produced no steps")
        return self.steps[-1].aig

    @property
    def initial_stats(self) -> AigStats:
        return self.steps[0].before

    @property
    def final_stats(self) -> AigStats:
        return self.steps[-1].after

    def summary(self) -> str:
        """One line per step: name, node delta, depth delta."""
        lines = []
        for step in self.steps:
            lines.append(
                f"{step.transform:>6}: ands {step.before.num_ands} -> {step.after.num_ands}, "
                f"depth {step.before.depth} -> {step.after.depth}"
            )
        return "\n".join(lines)


def _normalise_script(script: ScriptLike) -> List[Transform]:
    if isinstance(script, str):
        if script in NAMED_SCRIPTS:
            return resolve_script(NAMED_SCRIPTS[script])
        return resolve_script([script])
    if not script:
        raise TransformError("script must contain at least one step")
    first = script[0]
    if isinstance(first, Transform):
        return list(script)  # type: ignore[arg-type]
    return resolve_script(list(script))  # type: ignore[arg-type]


def apply_script(
    aig: Aig,
    script: ScriptLike,
    verify: bool = False,
    rng: RngLike = None,
) -> ScriptResult:
    """Apply *script* (a name, list of names, or list of transforms) to *aig*.

    Parameters
    ----------
    verify:
        Check functional equivalence against the original graph after every
        step.  Exhaustive for small PI counts, random otherwise; see
        :func:`repro.aig.equivalence.check_equivalence`.
    """
    transforms = _normalise_script(script)
    result = ScriptResult()
    current = aig
    for transform in transforms:
        step = transform.run(current)
        if verify:
            verdict = check_equivalence(aig, step.aig, rng=rng)
            if not verdict.equivalent:
                raise TransformError(
                    f"transform {transform.name!r} broke functional equivalence "
                    f"(output {verdict.mismatched_output})"
                )
        result.steps.append(step)
        current = step.aig
    return result


def apply_transform(
    aig: Aig, transform: Union[str, Transform], verify: bool = False
) -> Aig:
    """Apply a single transform (by name or instance) and return the new AIG."""
    if isinstance(transform, Transform):
        steps: ScriptLike = [transform]
    else:
        steps = [transform]
    return apply_script(aig, steps, verify=verify).aig
