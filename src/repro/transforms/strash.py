"""Structural hashing ("strash") and sweep transforms.

``strash`` rebuilds the graph from scratch so that the constructor's
simplification rules (constant folding, duplicate AND removal) are re-applied
to every node; ``sweep`` additionally drops logic not reachable from any
primary output.  Both correspond to the ABC commands of the same name.
"""

from __future__ import annotations

from repro.aig.graph import Aig, rebuild_map
from repro.aig.literals import is_complemented, literal_var, negate_if
from repro.transforms.base import Transform


class Strash(Transform):
    """Rebuild the AIG with structural hashing and constant propagation."""

    name = "st"

    def apply(self, aig: Aig) -> Aig:
        new = Aig(aig.name)
        mapping = rebuild_map(aig, new)
        for var in aig.and_vars():
            f0, f1 = aig.fanins(var)
            new_f0 = negate_if(mapping[literal_var(f0)], is_complemented(f0))
            new_f1 = negate_if(mapping[literal_var(f1)], is_complemented(f1))
            mapping[var] = new.add_and(new_f0, new_f1)
        for lit, name in zip(aig.po_literals(), aig.po_names):
            new_lit = negate_if(mapping[literal_var(lit)], is_complemented(lit))
            new.add_po(new_lit, name)
        return new.cleanup()


class Sweep(Transform):
    """Remove logic unreachable from the primary outputs."""

    name = "sweep"

    def apply(self, aig: Aig) -> Aig:
        return aig.cleanup()
