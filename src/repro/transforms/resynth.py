"""Resynthesis of truth tables into AIG structures.

Both the rewriting and refactoring transforms collapse a cone of logic into a
truth table and then rebuild it.  This module holds the shared builder: an
irredundant sum-of-products (ISOP) cover of the function or of its
complement — whichever is cheaper — realised as balanced AND/OR trees.  The
resulting structure is usually competitive with the original cone for the
small cut sizes (up to ~10 leaves) used by the transforms.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

from repro.aig.graph import Aig
from repro.aig.literals import CONST0, CONST1, negate
from repro.aig.truth import (
    Cube,
    is_const0,
    is_const1,
    isop,
    table_mask,
)
from repro.errors import TransformError


def sop_cost(cubes: Sequence[Cube]) -> int:
    """Approximate AND-node cost of realising a cube list as an AIG."""
    if not cubes:
        return 0
    cost = len(cubes) - 1
    for pos, neg in cubes:
        literals = pos.bit_count() + neg.bit_count()
        if literals > 1:
            cost += literals - 1
    return cost


@lru_cache(maxsize=200_000)
def resynth_cost(table: int, num_vars: int) -> int:
    """Cheaper of the positive/complement ISOP realisation costs of *table*.

    This is the cost the rewriting and refactoring transforms compare against
    a cone's node count; memoised because the same small cut functions recur
    across nodes, designs, and annealing iterations.
    """
    mask = table_mask(num_vars)
    table &= mask
    return min(
        sop_cost(isop(table, 0, num_vars)),
        sop_cost(isop((~table) & mask, 0, num_vars)),
    )


def synthesize_truth(
    target: Aig,
    table: int,
    num_vars: int,
    leaf_literals: Sequence[int],
) -> int:
    """Build an AIG implementation of *table* over *leaf_literals* in *target*.

    Returns the literal of the synthesised root.  The function and its
    complement are both covered with ISOP and the cheaper realisation wins
    (the complement is frequently much smaller for AND-dominated functions).
    """
    if len(leaf_literals) != num_vars:
        raise TransformError(
            f"expected {num_vars} leaf literals, got {len(leaf_literals)}"
        )
    mask = table_mask(num_vars)
    table &= mask
    if is_const0(table, num_vars):
        return CONST0
    if is_const1(table, num_vars):
        return CONST1

    positive_cover = isop(table, 0, num_vars)
    negative_cover = isop((~table) & mask, 0, num_vars)
    if sop_cost(negative_cover) < sop_cost(positive_cover):
        literal = _build_sop(target, negative_cover, leaf_literals)
        return negate(literal)
    return _build_sop(target, positive_cover, leaf_literals)


def _build_sop(target: Aig, cubes: Sequence[Cube], leaves: Sequence[int]) -> int:
    """Realise a cube cover as balanced AND trees feeding a balanced OR tree."""
    cube_literals: List[int] = []
    for pos, neg in cubes:
        terms: List[int] = []
        for var, leaf in enumerate(leaves):
            if (pos >> var) & 1:
                terms.append(leaf)
            if (neg >> var) & 1:
                terms.append(negate(leaf))
        cube_literals.append(target.add_and_multi(terms))
    return target.add_or_multi(cube_literals)
