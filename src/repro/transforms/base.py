"""Transformation framework.

A *transform* maps an AIG to a new, functionally equivalent AIG.  Transforms
are implemented rebuild-style: they construct a fresh graph rather than
mutating in place, which keeps structural hashing consistent and removes any
dangling logic automatically.  The engine (:mod:`repro.transforms.engine`)
can verify equivalence after every application as a safety net.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.aig.graph import Aig, AigStats


@dataclass(frozen=True)
class TransformResult:
    """Outcome of applying a transform to an AIG."""

    transform: str
    before: AigStats
    after: AigStats
    aig: Aig = field(repr=False, compare=False, hash=False, default=None)

    @property
    def node_delta(self) -> int:
        """Change in AND-node count (negative means the graph shrank)."""
        return self.after.num_ands - self.before.num_ands

    @property
    def depth_delta(self) -> int:
        """Change in AIG depth (negative means the graph got shallower)."""
        return self.after.depth - self.before.depth


class Transform(abc.ABC):
    """Base class for AIG-to-AIG transformations."""

    #: Short identifier used in scripts (e.g. ``"b"`` for balance).
    name: str = "transform"

    @abc.abstractmethod
    def apply(self, aig: Aig) -> Aig:
        """Return a new AIG implementing the same function as *aig*."""

    def run(self, aig: Aig) -> TransformResult:
        """Apply the transform and return a result record with statistics.

        When journaling is enabled on the input graph it is propagated to
        the output graph together with one :class:`JournalEntry` describing
        which output nodes the transform touched (structural diff against
        the input), so downstream consumers — chiefly the incremental PPA
        evaluator — can locate their baseline and its dirty cone without
        rehashing.
        """
        before = aig.stats()
        result = self.apply(aig)
        if aig.journal.enabled and result is not aig:
            from repro.aig.journal import structural_diff

            diff = structural_diff(aig, result)
            result.journal.enabled = True
            result.journal.note_transform(
                self.name, set(diff.touched), parent_key=aig.exact_key()
            )
        return TransformResult(
            transform=self.name, before=before, after=result.stats(), aig=result
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class IdentityTransform(Transform):
    """A transform that only re-hashes the graph (baseline for comparisons)."""

    name = "noop"

    def apply(self, aig: Aig) -> Aig:
        return aig.cleanup()
