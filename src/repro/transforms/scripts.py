"""Named transformation scripts and the catalog of SA move combinations.

The baseline industry flow described in the paper selects one of 103
combinations of ABC's basic transformations at each optimization iteration.
This module provides:

* a registry of primitive transforms addressed by their short ABC-style
  names (``b``, ``rw``, ``rwz``, ``rf``, ``rfz``, ``rs``, ``st``),
* classic composite scripts (``compress``, ``compress2``-like sequences),
* :func:`script_catalog`, which deterministically generates a catalog of
  script combinations (103 by default, matching the paper) used as the move
  set of the simulated-annealing optimizer.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Dict, List, Sequence

from repro.errors import TransformError
from repro.transforms.balance import Balance
from repro.transforms.base import Transform
from repro.transforms.refactor import Refactor
from repro.transforms.resub import Resubstitute
from repro.transforms.rewrite import Rewrite
from repro.transforms.strash import Strash, Sweep


def primitive_transforms() -> Dict[str, Transform]:
    """Fresh instances of every primitive transform, keyed by short name."""
    return {
        "st": Strash(),
        "sweep": Sweep(),
        "b": Balance(),
        "rw": Rewrite(),
        "rwz": Rewrite(zero_cost=True),
        "rf": Refactor(),
        "rfz": Refactor(zero_cost=True),
        "rs": Resubstitute(),
    }


#: Classic ABC-style composite scripts, expressed over the primitive names.
NAMED_SCRIPTS: Dict[str, List[str]] = {
    "strash": ["st"],
    "balance": ["b"],
    "rewrite": ["rw"],
    "refactor": ["rf"],
    "resub": ["rs"],
    "compress": ["b", "rw", "rwz", "b", "rwz", "b"],
    "compress2": ["b", "rw", "rf", "b", "rw", "rwz", "b", "rfz", "rwz", "b"],
    "resyn": ["b", "rw", "rwz", "b", "rwz", "b"],
    "resyn2": ["b", "rw", "rf", "b", "rw", "rwz", "b", "rfz", "rwz", "b"],
    "quick": ["b", "rw"],
    "deep": ["rs", "rf", "b", "rw", "rwz", "b"],
}


def resolve_script(script: Sequence[str]) -> List[Transform]:
    """Turn a list of primitive names into transform instances."""
    registry = primitive_transforms()
    transforms: List[Transform] = []
    for step in script:
        if step not in registry:
            raise TransformError(
                f"unknown transform {step!r}; known: {sorted(registry)}"
            )
        transforms.append(registry[step])
    return transforms


def script_catalog(size: int = 103) -> List[List[str]]:
    """Generate *size* distinct transformation scripts.

    The catalog is built deterministically: single primitives first, then the
    classic composite scripts, then increasingly long combinations of the
    depth- and area-oriented primitives.  The default of 103 matches the
    number of combinations quoted for the industry flow in the paper.
    """
    if size < 1:
        raise TransformError("catalog size must be at least 1")
    primitives = ["b", "rw", "rwz", "rf", "rfz", "rs"]
    catalog: List[List[str]] = [[name] for name in primitives]
    catalog.extend(NAMED_SCRIPTS[name] for name in ("compress", "compress2", "deep", "quick"))

    # Pairs and triples of distinct primitives, in deterministic order.
    for length in (2, 3, 4):
        for combo in permutations(primitives, length):
            script = list(combo)
            if script not in catalog:
                catalog.append(script)
            if len(catalog) >= size:
                return catalog[:size]
    # If still short (very large requested size), append repeated compress runs.
    repeat = 2
    while len(catalog) < size:
        catalog.append(NAMED_SCRIPTS["compress"] * repeat)
        catalog.append(NAMED_SCRIPTS["compress2"] * repeat)
        repeat += 1
    return catalog[:size]
