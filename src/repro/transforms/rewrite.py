"""Cut-based rewriting (the ABC ``rewrite`` command, simplified).

For every AND node the transform enumerates k-feasible cuts, computes the
exact function of the best cut, and resynthesises that function from the cut
leaves.  The resynthesised implementation replaces the original cone when its
estimated cost is no worse; because the new graph is built with structural
hashing, logic shared with already-rebuilt parts of the network is reused for
free, which is where most of the node savings come from.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aig.cuts import Cut, cut_volume, enumerate_cuts
from repro.aig.graph import Aig, rebuild_map
from repro.aig.literals import is_complemented, literal_var, negate_if
from repro.aig.simulate import cone_truth_table
from repro.transforms.base import Transform
from repro.transforms.resynth import resynth_cost, synthesize_truth


class Rewrite(Transform):
    """Resynthesise small cones from their cut functions to save nodes."""

    name = "rw"

    def __init__(
        self,
        cut_size: int = 4,
        max_cuts_per_node: int = 8,
        zero_cost: bool = False,
    ) -> None:
        self.cut_size = cut_size
        self.max_cuts_per_node = max_cuts_per_node
        #: When true, replacements with equal estimated cost are also taken,
        #: which perturbs the structure without increasing node count
        #: (useful as a diversification move inside simulated annealing).
        self.zero_cost = zero_cost

    def apply(self, aig: Aig) -> Aig:
        cuts = enumerate_cuts(
            aig,
            k=self.cut_size,
            max_cuts_per_node=self.max_cuts_per_node,
            include_trivial=True,
        )
        new = Aig(aig.name)
        mapping = rebuild_map(aig, new)

        for var in aig.and_vars():
            f0, f1 = aig.fanins(var)
            default_lit = new.add_and(
                negate_if(mapping[literal_var(f0)], is_complemented(f0)),
                negate_if(mapping[literal_var(f1)], is_complemented(f1)),
            )
            best = self._try_rewrite(aig, new, mapping, var, cuts.get(var, ()))
            mapping[var] = best if best is not None else default_lit

        for lit, name in zip(aig.po_literals(), aig.po_names):
            new.add_po(negate_if(mapping[literal_var(lit)], is_complemented(lit)), name)
        result = new.cleanup()
        # The per-cone gain estimate ignores sharing outside the cut, so the
        # rebuilt graph can occasionally end up larger; in strict (non
        # zero-cost) mode fall back to the original structure in that case.
        if not self.zero_cost and result.num_ands > aig.num_ands:
            return aig.cleanup()
        return result

    def _try_rewrite(
        self,
        aig: Aig,
        new: Aig,
        mapping: Dict[int, int],
        var: int,
        node_cuts,
    ) -> Optional[int]:
        """Return a replacement literal for *var* or ``None`` to keep the copy."""
        best_lit: Optional[int] = None
        best_gain = 0 if not self.zero_cost else -1
        for cut in node_cuts:
            if cut.size < 2 or cut.leaves == (var,):
                continue
            if any(leaf not in mapping for leaf in cut.leaves):
                continue
            table = cone_truth_table(aig, var * 2, cut.leaves)
            original_cost = cut_volume(aig, cut)
            gain = original_cost - resynth_cost(table, cut.size)
            if gain > best_gain:
                leaf_literals = [mapping[leaf] for leaf in cut.leaves]
                best_lit = synthesize_truth(new, table, cut.size, leaf_literals)
                best_gain = gain
        return best_lit
