"""Functional reduction / resubstitution.

Two simplifications are performed, both justified by exact functional
signatures:

* nodes whose global function is constant are replaced by that constant;
* nodes computing the same global function (possibly complemented) are
  merged, keeping the representative with the smallest logic level.

When the design has few primary inputs (the benchmark designs of the paper
have 14-18), exhaustive simulation gives *exact* global functions, so the
merge is provably safe.  For wider designs the pass uses random signatures
only to *identify* candidates, then verifies each candidate pair exactly over
a common cut before merging; candidates that cannot be verified cheaply are
left untouched, keeping the transform conservative.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aig.graph import Aig, rebuild_map
from repro.aig.literals import (
    CONST0,
    CONST1,
    is_complemented,
    literal_var,
    negate,
    negate_if,
)
from repro.aig.simulate import exhaustive_pi_patterns, random_pi_patterns, simulate
from repro.transforms.base import Transform
from repro.utils.rng import RngLike, ensure_rng


class Resubstitute(Transform):
    """Merge functionally equivalent nodes and propagate constant functions."""

    name = "rs"

    def __init__(self, exact_pi_limit: int = 16, rng: RngLike = None) -> None:
        self.exact_pi_limit = exact_pi_limit
        self._rng = ensure_rng(rng)

    def apply(self, aig: Aig) -> Aig:
        exact = aig.num_pis <= self.exact_pi_limit
        if exact:
            num_patterns = 1 << aig.num_pis
            patterns = exhaustive_pi_patterns(aig.num_pis)
        else:
            num_patterns = 1024
            patterns = random_pi_patterns(aig.num_pis, num_patterns, self._rng)
        values = simulate(aig, patterns, num_patterns)
        mask = (1 << num_patterns) - 1

        levels = aig.levels()
        new = Aig(aig.name)
        mapping = rebuild_map(aig, new)
        # Map signature -> (old var, polarity) of the chosen representative.
        representative: Dict[int, int] = {0: CONST0}
        signature_of_lit: Dict[int, int] = {}

        for var in aig.and_vars():
            f0, f1 = aig.fanins(var)
            signature = values[var] & mask
            replacement: Optional[int] = None
            if exact:
                if signature == 0:
                    replacement = CONST0
                elif signature == mask:
                    replacement = CONST1
                elif signature in signature_of_lit:
                    replacement = signature_of_lit[signature]
                elif (~signature & mask) in signature_of_lit:
                    replacement = negate(signature_of_lit[~signature & mask])
            if replacement is None:
                replacement = new.add_and(
                    negate_if(mapping[literal_var(f0)], is_complemented(f0)),
                    negate_if(mapping[literal_var(f1)], is_complemented(f1)),
                )
                if exact and signature not in signature_of_lit:
                    signature_of_lit[signature] = replacement
            mapping[var] = replacement

        for lit, name in zip(aig.po_literals(), aig.po_names):
            new.add_po(negate_if(mapping[literal_var(lit)], is_complemented(lit)), name)
        return new.cleanup()
