"""Depth-oriented AND-tree balancing (the ABC ``balance`` command).

The transform finds maximal multi-input AND "supergates" (trees of AND nodes
connected through non-complemented edges), then rebuilds each one as a
balanced binary tree whose shape is chosen by a Huffman-style pairing of the
lowest-arrival leaves first.  This is the canonical way to reduce AIG depth
without changing the node count much.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, List

from repro.aig.graph import Aig, rebuild_map
from repro.aig.literals import is_complemented, literal_var, negate_if
from repro.transforms.base import Transform


class Balance(Transform):
    """Rebuild AND trees balanced by leaf level to minimise depth."""

    name = "b"

    def __init__(self, max_leaves: int = 32) -> None:
        self.max_leaves = max_leaves

    def apply(self, aig: Aig) -> Aig:
        new = Aig(aig.name)
        mapping = rebuild_map(aig, new)
        new_levels: Dict[int, int] = {0: 0}
        for var in aig.pi_vars:
            new_levels[literal_var(mapping[var])] = 0

        fanout = aig.fanout_counts()

        for var in aig.and_vars():
            leaves = self._collect_supergate_leaves(aig, var, fanout)
            leaf_literals = []
            for leaf_lit in leaves:
                leaf_var = literal_var(leaf_lit)
                mapped = negate_if(mapping[leaf_var], is_complemented(leaf_lit))
                leaf_literals.append(mapped)
            mapping[var] = self._build_balanced_and(new, leaf_literals, new_levels)

        for lit, name in zip(aig.po_literals(), aig.po_names):
            new_lit = negate_if(mapping[literal_var(lit)], is_complemented(lit))
            new.add_po(new_lit, name)
        return new.cleanup()

    def _collect_supergate_leaves(self, aig: Aig, root: int, fanout: List[int]) -> List[int]:
        """Leaf literals of the maximal AND tree rooted at *root*.

        A fanin is expanded (rather than kept as a leaf) when it is a
        non-complemented AND node whose only consumer is this tree; this
        mirrors ABC's behaviour of not duplicating shared logic.
        """
        leaves: List[int] = []
        stack = [root]
        expanded = {root}
        while stack:
            var = stack.pop()
            for fanin_lit in aig.fanins(var):
                fanin_var = literal_var(fanin_lit)
                expandable = (
                    not is_complemented(fanin_lit)
                    and aig.is_and(fanin_var)
                    and fanout[fanin_var] == 1
                    and len(leaves) + len(stack) < self.max_leaves
                    and fanin_var not in expanded
                )
                if expandable:
                    expanded.add(fanin_var)
                    stack.append(fanin_var)
                else:
                    leaves.append(fanin_lit)
        return leaves

    @staticmethod
    def _build_balanced_and(aig: Aig, literals: List[int], levels: Dict[int, int]) -> int:
        """AND the literals pairing lowest-level operands first (Huffman style)."""
        if not literals:
            return 1  # empty conjunction is constant true
        tiebreak = count()
        heap = []
        for lit in literals:
            level = levels.get(literal_var(lit), 0)
            heapq.heappush(heap, (level, next(tiebreak), lit))
        while len(heap) > 1:
            level_a, _, a = heapq.heappop(heap)
            level_b, _, b = heapq.heappop(heap)
            result = aig.add_and(a, b)
            result_var = literal_var(result)
            result_level = max(level_a, level_b) + 1
            existing = levels.get(result_var)
            if existing is None or result_level < existing:
                levels[result_var] = result_level
            heapq.heappush(heap, (levels[result_var], next(tiebreak), result))
        _, _, root = heap[0]
        return root
