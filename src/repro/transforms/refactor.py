"""Cone refactoring (the ABC ``refactor`` command, simplified).

Refactoring targets larger cones than rewriting: for each AND node it grows a
reconvergence-bounded cut of up to ``max_leaves`` leaves, collapses the cone
into a truth table, and resynthesises it with the shared ISOP builder.  The
replacement is kept when the estimated node count does not increase (or
always, in zero-cost mode).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.aig.graph import Aig, rebuild_map
from repro.aig.literals import is_complemented, literal_var, negate_if
from repro.aig.simulate import cone_truth_table
from repro.transforms.base import Transform
from repro.transforms.resynth import resynth_cost, synthesize_truth


class Refactor(Transform):
    """Collapse and resynthesise medium-size cones rooted at AND nodes."""

    name = "rf"

    def __init__(self, max_leaves: int = 10, min_cone_size: int = 6, zero_cost: bool = False) -> None:
        self.max_leaves = max_leaves
        self.min_cone_size = min_cone_size
        self.zero_cost = zero_cost

    def apply(self, aig: Aig) -> Aig:
        new = Aig(aig.name)
        mapping = rebuild_map(aig, new)
        fanout = aig.fanout_counts()
        self._levels = aig.levels()

        for var in aig.and_vars():
            f0, f1 = aig.fanins(var)
            default_lit = new.add_and(
                negate_if(mapping[literal_var(f0)], is_complemented(f0)),
                negate_if(mapping[literal_var(f1)], is_complemented(f1)),
            )
            replacement = None
            # Only refactor at "cone roots": nodes consumed by several other
            # nodes or driving a PO are natural boundaries worth the effort.
            if fanout[var] != 1 or self.zero_cost:
                replacement = self._try_refactor(aig, new, mapping, var)
            mapping[var] = replacement if replacement is not None else default_lit

        for lit, name in zip(aig.po_literals(), aig.po_names):
            new.add_po(negate_if(mapping[literal_var(lit)], is_complemented(lit)), name)
        result = new.cleanup()
        # As with rewriting, the cone-local cost estimate can misjudge shared
        # logic; strict mode never accepts a net growth in node count.
        if not self.zero_cost and result.num_ands > aig.num_ands:
            return aig.cleanup()
        return result

    # ------------------------------------------------------------------ #
    def _grow_cone(self, aig: Aig, root: int) -> Tuple[List[int], int]:
        """Grow a cut of at most ``max_leaves`` leaves below *root*.

        Expansion is breadth-first from the root, always expanding the leaf
        that is an AND node with the highest level (deepest), until expanding
        any further leaf would exceed the leaf budget.  Returns the leaf list
        and the number of AND nodes strictly inside the cone.
        """
        levels = self._levels
        is_pi = aig._is_pi
        fanin0 = aig._fanin0
        fanin1 = aig._fanin1
        max_leaves = self.max_leaves
        inside: Set[int] = {root}
        leaves: Set[int] = {fanin0[root] >> 1, fanin1[root] >> 1}
        while True:
            # Deepest AND-node leaf, first-maximum over set iteration order
            # (matching max() over the same set's comprehension).
            candidate = -1
            best_level = -1
            # repro-lint: ignore[D1] -- the first-max tie-break over set
            # iteration order is the pinned pre-refactor behaviour (PR 7):
            # the set's construction history is kept identical on purpose,
            # so iteration order is deterministic and part of the contract.
            for leaf in leaves:
                if leaf != 0 and not is_pi[leaf] and levels[leaf] > best_level:
                    best_level = levels[leaf]
                    candidate = leaf
            if candidate < 0:
                break
            c0 = fanin0[candidate] >> 1
            c1 = fanin1[candidate] >> 1
            # The new set is built with the same operation sequence as the
            # original implementation: iteration order of a set feeds the
            # first-maximum tie-break above, so the construction history must
            # stay identical for results to be reproducible bit-for-bit.
            new_leaves = (set(leaves) - {candidate}) | {c0, c1}
            if len(new_leaves) > max_leaves:
                break
            leaves = new_leaves
            inside.add(candidate)
        return sorted(leaves), len(inside)

    def _try_refactor(
        self, aig: Aig, new: Aig, mapping: Dict[int, int], var: int
    ) -> Optional[int]:
        leaves, cone_size = self._grow_cone(aig, var)
        if cone_size < self.min_cone_size or len(leaves) < 2:
            return None
        if any(leaf not in mapping for leaf in leaves):
            return None
        num_vars = len(leaves)
        table = cone_truth_table(aig, var * 2, leaves)
        gain = cone_size - resynth_cost(table, num_vars)
        threshold = -1 if self.zero_cost else 0
        if gain <= threshold:
            return None
        leaf_literals = [mapping[leaf] for leaf in leaves]
        return synthesize_truth(new, table, num_vars, leaf_literals)
