"""Reader and writer for the ISCAS ``.bench`` netlist format.

BENCH is a tiny, human-readable gate-level format (``INPUT``, ``OUTPUT`` and
``name = GATE(args)`` lines).  The reader converts arbitrary AND/NAND/OR/
NOR/XOR/XNOR/NOT/BUFF gates into AIG nodes; the writer emits one ``AND`` per
AIG node plus ``NOT`` wrappers for complemented edges, so a written file can
be read back into a functionally identical graph.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import Dict, List, TextIO, Union

from repro.aig.graph import Aig
from repro.aig.literals import is_complemented, literal_var, negate
from repro.errors import NetlistParseError, ParseError
from repro.io.guard import parse_guard

PathLike = Union[str, Path]

_LINE_RE = re.compile(r"^\s*([\w.\[\]]+)\s*=\s*(\w+)\s*\(([^)]*)\)\s*$")

_SUPPORTED_GATES = {
    "AND",
    "NAND",
    "OR",
    "NOR",
    "XOR",
    "XNOR",
    "NOT",
    "INV",
    "BUF",
    "BUFF",
}


def read_bench(source: Union[PathLike, TextIO]) -> Aig:
    """Parse a ``.bench`` file (or stream) into an :class:`Aig`."""
    if hasattr(source, "read"):
        with parse_guard("BENCH input"):
            text = source.read()  # type: ignore[union-attr]
        name = "bench"
    else:
        path = Path(source)
        with parse_guard(f"BENCH file {path.name}"):
            text = path.read_text(encoding="utf-8")
        name = path.stem
    return loads_bench(text, name=name)


def loads_bench(text: str, name: str = "bench") -> Aig:
    """Parse BENCH text into an :class:`Aig`.

    Raises :class:`~repro.errors.NetlistParseError` on any malformed input.
    """
    with parse_guard("BENCH text"):
        return _loads_bench(text, name)


def _loads_bench(text: str, name: str) -> Aig:
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[tuple] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("INPUT(") and line.endswith(")"):
            inputs.append(line[line.index("(") + 1 : -1].strip())
            continue
        if upper.startswith("OUTPUT(") and line.endswith(")"):
            outputs.append(line[line.index("(") + 1 : -1].strip())
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise NetlistParseError(f"cannot parse BENCH line: {raw_line!r}")
        target, gate, args = match.groups()
        gate = gate.upper()
        if gate not in _SUPPORTED_GATES:
            raise NetlistParseError(f"unsupported BENCH gate type: {gate!r}")
        operands = [a.strip() for a in args.split(",") if a.strip()]
        gates.append((target, gate, operands))

    aig = Aig(name)
    signals: Dict[str, int] = {}
    for input_name in inputs:
        signals[input_name] = aig.add_pi(input_name)

    # Gates may be listed out of order; resolve iteratively.
    pending = list(gates)
    progress = True
    while pending and progress:
        progress = False
        still_pending = []
        for target, gate, operands in pending:
            if all(op in signals for op in operands):
                signals[target] = _build_gate(aig, gate, [signals[o] for o in operands])
                progress = True
            else:
                still_pending.append((target, gate, operands))
        pending = still_pending
    if pending:
        unresolved = ", ".join(t for t, _, _ in pending[:5])
        raise NetlistParseError(f"unresolved signals (cycle or missing driver): {unresolved}")

    for output_name in outputs:
        if output_name not in signals:
            raise NetlistParseError(f"output {output_name!r} has no driver")
        aig.add_po(signals[output_name], output_name)
    return aig


def _build_gate(aig: Aig, gate: str, literals: List[int]) -> int:
    if gate in ("NOT", "INV"):
        if len(literals) != 1:
            raise NetlistParseError("NOT gate requires exactly one operand")
        return negate(literals[0])
    if gate in ("BUF", "BUFF"):
        if len(literals) != 1:
            raise NetlistParseError("BUF gate requires exactly one operand")
        return literals[0]
    if not literals:
        raise NetlistParseError(f"{gate} gate requires at least one operand")
    if gate == "AND":
        return aig.add_and_multi(literals)
    if gate == "NAND":
        return negate(aig.add_and_multi(literals))
    if gate == "OR":
        return aig.add_or_multi(literals)
    if gate == "NOR":
        return negate(aig.add_or_multi(literals))
    if gate in ("XOR", "XNOR"):
        result = literals[0]
        for lit in literals[1:]:
            result = aig.add_xor(result, lit)
        return negate(result) if gate == "XNOR" else result
    raise NetlistParseError(f"unsupported gate {gate!r}")


def write_bench(aig: Aig, destination: Union[PathLike, TextIO]) -> None:
    """Write *aig* to *destination* in BENCH format."""
    if hasattr(destination, "write"):
        _write_bench_stream(aig, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write_bench_stream(aig, handle)


def dumps_bench(aig: Aig) -> str:
    """Return the BENCH text for *aig*."""
    buffer = io.StringIO()
    _write_bench_stream(aig, buffer)
    return buffer.getvalue()


def _write_bench_stream(aig: Aig, stream: TextIO) -> None:
    stream.write(f"# {aig.name} written by repro\n")
    pi_names = aig.pi_names
    names: Dict[int, str] = {0: "const0"}
    uses_const = any(literal_var(lit) == 0 for lit in aig.po_literals())
    for var, pi_name in zip(aig.pi_vars, pi_names):
        names[var] = pi_name
        stream.write(f"INPUT({pi_name})\n")
    for po_name in aig.po_names:
        stream.write(f"OUTPUT({po_name})\n")
    if uses_const:
        # BENCH has no constant primitive; emit x AND !x style zero.
        if pi_names:
            p = pi_names[0]
            stream.write(f"const0_n = NOT({p})\n")
            stream.write(f"const0 = AND({p}, const0_n)\n")
        else:
            raise ParseError("cannot express a constant output without any inputs")

    def ref(lit: int) -> str:
        var = literal_var(lit)
        base = names[var]
        if is_complemented(lit):
            inverted = f"{base}_not"
            if inverted not in emitted_inverters:
                stream.write(f"{inverted} = NOT({base})\n")
                emitted_inverters.add(inverted)
            return inverted
        return base

    emitted_inverters: set = set()
    for var in aig.and_vars():
        names[var] = f"n{var}"
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        stream.write(f"{names[var]} = AND({ref(f0)}, {ref(f1)})\n")
    for po_name, lit in zip(aig.po_names, aig.po_literals()):
        stream.write(f"{po_name} = BUFF({ref(lit)})\n")
