"""Structural Verilog writers.

Two writers are provided:

* :func:`write_aig_verilog` emits an AIG as a flat module of ``and``/``not``
  primitives, useful for importing designs into commercial tools.
* :func:`write_mapped_verilog` emits a technology-mapped netlist (see
  :mod:`repro.mapping.netlist`) as standard-cell instances, mirroring what a
  synthesis tool would hand to place and route.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, TextIO, Union

from repro.aig.graph import Aig
from repro.aig.literals import is_complemented, literal_var

PathLike = Union[str, Path]


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text or "_unnamed"


def write_aig_verilog(aig: Aig, destination: Union[PathLike, TextIO]) -> None:
    """Write *aig* as structural Verilog built from ``and``/``not`` primitives."""
    if hasattr(destination, "write"):
        _write_aig_stream(aig, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write_aig_stream(aig, handle)


def dumps_aig_verilog(aig: Aig) -> str:
    """Return the structural Verilog text for *aig*."""
    buffer = io.StringIO()
    _write_aig_stream(aig, buffer)
    return buffer.getvalue()


def _write_aig_stream(aig: Aig, stream: TextIO) -> None:
    pi_names = [_sanitize(n) for n in aig.pi_names]
    po_names = [_sanitize(n) for n in aig.po_names]
    module = _sanitize(aig.name)
    ports = ", ".join(pi_names + po_names)
    stream.write(f"module {module}({ports});\n")
    for name in pi_names:
        stream.write(f"  input {name};\n")
    for name in po_names:
        stream.write(f"  output {name};\n")

    names: Dict[int, str] = {0: "const0_w"}
    stream.write("  wire const0_w;\n  assign const0_w = 1'b0;\n")
    for var, name in zip(aig.pi_vars, pi_names):
        names[var] = name
    for var in aig.and_vars():
        names[var] = f"n{var}"
        stream.write(f"  wire n{var};\n")

    inverter_wires: Dict[int, str] = {}

    def ref(lit: int) -> str:
        var = literal_var(lit)
        if not is_complemented(lit):
            return names[var]
        if var not in inverter_wires:
            wire = f"{names[var]}_bar"
            inverter_wires[var] = wire
            stream.write(f"  wire {wire};\n")
            stream.write(f"  not({wire}, {names[var]});\n")
        return inverter_wires[var]

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        stream.write(f"  and({names[var]}, {ref(f0)}, {ref(f1)});\n")
    for name, lit in zip(po_names, aig.po_literals()):
        stream.write(f"  assign {name} = {ref(lit)};\n")
    stream.write("endmodule\n")


def write_mapped_verilog(netlist, destination: Union[PathLike, TextIO]) -> None:
    """Write a mapped netlist (``repro.mapping.netlist.MappedNetlist``) as Verilog."""
    if hasattr(destination, "write"):
        _write_mapped_stream(netlist, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write_mapped_stream(netlist, handle)


def dumps_mapped_verilog(netlist) -> str:
    """Return the Verilog text for a mapped netlist."""
    buffer = io.StringIO()
    _write_mapped_stream(netlist, buffer)
    return buffer.getvalue()


def _write_mapped_stream(netlist, stream: TextIO) -> None:
    pi_names = [_sanitize(n) for n in netlist.pi_names]
    po_names = [_sanitize(n) for n in netlist.po_names]
    module = _sanitize(netlist.name)
    ports = ", ".join(pi_names + po_names)
    stream.write(f"module {module}({ports});\n")
    for name in pi_names:
        stream.write(f"  input {name};\n")
    for name in po_names:
        stream.write(f"  output {name};\n")

    net_names: Dict[int, str] = {}
    for index, name in zip(netlist.pi_nets, pi_names):
        net_names[index] = name

    for net, value in getattr(netlist, "constant_nets", {}).items():
        net_names[net] = f"const{value}_w{net}"
        stream.write(f"  wire {net_names[net]};\n")
        stream.write(f"  assign {net_names[net]} = 1'b{value};\n")

    for gate in netlist.gates:
        if gate.output not in net_names:
            net_names[gate.output] = f"w{gate.output}"
            stream.write(f"  wire w{gate.output};\n")

    for idx, gate in enumerate(netlist.gates):
        pins = []
        for pin_name, net in zip(gate.cell.input_names, gate.inputs):
            pins.append(f".{_sanitize(pin_name)}({net_names[net]})")
        pins.append(f".{_sanitize(gate.cell.output_name)}({net_names[gate.output]})")
        stream.write(f"  {gate.cell.name} g{idx} (" + ", ".join(pins) + ");\n")

    for name, net in zip(po_names, netlist.po_nets):
        stream.write(f"  assign {name} = {net_names[net]};\n")
    stream.write("endmodule\n")
