"""BLIF reader and writer for AIGs.

The Berkeley Logic Interchange Format (BLIF) is the lingua franca between
logic synthesis tools.  The writer turns each AND node into a two-input
``.names`` cover with edge inversions folded into the cover rows; the reader
accepts the general combinational subset of the format (arbitrary
single-output ``.names`` covers with don't-cares, in any declaration order)
so that designs exported by ABC or other tools can be imported for
cross-checking.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.aig.graph import Aig
from repro.aig.literals import CONST0, CONST1, is_complemented, literal_var, negate
from repro.errors import NetlistParseError
from repro.io.guard import parse_guard

PathLike = Union[str, Path]


def write_blif(aig: Aig, destination: Union[PathLike, TextIO]) -> None:
    """Write *aig* to *destination* in BLIF format."""
    if hasattr(destination, "write"):
        _write_blif_stream(aig, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write_blif_stream(aig, handle)


def dumps_blif(aig: Aig) -> str:
    """Return the BLIF text for *aig*."""
    buffer = io.StringIO()
    _write_blif_stream(aig, buffer)
    return buffer.getvalue()


def _write_blif_stream(aig: Aig, stream: TextIO) -> None:
    names: Dict[int, str] = {0: "const0"}
    for var, pi_name in zip(aig.pi_vars, aig.pi_names):
        names[var] = pi_name
    for var in aig.and_vars():
        names[var] = f"n{var}"

    stream.write(f".model {aig.name}\n")
    stream.write(".inputs " + " ".join(aig.pi_names) + "\n")
    stream.write(".outputs " + " ".join(aig.po_names) + "\n")

    if any(literal_var(lit) == 0 for lit in aig.po_literals()):
        stream.write(".names const0\n")  # empty cover == constant 0

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        in0, in1 = names[literal_var(f0)], names[literal_var(f1)]
        bit0 = "0" if is_complemented(f0) else "1"
        bit1 = "0" if is_complemented(f1) else "1"
        stream.write(f".names {in0} {in1} {names[var]}\n")
        stream.write(f"{bit0}{bit1} 1\n")

    for po_name, lit in zip(aig.po_names, aig.po_literals()):
        driver = names[literal_var(lit)]
        stream.write(f".names {driver} {po_name}\n")
        stream.write(("0 1\n" if is_complemented(lit) else "1 1\n"))
    stream.write(".end\n")


# --------------------------------------------------------------------------- #
# Reader
# --------------------------------------------------------------------------- #
class _Cover:
    """One ``.names`` block: inputs, output, and its SOP rows."""

    def __init__(self, inputs: List[str], output: str) -> None:
        self.inputs = inputs
        self.output = output
        self.rows: List[Tuple[str, str]] = []


def read_blif(source: Union[PathLike, TextIO]) -> Aig:
    """Parse a BLIF file (or stream) into an :class:`Aig`."""
    if hasattr(source, "read"):
        with parse_guard("BLIF input"):
            text = source.read()  # type: ignore[union-attr]
        name = "blif"
    else:
        path = Path(source)
        with parse_guard(f"BLIF file {path.name}"):
            text = path.read_text(encoding="utf-8")
        name = path.stem
    return loads_blif(text, default_name=name)


def loads_blif(text: str, default_name: str = "blif") -> Aig:
    """Parse BLIF text (combinational ``.names`` subset) into an :class:`Aig`.

    Raises :class:`~repro.errors.NetlistParseError` on any malformed input.
    """
    with parse_guard("BLIF text"):
        return _loads_blif(text, default_name)


def _loads_blif(text: str, default_name: str) -> Aig:
    model_name, inputs, outputs, covers = _parse_blif_sections(text, default_name)
    if not outputs:
        raise NetlistParseError("BLIF model declares no outputs")

    aig = Aig(model_name)
    signals: Dict[str, int] = {}
    for pi_name in inputs:
        signals[pi_name] = aig.add_pi(pi_name)

    cover_of: Dict[str, _Cover] = {}
    for cover in covers:
        if cover.output in cover_of:
            raise NetlistParseError(f"signal {cover.output!r} is defined by more than one .names")
        cover_of[cover.output] = cover

    in_progress: set = set()

    def resolve(signal: str) -> int:
        if signal in signals:
            return signals[signal]
        if signal not in cover_of:
            raise NetlistParseError(f"signal {signal!r} is used but never defined")
        if signal in in_progress:
            raise NetlistParseError(f"combinational cycle through signal {signal!r}")
        in_progress.add(signal)
        cover = cover_of[signal]
        fanin_lits = [resolve(name) for name in cover.inputs]
        literal = _build_cover(aig, fanin_lits, cover)
        in_progress.discard(signal)
        signals[signal] = literal
        return literal

    for po_name in outputs:
        aig.add_po(resolve(po_name), po_name)
    return aig


def _parse_blif_sections(
    text: str, default_name: str
) -> Tuple[str, List[str], List[str], List[_Cover]]:
    model_name = default_name
    inputs: List[str] = []
    outputs: List[str] = []
    covers: List[_Cover] = []
    current: Optional[_Cover] = None

    for raw_line in _logical_lines(text):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("."):
            tokens = line.split()
            directive = tokens[0]
            current = None
            if directive == ".model":
                if len(tokens) > 1:
                    model_name = tokens[1]
            elif directive == ".inputs":
                inputs.extend(tokens[1:])
            elif directive == ".outputs":
                outputs.extend(tokens[1:])
            elif directive == ".names":
                if len(tokens) < 2:
                    raise NetlistParseError(".names needs at least an output signal")
                current = _Cover(inputs=tokens[1:-1], output=tokens[-1])
                covers.append(current)
            elif directive in (".end", ".exdc"):
                current = None
            elif directive in (".latch", ".subckt", ".gate", ".mlatch"):
                raise NetlistParseError(f"unsupported BLIF directive {directive!r} (combinational .names only)")
            # Other dot-directives (.default_input_arrival, ...) are ignored.
            continue
        if current is None:
            raise NetlistParseError(f"unexpected BLIF line outside a .names block: {raw_line!r}")
        current.rows.append(_parse_cover_row(line, len(current.inputs)))
    return model_name, inputs, outputs, covers


def _logical_lines(text: str):
    """Yield lines with comments stripped and backslash continuations joined."""
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        yield pending + line
        pending = ""
    if pending:
        yield pending


def _parse_cover_row(line: str, num_inputs: int) -> Tuple[str, str]:
    parts = line.split()
    if num_inputs == 0:
        if len(parts) != 1 or parts[0] not in ("0", "1"):
            raise NetlistParseError(f"malformed constant cover row: {line!r}")
        return "", parts[0]
    if len(parts) != 2:
        raise NetlistParseError(f"malformed cover row: {line!r}")
    pattern, value = parts
    if len(pattern) != num_inputs:
        raise NetlistParseError(
            f"cover row {line!r} has {len(pattern)} positions for {num_inputs} inputs"
        )
    if any(ch not in "01-" for ch in pattern):
        raise NetlistParseError(f"cover row {line!r} contains characters outside 0/1/-")
    if value not in ("0", "1"):
        raise NetlistParseError(f"cover output value must be 0 or 1, got {value!r}")
    return pattern, value


def _build_cover(aig: Aig, fanin_lits: List[int], cover: _Cover) -> int:
    if not cover.rows:
        # An empty cover is the constant-0 function.
        return CONST0
    phases = {value for _, value in cover.rows}
    if len(phases) != 1:
        raise NetlistParseError(
            f"cover for {cover.output!r} mixes ON-set and OFF-set rows"
        )
    phase = phases.pop()
    if not cover.inputs:
        return CONST1 if phase == "1" else CONST0
    cube_lits: List[int] = []
    for pattern, _ in cover.rows:
        term: List[int] = []
        for position, ch in enumerate(pattern):
            if ch == "-":
                continue
            lit = fanin_lits[position]
            term.append(lit if ch == "1" else negate(lit))
        cube_lits.append(aig.add_and_multi(term))
    result = aig.add_or_multi(cube_lits)
    return result if phase == "1" else negate(result)
