"""Reader and writer for the ASCII AIGER (``.aag``) format.

Only the combinational subset is supported (no latches), which matches the
designs used throughout the paper.  The ASCII variant is preferred over the
binary one because the files are human-readable and diff-able in tests; the
format is otherwise identical in expressiveness for combinational circuits.

Reference: Biere, *The AIGER And-Inverter Graph (AIG) Format*.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, List, TextIO, Union

from repro.aig.graph import Aig
from repro.aig.literals import is_complemented, literal_var, negate_if
from repro.errors import NetlistParseError
from repro.io.guard import parse_guard

PathLike = Union[str, Path]


def write_aag(aig: Aig, destination: Union[PathLike, TextIO]) -> None:
    """Write *aig* to *destination* (path or text stream) in ASCII AIGER."""
    if hasattr(destination, "write"):
        _write_aag_stream(aig, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as handle:
        _write_aag_stream(aig, handle)


def dumps_aag(aig: Aig) -> str:
    """Return the ASCII AIGER text for *aig*."""
    buffer = io.StringIO()
    _write_aag_stream(aig, buffer)
    return buffer.getvalue()


def _write_aag_stream(aig: Aig, stream: TextIO) -> None:
    # AIGER requires AND nodes to be numbered after all inputs.  Our graphs
    # interleave PIs and ANDs freely, so renumber: PIs first, then ANDs in
    # topological order.
    var_to_aiger: Dict[int, int] = {0: 0}
    next_index = 1
    for var in aig.pi_vars:
        var_to_aiger[var] = next_index
        next_index += 1
    and_vars = list(aig.and_vars())
    for var in and_vars:
        var_to_aiger[var] = next_index
        next_index += 1

    def lit_of(lit: int) -> int:
        var = literal_var(lit)
        return 2 * var_to_aiger[var] + (1 if is_complemented(lit) else 0)

    max_var = next_index - 1
    stream.write(
        f"aag {max_var} {aig.num_pis} 0 {aig.num_pos} {len(and_vars)}\n"
    )
    for var in aig.pi_vars:
        stream.write(f"{2 * var_to_aiger[var]}\n")
    for lit in aig.po_literals():
        stream.write(f"{lit_of(lit)}\n")
    for var in and_vars:
        f0, f1 = aig.fanins(var)
        stream.write(f"{2 * var_to_aiger[var]} {lit_of(f0)} {lit_of(f1)}\n")
    for index, name in enumerate(aig.pi_names):
        stream.write(f"i{index} {name}\n")
    for index, name in enumerate(aig.po_names):
        stream.write(f"o{index} {name}\n")
    stream.write("c\nwritten by repro\n")


def read_aag(source: Union[PathLike, TextIO]) -> Aig:
    """Parse an ASCII AIGER file (combinational only) into an :class:`Aig`."""
    if hasattr(source, "read"):
        with parse_guard("ASCII AIGER input"):
            text = source.read()  # type: ignore[union-attr]
        name = "aag"
    else:
        path = Path(source)
        with parse_guard(f"ASCII AIGER file {path.name}"):
            text = path.read_text(encoding="utf-8")
        name = path.stem
    return loads_aag(text, name=name)


def loads_aag(text: str, name: str = "aag") -> Aig:
    """Parse ASCII AIGER text into an :class:`Aig`.

    Raises :class:`~repro.errors.NetlistParseError` on any malformed input.
    """
    with parse_guard("ASCII AIGER text"):
        return _loads_aag(text, name)


def _loads_aag(text: str, name: str) -> Aig:
    lines = text.splitlines()
    if not lines:
        raise NetlistParseError("empty AIGER file")
    header = lines[0].split()
    if len(header) != 6 or header[0] != "aag":
        raise NetlistParseError(f"malformed AIGER header: {lines[0]!r}")
    try:
        max_var, num_inputs, num_latches, num_outputs, num_ands = map(int, header[1:])
    except ValueError as exc:
        raise NetlistParseError(f"non-integer field in AIGER header: {lines[0]!r}") from exc
    if num_latches != 0:
        raise NetlistParseError("latches are not supported (combinational AIGs only)")

    body = lines[1:]
    expected_defs = num_inputs + num_outputs + num_ands
    if len(body) < expected_defs:
        raise NetlistParseError(
            f"AIGER body too short: expected at least {expected_defs} lines, "
            f"got {len(body)}"
        )
    input_lits = []
    for line in body[:num_inputs]:
        input_lits.append(_parse_int(line))
    output_lits = []
    for line in body[num_inputs : num_inputs + num_outputs]:
        output_lits.append(_parse_int(line))
    and_defs = []
    for line in body[num_inputs + num_outputs : expected_defs]:
        parts = line.split()
        if len(parts) != 3:
            raise NetlistParseError(f"malformed AND definition: {line!r}")
        and_defs.append(tuple(_parse_int(p) for p in parts))

    # Symbol table (optional).
    input_names: Dict[int, str] = {}
    output_names: Dict[int, str] = {}
    for line in body[expected_defs:]:
        if not line or line.startswith("c"):
            break
        if line[0] == "i":
            idx, _, symbol = line[1:].partition(" ")
            input_names[int(idx)] = symbol
        elif line[0] == "o":
            idx, _, symbol = line[1:].partition(" ")
            output_names[int(idx)] = symbol

    aig = Aig(name)
    aiger_var_to_lit: Dict[int, int] = {0: 0}
    for index, lit in enumerate(input_lits):
        if lit % 2 != 0:
            raise NetlistParseError(f"input literal {lit} must not be complemented")
        aiger_var_to_lit[lit // 2] = aig.add_pi(input_names.get(index, f"pi{index}"))

    def resolve(lit: int) -> int:
        var = lit // 2
        if var not in aiger_var_to_lit:
            raise NetlistParseError(f"literal {lit} used before definition")
        return negate_if(aiger_var_to_lit[var], lit % 2 == 1)

    # AND definitions in AIGER are required to be topologically ordered.
    for lhs, rhs0, rhs1 in and_defs:
        if lhs % 2 != 0:
            raise NetlistParseError(f"AND output literal {lhs} must not be complemented")
        aiger_var_to_lit[lhs // 2] = aig.add_and(resolve(rhs0), resolve(rhs1))

    for index, lit in enumerate(output_lits):
        aig.add_po(resolve(lit), output_names.get(index, f"po{index}"))
    return aig


def _parse_int(text: str) -> int:
    try:
        return int(text.strip())
    except ValueError as exc:
        raise NetlistParseError(f"expected an integer, got {text!r}") from exc
