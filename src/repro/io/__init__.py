"""Circuit file I/O: AIGER (ASCII + binary), BENCH, BLIF, Verilog, DOT."""

from repro.io.aiger import dumps_aag, loads_aag, read_aag, write_aag
from repro.io.aiger_binary import (
    dumps_aig_binary,
    loads_aig_binary,
    read_aig_binary,
    write_aig_binary,
)
from repro.io.bench import dumps_bench, loads_bench, read_bench, write_bench
from repro.io.blif import dumps_blif, loads_blif, read_blif, write_blif
from repro.io.dot import aig_to_dot, netlist_to_dot, write_aig_dot, write_netlist_dot
from repro.io.verilog import (
    dumps_aig_verilog,
    dumps_mapped_verilog,
    write_aig_verilog,
    write_mapped_verilog,
)
from repro.io.guard import parse_guard
from repro.io.verilog_read import (
    loads_aig_verilog,
    loads_mapped_verilog,
    read_aig_verilog,
    read_mapped_verilog,
)

__all__ = [
    "aig_to_dot",
    "dumps_aag",
    "dumps_aig_binary",
    "loads_aag",
    "loads_aig_binary",
    "read_aag",
    "read_aig_binary",
    "write_aag",
    "write_aig_binary",
    "dumps_bench",
    "loads_bench",
    "read_bench",
    "write_bench",
    "dumps_blif",
    "loads_blif",
    "read_blif",
    "write_blif",
    "dumps_aig_verilog",
    "dumps_mapped_verilog",
    "loads_aig_verilog",
    "loads_mapped_verilog",
    "netlist_to_dot",
    "parse_guard",
    "read_aig_verilog",
    "read_mapped_verilog",
    "write_aig_verilog",
    "write_aig_dot",
    "write_mapped_verilog",
    "write_netlist_dot",
]
