"""Reader and writer for the binary AIGER (``.aig``) format.

The binary variant is the format ABC and most model checkers exchange by
default: the header is ASCII, primary inputs are implicit, and every AND gate
is stored as two LEB128-style variable-length deltas.  Only the combinational
subset (no latches) is supported, matching the ASCII reader in
:mod:`repro.io.aiger`.

Reference: Biere, *The AIGER And-Inverter Graph (AIG) Format*, Section
"Binary Format".
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import BinaryIO, Dict, List, Tuple, Union

from repro.aig.graph import Aig
from repro.aig.literals import is_complemented, literal_var, negate_if
from repro.errors import NetlistParseError, ParseError
from repro.io.guard import parse_guard

PathLike = Union[str, Path]


def write_aig_binary(aig: Aig, destination: Union[PathLike, BinaryIO]) -> None:
    """Write *aig* to *destination* (path or binary stream) in binary AIGER."""
    data = dumps_aig_binary(aig)
    if hasattr(destination, "write"):
        destination.write(data)  # type: ignore[union-attr]
        return
    Path(destination).write_bytes(data)


def dumps_aig_binary(aig: Aig) -> bytes:
    """Return the binary AIGER encoding of *aig*."""
    # Renumber: PIs first (1..I), then ANDs in topological order, as the
    # binary format requires every AND literal to exceed both of its fanins.
    var_to_index: Dict[int, int] = {0: 0}
    next_index = 1
    for var in aig.pi_vars:
        var_to_index[var] = next_index
        next_index += 1
    and_vars = list(aig.and_vars())
    for var in and_vars:
        var_to_index[var] = next_index
        next_index += 1

    def lit_of(lit: int) -> int:
        return 2 * var_to_index[literal_var(lit)] + (1 if is_complemented(lit) else 0)

    buffer = io.BytesIO()
    max_var = next_index - 1
    header = f"aig {max_var} {aig.num_pis} 0 {aig.num_pos} {len(and_vars)}\n"
    buffer.write(header.encode("ascii"))
    for lit in aig.po_literals():
        buffer.write(f"{lit_of(lit)}\n".encode("ascii"))
    for var in and_vars:
        lhs = 2 * var_to_index[var]
        f0, f1 = aig.fanins(var)
        rhs0, rhs1 = lit_of(f0), lit_of(f1)
        if rhs0 < rhs1:
            rhs0, rhs1 = rhs1, rhs0
        if rhs0 >= lhs:
            raise ParseError(
                f"AND literal {lhs} does not dominate its fanin {rhs0} "
                "(graph not topologically ordered)"
            )
        buffer.write(_encode_delta(lhs - rhs0))
        buffer.write(_encode_delta(rhs0 - rhs1))
    for index, name in enumerate(aig.pi_names):
        buffer.write(f"i{index} {name}\n".encode("utf-8"))
    for index, name in enumerate(aig.po_names):
        buffer.write(f"o{index} {name}\n".encode("utf-8"))
    buffer.write(b"c\nwritten by repro\n")
    return buffer.getvalue()


def read_aig_binary(source: Union[PathLike, BinaryIO]) -> Aig:
    """Parse a binary AIGER file (combinational only) into an :class:`Aig`."""
    if hasattr(source, "read"):
        with parse_guard("binary AIGER input"):
            data = source.read()  # type: ignore[union-attr]
        name = "aig"
    else:
        path = Path(source)
        data = path.read_bytes()
        name = path.stem
    return loads_aig_binary(data, name=name)


def loads_aig_binary(data: bytes, name: str = "aig") -> Aig:
    """Parse binary AIGER bytes into an :class:`Aig`.

    Raises :class:`~repro.errors.NetlistParseError` on any malformed input.
    """
    with parse_guard("binary AIGER data"):
        return _loads_aig_binary(data, name)


def _loads_aig_binary(data: bytes, name: str) -> Aig:
    cursor = 0
    header_line, cursor = _read_line(data, cursor)
    fields = header_line.split()
    if len(fields) != 6 or fields[0] != b"aig":
        raise NetlistParseError(f"malformed binary AIGER header: {header_line!r}")
    try:
        max_var, num_inputs, num_latches, num_outputs, num_ands = (
            int(value) for value in fields[1:]
        )
    except ValueError as exc:
        raise NetlistParseError(f"non-integer field in AIGER header: {header_line!r}") from exc
    if num_latches != 0:
        raise NetlistParseError("latches are not supported (combinational AIGs only)")
    if max_var != num_inputs + num_ands:
        raise NetlistParseError(
            f"header mismatch: M={max_var} but I+A={num_inputs + num_ands}"
        )

    output_lits: List[int] = []
    for _ in range(num_outputs):
        line, cursor = _read_line(data, cursor)
        try:
            output_lits.append(int(line))
        except ValueError as exc:
            raise NetlistParseError(f"malformed output literal line: {line!r}") from exc

    and_defs: List[Tuple[int, int, int]] = []
    for index in range(num_ands):
        lhs = 2 * (num_inputs + index + 1)
        delta0, cursor = _decode_delta(data, cursor)
        delta1, cursor = _decode_delta(data, cursor)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 < 0 or rhs1 < 0:
            raise NetlistParseError(f"negative fanin literal decoded for AND {lhs}")
        and_defs.append((lhs, rhs0, rhs1))

    input_names, output_names = _parse_symbol_table(data, cursor)

    aig = Aig(name)
    index_to_lit: Dict[int, int] = {0: 0}
    for index in range(num_inputs):
        index_to_lit[index + 1] = aig.add_pi(input_names.get(index, f"pi{index}"))

    def resolve(lit: int) -> int:
        var = lit // 2
        if var not in index_to_lit:
            raise NetlistParseError(f"literal {lit} used before definition")
        return negate_if(index_to_lit[var], lit % 2 == 1)

    for lhs, rhs0, rhs1 in and_defs:
        index_to_lit[lhs // 2] = aig.add_and(resolve(rhs0), resolve(rhs1))
    for index, lit in enumerate(output_lits):
        aig.add_po(resolve(lit), output_names.get(index, f"po{index}"))
    return aig


# --------------------------------------------------------------------------- #
# LEB128-style delta codec
# --------------------------------------------------------------------------- #
def _encode_delta(value: int) -> bytes:
    """Encode a non-negative delta as AIGER's 7-bit little-endian varint."""
    if value < 0:
        raise ParseError(f"cannot encode negative delta {value}")
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _decode_delta(data: bytes, cursor: int) -> Tuple[int, int]:
    """Decode one varint starting at *cursor*; return (value, new_cursor)."""
    value = 0
    shift = 0
    while True:
        if cursor >= len(data):
            raise NetlistParseError("truncated binary AIGER file inside AND definitions")
        byte = data[cursor]
        cursor += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, cursor
        shift += 7


def _read_line(data: bytes, cursor: int) -> Tuple[bytes, int]:
    end = data.find(b"\n", cursor)
    if end < 0:
        raise NetlistParseError("truncated binary AIGER file (missing newline)")
    return data[cursor:end], end + 1


def _parse_symbol_table(data: bytes, cursor: int) -> Tuple[Dict[int, str], Dict[int, str]]:
    input_names: Dict[int, str] = {}
    output_names: Dict[int, str] = {}
    while cursor < len(data):
        line, cursor = _read_line(data, cursor)
        if not line or line.startswith(b"c"):
            break
        text = line.decode("utf-8", errors="replace")
        if text[0] == "i":
            index, _, symbol = text[1:].partition(" ")
            input_names[int(index)] = symbol
        elif text[0] == "o":
            index, _, symbol = text[1:].partition(" ")
            output_names[int(index)] = symbol
        else:
            break
    return input_names, output_names
