"""Graphviz DOT exporters for AIGs and mapped netlists.

These are debugging/visualisation aids: the exported text can be rendered
with ``dot -Tpdf`` to inspect the structure a transformation produced or the
cells the mapper chose.  Complemented AIG edges are drawn dashed; the
critical path of a timing report can optionally be highlighted on the mapped
netlist.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterable, Optional, Set, TextIO, Union

from repro.aig.graph import Aig
from repro.aig.literals import is_complemented, literal_var
from repro.mapping.netlist import MappedNetlist
from repro.sta.analysis import TimingReport

PathLike = Union[str, Path]


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def aig_to_dot(aig: Aig, highlight_vars: Optional[Iterable[int]] = None) -> str:
    """Return DOT text for *aig*; *highlight_vars* are drawn filled."""
    highlighted: Set[int] = set(highlight_vars or ())
    out = io.StringIO()
    out.write(f"digraph {_quote(aig.name)} {{\n")
    out.write("  rankdir=BT;\n")
    out.write('  node [shape=circle, fontsize=10];\n')
    for var, name in zip(aig.pi_vars, aig.pi_names):
        out.write(
            f"  v{var} [shape=triangle, label={_quote(name)}];\n"
        )
    for var in aig.and_vars():
        style = ', style=filled, fillcolor="#ffd27f"' if var in highlighted else ""
        out.write(f'  v{var} [label="{var}"{style}];\n')
    for var in aig.and_vars():
        for fanin in aig.fanins(var):
            style = " [style=dashed]" if is_complemented(fanin) else ""
            out.write(f"  v{literal_var(fanin)} -> v{var}{style};\n")
    for index, (lit, name) in enumerate(zip(aig.po_literals(), aig.po_names)):
        out.write(f"  po{index} [shape=invtriangle, label={_quote(name)}];\n")
        style = " [style=dashed]" if is_complemented(lit) else ""
        out.write(f"  v{literal_var(lit)} -> po{index}{style};\n")
    out.write("}\n")
    return out.getvalue()


def write_aig_dot(
    aig: Aig,
    destination: Union[PathLike, TextIO],
    highlight_vars: Optional[Iterable[int]] = None,
) -> None:
    """Write the DOT rendering of *aig* to a path or text stream."""
    text = aig_to_dot(aig, highlight_vars=highlight_vars)
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
        return
    Path(destination).write_text(text, encoding="utf-8")


def netlist_to_dot(
    netlist: MappedNetlist, timing: Optional[TimingReport] = None
) -> str:
    """Return DOT text for a mapped netlist.

    When *timing* is given, the gates on its critical path are drawn filled
    so the path the STA engine reported is visible at a glance.
    """
    critical_nets: Set[int] = set()
    if timing is not None:
        for arc in timing.critical_path:
            critical_nets.add(arc.output_net)

    net_label: Dict[int, str] = {}
    for net, name in zip(netlist.pi_nets, netlist.pi_names):
        net_label[net] = name

    out = io.StringIO()
    out.write(f"digraph {_quote(netlist.name)} {{\n")
    out.write("  rankdir=LR;\n")
    out.write("  node [shape=box, fontsize=10];\n")
    for net, name in zip(netlist.pi_nets, netlist.pi_names):
        out.write(f"  n{net} [shape=triangle, label={_quote(name)}];\n")
    for net, value in netlist.constant_nets.items():
        out.write(f'  n{net} [shape=plaintext, label="1\'b{value}"];\n')
    for index, gate in enumerate(netlist.gates):
        style = ', style=filled, fillcolor="#ff9d9d"' if gate.output in critical_nets else ""
        out.write(f"  g{index} [label={_quote(gate.cell.name)}{style}];\n")
        for net in gate.inputs:
            source = _net_source(net, netlist, net_label)
            out.write(f"  {source} -> g{index};\n")
        net_label[gate.output] = f"g{index}"
    for index, (net, name) in enumerate(zip(netlist.po_nets, netlist.po_names)):
        out.write(f"  po{index} [shape=invtriangle, label={_quote(name)}];\n")
        if net is not None:
            source = _net_source(net, netlist, net_label)
            out.write(f"  {source} -> po{index};\n")
    out.write("}\n")
    return out.getvalue()


def write_netlist_dot(
    netlist: MappedNetlist,
    destination: Union[PathLike, TextIO],
    timing: Optional[TimingReport] = None,
) -> None:
    """Write the DOT rendering of a mapped netlist to a path or text stream."""
    text = netlist_to_dot(netlist, timing=timing)
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
        return
    Path(destination).write_text(text, encoding="utf-8")


def _net_source(net: int, netlist: MappedNetlist, net_label: Dict[int, str]) -> str:
    """DOT node id driving *net* (a PI, constant, or gate output)."""
    if net in netlist.constant_nets or net in netlist.pi_nets:
        return f"n{net}"
    label = net_label.get(net)
    if label is None:
        # Driven by a gate that appears later (should not happen for valid
        # topologically ordered netlists) — fall back to a bare net node.
        return f"n{net}"
    return label if label.startswith("g") else f"n{net}"
