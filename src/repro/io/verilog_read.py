"""Readers for structural Verilog.

Two readers are provided, mirroring the two writers in
:mod:`repro.io.verilog`:

* :func:`read_mapped_verilog` parses the gate-level netlists produced by
  :func:`repro.io.verilog.write_mapped_verilog` (and any file following the
  same conventions: one module, ``input``/``output``/``wire`` declarations,
  constant ``assign``s, named-port cell instances, and ``assign``s
  connecting primary outputs).  Cells are resolved against a
  :class:`~repro.library.library.CellLibrary`, so a written netlist can be
  read back and re-timed, which is how the round-trip tests validate the
  writer.
* :func:`read_aig_verilog` parses the flat ``and``/``not`` primitive subset
  produced by :func:`repro.io.verilog.write_aig_verilog` back into an
  :class:`~repro.aig.graph.Aig`, so Verilog joins AIGER/BENCH/BLIF as an
  accepted design-upload format.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, TextIO, Tuple, Union

from repro.aig.graph import Aig
from repro.aig.literals import CONST0, CONST1, negate
from repro.errors import NetlistParseError, ParseError
from repro.io.guard import parse_guard
from repro.library.library import CellLibrary
from repro.mapping.netlist import MappedNetlist

PathLike = Union[str, Path]

_MODULE_RE = re.compile(r"module\s+(\w+)\s*\(([^)]*)\)\s*;")
_DECL_RE = re.compile(r"^(input|output|wire)\s+(.+)$")
_ASSIGN_CONST_RE = re.compile(r"^assign\s+(\S+)\s*=\s*1'b([01])$")
_ASSIGN_NET_RE = re.compile(r"^assign\s+(\S+)\s*=\s*(\S+)$")
_INSTANCE_RE = re.compile(r"^(\w+)\s+(\w+)\s*\((.*)\)$")
_PORT_RE = re.compile(r"\.(\w+)\s*\(\s*([^\s()]+)\s*\)")


def read_mapped_verilog(
    source: Union[PathLike, TextIO], library: CellLibrary
) -> MappedNetlist:
    """Parse a mapped-Verilog file (or stream) into a :class:`MappedNetlist`."""
    with parse_guard("mapped Verilog input"):
        if hasattr(source, "read"):
            text = source.read()  # type: ignore[union-attr]
        else:
            text = Path(source).read_text(encoding="utf-8")
    return loads_mapped_verilog(text, library)


def loads_mapped_verilog(text: str, library: CellLibrary) -> MappedNetlist:
    """Parse mapped-Verilog text into a :class:`MappedNetlist`.

    Raises :class:`~repro.errors.NetlistParseError` on any malformed input.
    """
    with parse_guard("mapped Verilog text"):
        return _loads_mapped_verilog(text, library)


def _loads_mapped_verilog(text: str, library: CellLibrary) -> MappedNetlist:
    stripped = _strip_comments(text)
    module = _MODULE_RE.search(stripped)
    if module is None:
        raise NetlistParseError("no module declaration found in Verilog source")
    name = module.group(1)
    statements = _split_statements(stripped[module.end() :])

    inputs, outputs, wires, body = _collect_declarations(statements)
    netlist = MappedNetlist(name, pi_names=inputs, po_names=outputs)

    nets: Dict[str, int] = dict(zip(inputs, netlist.pi_nets))
    po_index = {po: i for i, po in enumerate(outputs)}
    pending_po: List[Tuple[str, str]] = []

    for wire in wires:
        nets[wire] = netlist.new_net()

    for statement in body:
        const_match = _ASSIGN_CONST_RE.match(statement)
        if const_match:
            target, value = const_match.group(1), int(const_match.group(2))
            _assign_constant(netlist, nets, po_index, target, value)
            continue
        instance_match = _INSTANCE_RE.match(statement)
        if instance_match and instance_match.group(1) not in ("assign", "module"):
            _add_instance(netlist, library, nets, instance_match)
            continue
        net_match = _ASSIGN_NET_RE.match(statement)
        if net_match:
            target, driver = net_match.group(1), net_match.group(2)
            if target in po_index:
                pending_po.append((target, driver))
            else:
                raise NetlistParseError(
                    f"assign to non-output signal {target!r} is not supported"
                )
            continue
        raise NetlistParseError(f"unrecognised Verilog statement: {statement!r}")

    for target, driver in pending_po:
        if driver not in nets:
            raise NetlistParseError(f"primary output {target!r} driven by unknown net {driver!r}")
        netlist.set_po_net(po_index[target], nets[driver])

    netlist.validate()
    return netlist


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", " ", text)


def _split_statements(text: str) -> List[str]:
    statements = []
    for chunk in text.split(";"):
        statement = " ".join(chunk.split())
        if not statement or statement == "endmodule":
            continue
        if statement.startswith("endmodule"):
            statement = statement[len("endmodule") :].strip()
            if not statement:
                continue
        statements.append(statement)
    return statements


def _collect_declarations(
    statements: List[str],
) -> Tuple[List[str], List[str], List[str], List[str]]:
    inputs: List[str] = []
    outputs: List[str] = []
    wires: List[str] = []
    body: List[str] = []
    for statement in statements:
        declaration = _DECL_RE.match(statement)
        if declaration:
            kind, names = declaration.group(1), declaration.group(2)
            targets = [token.strip() for token in names.split(",") if token.strip()]
            if kind == "input":
                inputs.extend(targets)
            elif kind == "output":
                outputs.extend(targets)
            else:
                wires.extend(targets)
        else:
            body.append(statement)
    if not inputs:
        raise NetlistParseError("module declares no inputs")
    if not outputs:
        raise NetlistParseError("module declares no outputs")
    return inputs, outputs, wires, body


def _assign_constant(
    netlist: MappedNetlist,
    nets: Dict[str, int],
    po_index: Dict[str, int],
    target: str,
    value: int,
) -> None:
    constant_net = netlist.add_constant_net(value)
    if target in po_index:
        netlist.set_po_net(po_index[target], constant_net)
        return
    # Re-point the named wire at the shared constant net.
    nets[target] = constant_net


def _add_instance(
    netlist: MappedNetlist,
    library: CellLibrary,
    nets: Dict[str, int],
    match: "re.Match[str]",
) -> None:
    cell_name, _instance_name, ports_text = match.group(1), match.group(2), match.group(3)
    if cell_name not in library:
        raise NetlistParseError(f"instance references unknown cell {cell_name!r}")
    cell = library.cell(cell_name)
    connections: Dict[str, str] = {}
    for port_match in _PORT_RE.finditer(ports_text):
        connections[port_match.group(1)] = port_match.group(2)

    input_nets: List[int] = []
    for pin_name in cell.input_names:
        if pin_name not in connections:
            raise NetlistParseError(f"instance of {cell_name} leaves pin {pin_name!r} unconnected")
        signal = connections[pin_name]
        if signal not in nets:
            raise NetlistParseError(f"instance of {cell_name} consumes unknown net {signal!r}")
        input_nets.append(nets[signal])

    if cell.output_name not in connections:
        raise NetlistParseError(f"instance of {cell_name} has no output connection")
    output_signal = connections[cell.output_name]
    if output_signal not in nets:
        nets[output_signal] = netlist.new_net()
    netlist.add_gate(cell, input_nets, output=nets[output_signal])


# --------------------------------------------------------------------------- #
# AIG-structural Verilog reader (and/not primitive subset)
# --------------------------------------------------------------------------- #
_PRIMITIVE_RE = re.compile(r"^(and|not)\s*\(([^)]*)\)$")


def read_aig_verilog(source: Union[PathLike, TextIO]) -> Aig:
    """Parse structural ``and``/``not`` Verilog (a file or stream) into an AIG."""
    if hasattr(source, "read"):
        with parse_guard("Verilog input"):
            text = source.read()  # type: ignore[union-attr]
        name = "verilog"
    else:
        path = Path(source)
        with parse_guard(f"Verilog file {path.name}"):
            text = path.read_text(encoding="utf-8")
        name = path.stem
    return loads_aig_verilog(text, default_name=name)


def loads_aig_verilog(text: str, default_name: str = "verilog") -> Aig:
    """Parse the :func:`~repro.io.verilog.write_aig_verilog` subset into an AIG.

    Accepted statements: one module header, ``input``/``output``/``wire``
    declarations (single names or comma lists), ``and(out, a, b)`` and
    ``not(out, a)`` primitives, and ``assign``s of constants (``1'b0`` /
    ``1'b1``) or nets.  Statements may appear in any order; drivers are
    resolved iteratively like the BENCH reader.  Raises
    :class:`~repro.errors.NetlistParseError` on any malformed input.
    """
    with parse_guard("Verilog text"):
        return _loads_aig_verilog(text, default_name)


def _loads_aig_verilog(text: str, default_name: str) -> Aig:
    stripped = _strip_comments(text)
    module = _MODULE_RE.search(stripped)
    if module is None:
        raise NetlistParseError("no module declaration found in Verilog source")
    name = module.group(1) or default_name
    statements = _split_statements(stripped[module.end() :])
    inputs, outputs, _wires, body = _collect_declarations(statements)

    # (target, kind, operands) where kind is "and" | "not" | "alias" | const.
    drivers: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
    po_assign: Dict[str, str] = {}

    def define(target: str, kind: str, operands: Tuple[str, ...]) -> None:
        if target in drivers:
            raise NetlistParseError(f"signal {target!r} has more than one driver")
        drivers[target] = (kind, operands)

    for statement in body:
        const_match = _ASSIGN_CONST_RE.match(statement)
        if const_match:
            define(const_match.group(1), f"const{const_match.group(2)}", ())
            continue
        primitive = _PRIMITIVE_RE.match(statement)
        if primitive:
            kind, args_text = primitive.group(1), primitive.group(2)
            operands = tuple(a.strip() for a in args_text.split(",") if a.strip())
            expected = 3 if kind == "and" else 2
            if len(operands) != expected:
                raise NetlistParseError(
                    f"{kind} primitive needs {expected} ports, got {statement!r}"
                )
            define(operands[0], kind, operands[1:])
            continue
        net_match = _ASSIGN_NET_RE.match(statement)
        if net_match:
            target, driver = net_match.group(1), net_match.group(2)
            if target in outputs:
                po_assign[target] = driver
            else:
                define(target, "alias", (driver,))
            continue
        raise NetlistParseError(f"unrecognised Verilog statement: {statement!r}")

    aig = Aig(name)
    signals: Dict[str, int] = {}
    for pi_name in inputs:
        signals[pi_name] = aig.add_pi(pi_name)

    in_progress: set = set()

    def resolve(signal: str) -> int:
        if signal in signals:
            return signals[signal]
        if signal not in drivers:
            raise NetlistParseError(f"signal {signal!r} is used but never driven")
        if signal in in_progress:
            raise NetlistParseError(f"combinational cycle through signal {signal!r}")
        in_progress.add(signal)
        kind, operands = drivers[signal]
        if kind == "const0":
            literal = CONST0
        elif kind == "const1":
            literal = CONST1
        elif kind == "and":
            literal = aig.add_and(resolve(operands[0]), resolve(operands[1]))
        elif kind == "not":
            literal = negate(resolve(operands[0]))
        else:  # alias
            literal = resolve(operands[0])
        in_progress.discard(signal)
        signals[signal] = literal
        return literal

    if not outputs:
        raise NetlistParseError("module declares no outputs")
    for po_name in outputs:
        driver = po_assign.get(po_name, po_name)
        aig.add_po(resolve(driver), po_name)
    return aig
