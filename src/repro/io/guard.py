"""Shared parse guard for the netlist readers.

Every reader entry point (``read_*`` / ``loads_*``) runs inside
:func:`parse_guard`, which converts the stray exceptions malformed input can
provoke deep inside parsing — ``ValueError`` from ``int()``, ``KeyError`` /
``IndexError`` from truncated structures, ``UnicodeDecodeError`` from binary
garbage handed to a text reader, and AIG construction errors from
inconsistent netlists — into one typed
:class:`~repro.errors.NetlistParseError`.  Callers (the synthesis service,
the CLI) can then treat *any* unreadable upload uniformly instead of
crashing on whichever exception the garbage happened to trigger.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import AigError, NetlistParseError

#: exception types a malformed netlist may provoke inside a reader.
_GUARDED = (AigError, ValueError, KeyError, IndexError)


@contextmanager
def parse_guard(what: str):
    """Re-raise stray parse-time exceptions as :class:`NetlistParseError`.

    ``NetlistParseError`` raised inside the block propagates unchanged (it is
    not in the guarded tuple), as do genuine environment errors such as
    ``OSError`` for a missing file.
    """
    try:
        yield
    except _GUARDED as exc:
        raise NetlistParseError(
            f"malformed {what}: {type(exc).__name__}: {exc}"
        ) from exc
