"""Technology-mapped gate-level netlist.

The mapper produces a :class:`MappedNetlist`: a flat list of standard-cell
instances connected by integer-numbered nets.  Gates are stored in
topological order (every gate's inputs are primary inputs, constants, or
outputs of earlier gates), which lets the STA engine run in a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MappingError
from repro.library.cell import Cell


@dataclass(frozen=True)
class MappedGate:
    """One standard-cell instance."""

    cell: Cell
    inputs: Tuple[int, ...]
    output: int

    def __post_init__(self) -> None:
        if len(self.inputs) != self.cell.num_inputs:
            raise MappingError(
                f"gate {self.cell.name}: expected {self.cell.num_inputs} inputs, "
                f"got {len(self.inputs)}"
            )


class MappedNetlist:
    """A gate-level netlist produced by technology mapping."""

    def __init__(self, name: str, pi_names: Sequence[str], po_names: Sequence[str]) -> None:
        self.name = name
        self.pi_names: List[str] = list(pi_names)
        self.po_names: List[str] = list(po_names)
        self._next_net = 0
        self.pi_nets: List[int] = [self.new_net() for _ in self.pi_names]
        self.po_nets: List[Optional[int]] = [None] * len(self.po_names)
        self.gates: List[MappedGate] = []
        #: nets tied to a constant value (net id -> 0 or 1).
        self.constant_nets: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def new_net(self) -> int:
        """Allocate a fresh net id."""
        net = self._next_net
        self._next_net += 1
        return net

    def ensure_net(self, net: int) -> None:
        """Register an externally allocated net id (incremental mapping).

        The incremental mapper pins nodes to persistent net ids that can be
        sparse and non-monotone in emission order; this bumps the allocation
        watermark so such ids pass the usual definedness checks.
        """
        if net < 0:
            raise MappingError(f"net id must be non-negative, got {net}")
        if net >= self._next_net:
            self._next_net = net + 1

    def add_constant_net(self, value: int) -> int:
        """Create (or reuse) a net tied to constant *value*."""
        if value not in (0, 1):
            raise MappingError(f"constant value must be 0 or 1, got {value}")
        for net, existing in self.constant_nets.items():
            if existing == value:
                return net
        net = self.new_net()
        self.constant_nets[net] = value
        return net

    def add_gate(self, cell: Cell, inputs: Sequence[int], output: Optional[int] = None) -> int:
        """Instantiate *cell*; returns the output net (newly created if omitted)."""
        out = output if output is not None else self.new_net()
        for net in inputs:
            if not 0 <= net < self._next_net:
                raise MappingError(f"gate {cell.name} references undefined net {net}")
        if out >= self._next_net:
            raise MappingError(f"output net {out} was never allocated")
        self.gates.append(MappedGate(cell=cell, inputs=tuple(inputs), output=out))
        return out

    def set_po_net(self, index: int, net: int) -> None:
        """Connect primary output *index* to *net*."""
        if not 0 <= index < len(self.po_names):
            raise MappingError(f"PO index {index} out of range")
        if not 0 <= net < self._next_net:
            raise MappingError(f"PO {index} references undefined net {net}")
        self.po_nets[index] = net

    # ------------------------------------------------------------------ #
    @property
    def num_nets(self) -> int:
        """Total number of allocated nets."""
        return self._next_net

    @property
    def num_gates(self) -> int:
        """Number of standard-cell instances."""
        return len(self.gates)

    def area_um2(self) -> float:
        """Total cell area."""
        return sum(gate.cell.area_um2 for gate in self.gates)

    def cell_histogram(self) -> Dict[str, int]:
        """Instance count per cell type."""
        histogram: Dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.cell.name] = histogram.get(gate.cell.name, 0) + 1
        return histogram

    def driver_of(self) -> Dict[int, MappedGate]:
        """Map each net to the gate driving it (PIs/constants have no entry)."""
        drivers: Dict[int, MappedGate] = {}
        for gate in self.gates:
            if gate.output in drivers:
                raise MappingError(f"net {gate.output} has multiple drivers")
            drivers[gate.output] = gate
        return drivers

    def consumers_of(self) -> Dict[int, List[MappedGate]]:
        """Map each net to the gates consuming it."""
        consumers: Dict[int, List[MappedGate]] = {}
        for gate in self.gates:
            for net in gate.inputs:
                consumers.setdefault(net, []).append(gate)
        return consumers

    def net_fanout_counts(self) -> Dict[int, int]:
        """Fanout (consumer pin count + PO connections) per net."""
        counts: Dict[int, int] = {net: 0 for net in range(self._next_net)}
        for gate in self.gates:
            for net in gate.inputs:
                counts[net] += 1
        for net in self.po_nets:
            if net is not None:
                counts[net] += 1
        return counts

    def validate(self) -> None:
        """Check structural sanity; raises :class:`MappingError` on problems."""
        defined = set(self.pi_nets) | set(self.constant_nets)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in defined:
                    raise MappingError(
                        f"gate {gate.cell.name} consumes net {net} before it is driven"
                    )
            if gate.output in defined:
                raise MappingError(f"net {gate.output} is driven more than once")
            defined.add(gate.output)
        for index, net in enumerate(self.po_nets):
            if net is None:
                raise MappingError(f"primary output {self.po_names[index]!r} is unconnected")
            if net not in defined:
                raise MappingError(
                    f"primary output {self.po_names[index]!r} connected to undriven net {net}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MappedNetlist(name={self.name!r}, gates={self.num_gates}, "
            f"area={self.area_um2():.2f}um2)"
        )
