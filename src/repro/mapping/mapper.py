"""Cut-based technology mapping.

The mapper covers the AIG with standard cells using the classic dynamic
programming formulation:

1. enumerate k-feasible cuts for every AND node;
2. for every cut, compute its exact function, reduce it to its support, and
   look up matching cells (with pin bindings and required inverters) in the
   library's Boolean match index;
3. keep, per node, the choice minimising estimated arrival time (delay mode)
   or estimated area flow (area mode);
4. trace back from the primary outputs, instantiating the chosen cells and
   sharing inverters per signal.

Every AND node always has at least one match because its trivial two-leaf
cut is an AND-family function present in any reasonable library, so mapping
never fails on a valid AIG.  The paper's ground-truth flow runs this mapper
plus STA inside the optimization loop; the ML flow replaces it with model
inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aig.cuts import Cut, enumerate_cuts
from repro.aig.graph import Aig
from repro.aig.literals import is_complemented, literal_var
from repro.aig.simulate import cone_truth_table
from repro.errors import MappingError
from repro.library.library import CellLibrary, Match
from repro.mapping.matcher import classify_single_input, reduce_to_support
from repro.mapping.netlist import MappedNetlist


@dataclass(frozen=True)
class ConstantChoice:
    """Node is functionally constant."""

    value: int


@dataclass(frozen=True)
class AliasChoice:
    """Node equals a leaf signal, possibly inverted (no cell needed)."""

    leaf: int
    negated: bool


@dataclass(frozen=True)
class CellChoice:
    """Node implemented by a library cell over the given cut leaves."""

    match: Match
    leaves: Tuple[int, ...]


NodeChoice = Union[ConstantChoice, AliasChoice, CellChoice]


@dataclass
class MappingOptions:
    """Knobs of the technology mapper."""

    cut_size: int = 4
    max_cuts_per_node: int = 10
    mode: str = "delay"
    estimated_load_ff: float = 3.0
    max_matches_per_cut: int = 4

    def __post_init__(self) -> None:
        if self.mode not in ("delay", "area"):
            raise MappingError(f"mapping mode must be 'delay' or 'area', got {self.mode!r}")
        if self.cut_size < 2:
            raise MappingError("cut_size must be at least 2")


class NetPolicy:
    """Net-id assignment strategy used by :meth:`TechnologyMapper._emit_netlist`.

    Methods return a preassigned net id for the net about to be created, or
    ``None`` to let the netlist allocate the next fresh id.
    """

    def cell_output(self, var: int) -> Optional[int]:  # pragma: no cover - interface
        """Output net of the cell implementing AND node *var*."""
        return None

    def output_inverter(self, var: int) -> Optional[int]:  # pragma: no cover
        """Output net of the inverter completing a negated-output match."""
        return None

    def negation_inverter(self, var: int) -> Optional[int]:  # pragma: no cover
        """Output net of the shared inverter producing ``!var``."""
        return None

    def constant(self, value: int) -> int:  # pragma: no cover - interface
        """Net tied to constant *value* (must register it with the netlist)."""
        raise NotImplementedError


class FreshNetPolicy(NetPolicy):
    """Allocate every created net freshly in emission order (the default)."""

    def __init__(self, netlist: MappedNetlist) -> None:
        self._netlist = netlist

    def constant(self, value: int) -> int:
        return self._netlist.add_constant_net(value)


class TechnologyMapper:
    """Maps AIGs onto a :class:`~repro.library.library.CellLibrary`."""

    def __init__(self, library: CellLibrary, options: Optional[MappingOptions] = None) -> None:
        self.library = library
        self.options = options or MappingOptions()
        if library.max_match_inputs < 2:
            raise MappingError("library cannot match two-input functions")
        self._inv_cell = library.inverter
        self._inv_delay = self._inv_cell.worst_delay_ps(self.options.estimated_load_ff)
        #: Filled by every _select_choices call; the cold-map benchmark and
        #: CI smoke gate read it to detect silent scalar fallbacks.
        self.last_dp_stats = None

    # ------------------------------------------------------------------ #
    def map(self, aig: Aig) -> MappedNetlist:
        """Map *aig* and return the gate-level netlist."""
        choices, _arrival = self._select_choices(aig)
        return self._build_netlist(aig, choices)

    # ------------------------------------------------------------------ #
    # Phase 1: dynamic programming over cuts
    # ------------------------------------------------------------------ #
    @property
    def cut_size(self) -> int:
        """Effective cut size (bounded by what the library can match)."""
        return min(self.options.cut_size, self.library.max_match_inputs)

    def enumerate_all_cuts(self, aig: Aig) -> Dict[int, List[Cut]]:
        """Cut lists for every variable, as used by the mapping DP.

        Trivial cuts must stay in the per-node lists so that every node's
        structural fanin-pair cut is produced by the merge step; the
        fanin-pair cut is what guarantees a match (AND-family cell) exists.
        """
        return enumerate_cuts(
            aig,
            k=self.cut_size,
            max_cuts_per_node=self.options.max_cuts_per_node,
            include_trivial=True,
        )

    def _select_choices(
        self, aig: Aig
    ) -> Tuple[Dict[int, NodeChoice], List[Optional[float]]]:
        from repro.mapping import dp_arrays

        result = dp_arrays.try_full_dp(self, aig)
        if result is not None:
            self.last_dp_stats = result.stats
            return result.choices, result.arrival
        self.last_dp_stats = dp_arrays.DpStats(
            used_vectorized=False, reason="unsupported or disabled"
        )
        cuts = self.enumerate_all_cuts(aig)
        fanout = aig.fanout_counts()
        # Dense per-variable DP state (variable order is topological, so a
        # node's leaves are always filled in before the node is reached; a
        # None entry means "no arrival yet" — the dict-era membership test).
        arrival: List[Optional[float]] = [None] * aig.size
        area_flow: List[Optional[float]] = [None] * aig.size
        arrival[0] = 0.0
        area_flow[0] = 0.0
        choices: Dict[int, NodeChoice] = {}
        for var in aig.pi_vars:
            arrival[var] = 0.0
            area_flow[var] = 0.0

        for var in aig.arrays().and_vars.tolist():
            node_cuts = cuts.get(var) or []
            choice, cand_arrival, cand_area = self._choose_for_node(
                aig, var, node_cuts, arrival, area_flow, fanout
            )
            choices[var] = choice
            arrival[var], area_flow[var] = cand_arrival, cand_area
        return choices, arrival

    def _choose_for_node(
        self,
        aig: Aig,
        var: int,
        node_cuts: Sequence[Cut],
        arrival: Sequence[Optional[float]],
        area_flow: Sequence[Optional[float]],
        fanout: Sequence[int],
    ) -> Tuple[NodeChoice, float, float]:
        """Best (choice, arrival, area-flow) for one AND node over its cuts.

        Shared by the full DP and the incremental mapper's dirty-node
        recomputation, so both always make identical decisions.
        """
        opts = self.options
        best_key: Optional[Tuple[float, float]] = None
        best_choice: Optional[NodeChoice] = None
        best_metrics: Optional[Tuple[float, float]] = None
        for cut in node_cuts:
            candidate = self._evaluate_cut(aig, var, cut, arrival, area_flow, fanout)
            if candidate is None:
                continue
            choice, cand_arrival, cand_area = candidate
            key = (
                (cand_arrival, cand_area)
                if opts.mode == "delay"
                else (cand_area, cand_arrival)
            )
            if best_key is None or key < best_key:
                best_key = key
                best_choice = choice
                best_metrics = (cand_arrival, cand_area)
        if best_choice is None:
            # Fall back to the structural fanin-pair cut, which always
            # matches an AND-family cell in any sane library.
            f0, f1 = aig.fanins(var)
            fallback_cut = Cut(var, tuple(sorted({literal_var(f0), literal_var(f1)})))
            candidate = self._evaluate_cut(aig, var, fallback_cut, arrival, area_flow, fanout)
            if candidate is None:
                raise MappingError(
                    f"no match found for node {var}; the library is missing basic cells"
                )
            best_choice, cand_arrival, cand_area = candidate
            best_metrics = (cand_arrival, cand_area)
        return best_choice, best_metrics[0], best_metrics[1]

    def _evaluate_cut(
        self,
        aig: Aig,
        var: int,
        cut: Cut,
        arrival: Sequence[Optional[float]],
        area_flow: Sequence[Optional[float]],
        fanout: Sequence[int],
    ) -> Optional[Tuple[NodeChoice, float, float]]:
        opts = self.options
        if cut.leaves == (var,):
            return None
        if any(arrival[leaf] is None for leaf in cut.leaves):
            return None
        table = cone_truth_table(aig, var * 2, cut.leaves)
        reduced, sup = reduce_to_support(table, cut.size)
        if not sup:
            return ConstantChoice(value=reduced), 0.0, 0.0
        sup_leaves = tuple(cut.leaves[i] for i in sup)
        if len(sup) == 1:
            negated = classify_single_input(reduced)
            leaf = sup_leaves[0]
            cand_arrival = arrival[leaf] + (self._inv_delay if negated else 0.0)
            cand_area = area_flow[leaf] / max(fanout[leaf], 1) + (
                self._inv_cell.area_um2 if negated else 0.0
            )
            return AliasChoice(leaf=leaf, negated=negated), cand_arrival, cand_area
        if len(sup) > self.library.max_match_inputs:
            return None
        matches = self.library.matches(reduced, len(sup))
        if not matches:
            return None
        best: Optional[Tuple[Tuple[float, float], NodeChoice, float, float]] = None
        for match in matches[: opts.max_matches_per_cut]:
            cand_arrival = 0.0
            inverter_area = 0.0
            for pin_index, pin in enumerate(match.cell.pins):
                leaf = sup_leaves[match.pin_to_leaf[pin_index]]
                t = arrival[leaf]
                if match.pin_negated[pin_index]:
                    t += self._inv_delay
                    inverter_area += self._inv_cell.area_um2
                t += pin.delay_ps(opts.estimated_load_ff)
                cand_arrival = max(cand_arrival, t)
            if match.output_negated:
                cand_arrival += self._inv_delay
                inverter_area += self._inv_cell.area_um2
            leaf_flow = sum(
                area_flow[leaf] / max(fanout[leaf], 1) for leaf in sup_leaves
            )
            cand_area = match.cell.area_um2 + inverter_area + leaf_flow
            key = (
                (cand_arrival, cand_area)
                if opts.mode == "delay"
                else (cand_area, cand_arrival)
            )
            if best is None or key < best[0]:
                best = (key, CellChoice(match=match, leaves=sup_leaves), cand_arrival, cand_area)
        if best is None:
            return None
        return best[1], best[2], best[3]

    # ------------------------------------------------------------------ #
    # Phase 2: netlist construction
    # ------------------------------------------------------------------ #
    def _build_netlist(self, aig: Aig, choices: Dict[int, NodeChoice]) -> MappedNetlist:
        netlist = MappedNetlist(aig.name, aig.pi_names, aig.po_names)
        return self._emit_netlist(aig, choices, netlist, FreshNetPolicy(netlist))

    def _emit_netlist(
        self,
        aig: Aig,
        choices: Dict[int, NodeChoice],
        netlist: MappedNetlist,
        nets: "NetPolicy",
    ) -> MappedNetlist:
        """Instantiate the chosen cells into *netlist*.

        The emission order is fully determined by *choices* (needed nodes in
        variable order, shared inverters created at first demand), so two
        emissions from identical choices produce identical gate lists.  The
        *nets* policy controls net-id assignment: :class:`FreshNetPolicy`
        allocates in emission order (the classic mapper behavior), while the
        incremental mapper's persistent policy pins nodes to stable ids so
        unchanged regions keep their nets across re-evaluations.
        """
        net_of: Dict[int, int] = {}
        for var, net in zip(aig.pi_vars, netlist.pi_nets):
            net_of[var] = net
        inverted_net: Dict[int, int] = {}

        needed = self._collect_needed(aig, choices)

        def add_gate(cell, inputs: List[int], preassigned: Optional[int]) -> int:
            if preassigned is None:
                return netlist.add_gate(cell, inputs)
            netlist.ensure_net(preassigned)
            return netlist.add_gate(cell, inputs, output=preassigned)

        def get_positive_net(var: int) -> int:
            if var not in net_of:
                raise MappingError(f"internal error: net for node {var} not built yet")
            return net_of[var]

        def get_negative_net(var: int) -> int:
            if var in inverted_net:
                return inverted_net[var]
            source = get_positive_net(var)
            out = add_gate(self._inv_cell, [source], nets.negation_inverter(var))
            inverted_net[var] = out
            return out

        def get_net(var: int, negated: bool) -> int:
            return get_negative_net(var) if negated else get_positive_net(var)

        for var in sorted(needed):
            choice = choices[var]
            if isinstance(choice, ConstantChoice):
                net_of[var] = nets.constant(choice.value)
            elif isinstance(choice, AliasChoice):
                net_of[var] = get_net(choice.leaf, choice.negated)
            else:
                match = choice.match
                pin_nets: List[int] = []
                for pin_index in range(match.cell.num_inputs):
                    leaf = choice.leaves[match.pin_to_leaf[pin_index]]
                    pin_nets.append(get_net(leaf, match.pin_negated[pin_index]))
                out = add_gate(match.cell, pin_nets, nets.cell_output(var))
                if match.output_negated:
                    out = add_gate(self._inv_cell, [out], nets.output_inverter(var))
                net_of[var] = out

        for index, lit in enumerate(aig.po_literals()):
            var = literal_var(lit)
            negated = is_complemented(lit)
            if var == 0:
                net = nets.constant(1 if negated else 0)
            else:
                net = get_net(var, negated)
            netlist.set_po_net(index, net)
        netlist.validate()
        return netlist

    @staticmethod
    def _collect_needed(aig: Aig, choices: Dict[int, NodeChoice]) -> set:
        """Variables whose mapped implementation must be materialised."""
        needed: set = set()
        stack = [literal_var(lit) for lit in aig.po_literals()]
        while stack:
            var = stack.pop()
            if var in needed or var == 0 or aig.is_pi(var):
                continue
            needed.add(var)
            choice = choices[var]
            if isinstance(choice, AliasChoice):
                stack.append(choice.leaf)
            elif isinstance(choice, CellChoice):
                stack.extend(choice.leaves)
        return needed


def map_aig(
    aig: Aig,
    library: CellLibrary,
    options: Optional[MappingOptions] = None,
) -> MappedNetlist:
    """Convenience wrapper: map *aig* with default (or given) options."""
    return TechnologyMapper(library, options).map(aig)
