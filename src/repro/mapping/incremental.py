"""Incremental technology mapping via dirty-cone re-evaluation.

The classic mapper (:class:`~repro.mapping.mapper.TechnologyMapper`) treats
every AIG as brand new: it enumerates cuts, evaluates matches, and builds a
netlist for *all* nodes.  Inside an optimization loop this is wasteful — a
single local transform perturbs a small cone of logic and leaves everything
else structurally identical.

:class:`IncrementalMapper` keeps per-node match state
(:class:`MappingState`) from a previously mapped *baseline* graph and, for a
new candidate graph:

1. matches candidate nodes to baseline nodes by structural hash
   (:func:`repro.aig.journal.node_hashes`);
2. marks *dirty* every node that is unmatched, whose fanout count changed,
   or that lies in the transitive fanout of another dirty node (the dirty
   cone — a node's cut set, match choice, arrival and area flow depend only
   on its transitive-fanin structure plus the fanout counts inside it);
3. re-runs cut enumeration and the choice DP for dirty nodes only, reusing
   the baseline's cuts/choices/arrival/area-flow for clean nodes (leaf ids
   renamed through the hash correspondence);
4. re-emits the netlist from the merged choices through a *persistent* net
   policy, so structurally unchanged nodes keep their net ids across
   evaluations — which is what lets the STA layer propagate arrivals
   incrementally.

Reuse is only sound when the relative variable order of matched nodes is
preserved (cut ordering and DP tie-breaks compare variable ids); when it is
not, or when the dirty region exceeds ``max_dirty_fraction`` of the design,
the mapper signals the caller to fall back to a full re-map.  The
differential suite in ``tests/test_incremental.py`` asserts bitwise-identical
results against the ground-truth path under randomized transform sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.cuts import Cut, merge_node_cuts
from repro.aig.graph import Aig
from repro.aig.journal import fingerprint_from_hashes, node_hashes_cached
from repro.aig.literals import literal_var
from repro.library.library import CellLibrary
from repro.mapping.mapper import (
    AliasChoice,
    CellChoice,
    ConstantChoice,
    MappingOptions,
    NetPolicy,
    NodeChoice,
    TechnologyMapper,
)
from repro.mapping.netlist import MappedNetlist


@dataclass
class IncrementalMapStats:
    """What one :meth:`IncrementalMapper.map` call actually did."""

    mode: str  #: "full" or "incremental"
    total_ands: int = 0
    dirty_ands: int = 0
    dp_nodes: int = 0  #: AND nodes whose cut DP was (re)computed
    reused_nodes: int = 0  #: AND nodes whose match state was reused
    reason: str = ""  #: why a full map was performed, when it was


class PersistentNetAllocator:
    """Stable net ids keyed by (role, node hash) across re-evaluations.

    Primary-input nets are always ``0 .. num_pis - 1`` (the
    :class:`MappedNetlist` constructor's assignment); every created net —
    cell outputs, match-completion inverters, shared negation inverters, and
    constant ties — draws from a monotone counter and is remembered by the
    structural hash of the AIG node it implements, so the same logical net
    keeps its id for as long as the node survives.
    """

    def __init__(self, num_pis: int) -> None:
        self.num_pis = num_pis
        self.next_net = num_pis
        self.assignments: Dict[Tuple[str, object], int] = {}

    def get(self, key: Tuple[str, object]) -> int:
        """Return the stable id for *key*, allocating one on first use."""
        net = self.assignments.get(key)
        if net is None:
            net = self.next_net
            self.next_net += 1
            self.assignments[key] = net
        return net

    def fork_pruned(self, live_hashes: set) -> "PersistentNetAllocator":
        """Copy for a derived graph, dropping entries for vanished nodes.

        The counter is never rewound, so a dropped id is not reused — stale
        ids simply become holes until a full re-map resets the allocator.
        """
        fork = PersistentNetAllocator(self.num_pis)
        fork.next_net = self.next_net
        fork.assignments = {
            key: net
            for key, net in self.assignments.items()
            if key[0] == "const" or key[1] in live_hashes
        }
        return fork


class _PersistentNetPolicy(NetPolicy):
    """Net policy binding emission to a :class:`PersistentNetAllocator`."""

    def __init__(
        self,
        netlist: MappedNetlist,
        alloc: PersistentNetAllocator,
        hashes: Sequence[bytes],
    ) -> None:
        self._netlist = netlist
        self._alloc = alloc
        self._hashes = hashes

    def _pinned(self, role: str, var: int) -> int:
        net = self._alloc.get((role, self._hashes[var]))
        self._netlist.ensure_net(net)
        return net

    def cell_output(self, var: int) -> Optional[int]:
        return self._pinned("cell", var)

    def output_inverter(self, var: int) -> Optional[int]:
        return self._pinned("oinv", var)

    def negation_inverter(self, var: int) -> Optional[int]:
        return self._pinned("ninv", var)

    def constant(self, value: int) -> int:
        net = self._alloc.get(("const", value))
        self._netlist.ensure_net(net)
        self._netlist.constant_nets.setdefault(net, value)
        return net


@dataclass
class MappingState:
    """Per-node match state of one mapped baseline graph."""

    fingerprint: str
    size: int
    num_pis: int
    num_ands: int
    hashes: List[bytes]
    var_of_hash: Dict[bytes, int]
    fanout: List[int]
    cuts: Dict[int, List[Cut]]
    #: Dense per-variable DP results (index = variable id, None = never
    #: assigned — only possible for variables that are neither const, PI,
    #: nor AND, which do not exist).
    arrival: List[Optional[float]]
    area_flow: List[Optional[float]]
    choices: Dict[int, NodeChoice]
    netlist: MappedNetlist
    alloc: PersistentNetAllocator


class IncrementalMapper:
    """Maps candidate AIGs incrementally against cached baseline state."""

    def __init__(
        self,
        library: CellLibrary,
        options: Optional[MappingOptions] = None,
        max_dirty_fraction: float = 0.5,
    ) -> None:
        if not 0.0 <= max_dirty_fraction <= 1.0:
            raise ValueError("max_dirty_fraction must be in [0, 1]")
        self.mapper = TechnologyMapper(library, options)
        self.max_dirty_fraction = max_dirty_fraction

    @property
    def library(self) -> CellLibrary:
        """The cell library both mapping paths target."""
        return self.mapper.library

    @property
    def options(self) -> MappingOptions:
        """The shared mapping knobs."""
        return self.mapper.options

    # ------------------------------------------------------------------ #
    def map_full(self, aig: Aig) -> Tuple[MappingState, IncrementalMapStats]:
        """Map *aig* from scratch and build fresh baseline state.

        The emitted netlist is identical (gate order *and* net ids) to what
        :meth:`TechnologyMapper.map` produces, because the persistent
        allocator starts empty and therefore assigns ids in emission order.
        """
        from repro.mapping import dp_arrays

        mapper = self.mapper
        hashes = node_hashes_cached(aig)
        fanout = aig.fanout_counts()
        dp_result = dp_arrays.try_full_dp(mapper, aig)
        if dp_result is not None:
            # Same DP, array-batched: identical choices, arrivals and area
            # flows (see tests/test_dp_arrays.py); the cut dictionary is
            # materialised from the same array-form cut sets.
            cuts = dp_result.cut_arrays.to_cut_dict(aig)
            arrival = dp_result.arrival
            area_flow = dp_result.area_flow
            choices = dp_result.choices
            dp_nodes = aig.num_ands
        else:
            cuts = mapper.enumerate_all_cuts(aig)
            arrival = [None] * aig.size
            area_flow = [None] * aig.size
            arrival[0] = 0.0
            area_flow[0] = 0.0
            choices = {}
            for var in aig.pi_vars:
                arrival[var] = 0.0
                area_flow[var] = 0.0
            dp_nodes = 0
            for var in aig.arrays().and_vars.tolist():
                choice, cand_arrival, cand_area = mapper._choose_for_node(
                    aig, var, cuts.get(var) or [], arrival, area_flow, fanout
                )
                choices[var] = choice
                arrival[var] = cand_arrival
                area_flow[var] = cand_area
                dp_nodes += 1
        alloc = PersistentNetAllocator(aig.num_pis)
        netlist = self._emit(aig, choices, hashes, alloc)
        state = MappingState(
            fingerprint=fingerprint_from_hashes(aig, hashes),
            size=aig.size,
            num_pis=aig.num_pis,
            num_ands=aig.num_ands,
            hashes=hashes,
            var_of_hash=self._hash_index(hashes),
            fanout=fanout,
            cuts=cuts,
            arrival=arrival,
            area_flow=area_flow,
            choices=choices,
            netlist=netlist,
            alloc=alloc,
        )
        stats = IncrementalMapStats(
            mode="full",
            total_ands=aig.num_ands,
            dirty_ands=aig.num_ands,
            dp_nodes=dp_nodes,
            reused_nodes=0,
        )
        return state, stats

    # ------------------------------------------------------------------ #
    def map_incremental(
        self,
        aig: Aig,
        baseline: MappingState,
        hashes: Optional[List[bytes]] = None,
    ) -> Optional[Tuple[MappingState, IncrementalMapStats]]:
        """Map *aig* reusing *baseline*'s per-node state where sound.

        Returns ``None`` when incremental mapping cannot be applied safely
        or profitably (interface mismatch, variable order not preserved,
        dirty region above ``max_dirty_fraction``, or a badly fragmented net
        id space); callers then run :meth:`map_full`.
        """
        if self.max_dirty_fraction == 0.0:
            # 0 means "incremental reuse disabled", not "tolerate zero dirt"
            # (a renumbered-but-identical graph has zero dirty nodes).
            return None
        if aig.num_pis != baseline.num_pis:
            return None
        # A fragmented allocator makes net-keyed dictionaries (loads,
        # arrivals) grow without bound; force a compacting full map.
        live_estimate = baseline.netlist.num_gates + baseline.num_pis + 4
        if baseline.alloc.next_net > max(256, 4 * live_estimate):
            return None
        if hashes is None:
            hashes = node_hashes_cached(aig)
        size = aig.size

        # --- match by structural hash; require preserved relative order --- #
        match: List[Optional[int]] = [None] * size
        seen_baseline: set = set()
        last_matched = -1
        order_preserved = True
        var_of_hash = baseline.var_of_hash
        for var in range(size):
            old = var_of_hash.get(hashes[var])
            if old is None or old in seen_baseline:
                continue
            seen_baseline.add(old)
            match[var] = old
            if old <= last_matched:
                order_preserved = False
                break
            last_matched = old
        if not order_preserved:
            return None

        # --- dirty marking: unmatched, fanout-changed, or downstream --- #
        fanout = aig.fanout_counts()
        baseline_fanout = baseline.fanout
        dirty = bytearray(size)
        is_and = [False] * size
        for var in range(size):
            old = match[var]
            if old is None or fanout[var] != baseline_fanout[old]:
                dirty[var] = 1
        dirty_ands = 0
        total_ands = 0
        for var in aig.and_vars():
            is_and[var] = True
            total_ands += 1
            if not dirty[var]:
                f0, f1 = aig.fanins(var)
                if dirty[literal_var(f0)] or dirty[literal_var(f1)]:
                    dirty[var] = 1
            if dirty[var]:
                dirty_ands += 1
        if dirty_ands > self.max_dirty_fraction * max(total_ands, 1):
            return None

        # --- DP over dirty nodes, state reuse for clean ones --- #
        mapper = self.mapper
        k = mapper.cut_size
        max_cuts = mapper.options.max_cuts_per_node
        new_of_old: Dict[int, int] = {0: 0}
        for var in range(size):
            old = match[var]
            if old is not None:
                new_of_old[old] = var

        cuts: Dict[int, List[Cut]] = {0: [Cut(0, (0,))]}
        for var in aig.pi_vars:
            cuts[var] = [Cut(var, (var,))]
        arrival: List[Optional[float]] = [None] * size
        area_flow: List[Optional[float]] = [None] * size
        arrival[0] = 0.0
        area_flow[0] = 0.0
        choices: Dict[int, NodeChoice] = {}
        for var in aig.pi_vars:
            arrival[var] = 0.0
            area_flow[var] = 0.0

        dp_nodes = 0
        baseline_cuts = baseline.cuts
        baseline_choices = baseline.choices
        baseline_arrival = baseline.arrival
        baseline_area = baseline.area_flow
        for var in range(1, size):
            if not is_and[var]:
                continue
            if dirty[var]:
                f0, f1 = aig.fanins(var)
                node_cuts = merge_node_cuts(
                    var,
                    cuts[literal_var(f0)],
                    cuts[literal_var(f1)],
                    k,
                    max_cuts,
                    include_trivial=True,
                )
                choice, cand_arrival, cand_area = mapper._choose_for_node(
                    aig, var, node_cuts, arrival, area_flow, fanout
                )
                dp_nodes += 1
            else:
                old = match[var]
                node_cuts = [
                    Cut(var, tuple(new_of_old[leaf] for leaf in cut.leaves))
                    for cut in baseline_cuts[old]
                ]
                choice = self._remap_choice(baseline_choices[old], new_of_old)
                cand_arrival = baseline_arrival[old]
                cand_area = baseline_area[old]
            cuts[var] = node_cuts
            choices[var] = choice
            arrival[var] = cand_arrival
            area_flow[var] = cand_area

        alloc = baseline.alloc.fork_pruned(set(hashes))
        netlist = self._emit(aig, choices, hashes, alloc)
        state = MappingState(
            fingerprint=fingerprint_from_hashes(aig, hashes),
            size=size,
            num_pis=aig.num_pis,
            num_ands=total_ands,
            hashes=hashes,
            var_of_hash=self._hash_index(hashes),
            fanout=fanout,
            cuts=cuts,
            arrival=arrival,
            area_flow=area_flow,
            choices=choices,
            netlist=netlist,
            alloc=alloc,
        )
        stats = IncrementalMapStats(
            mode="incremental",
            total_ands=total_ands,
            dirty_ands=dirty_ands,
            dp_nodes=dp_nodes,
            reused_nodes=total_ands - dp_nodes,
        )
        return state, stats

    # ------------------------------------------------------------------ #
    def _emit(
        self,
        aig: Aig,
        choices: Dict[int, NodeChoice],
        hashes: Sequence[bytes],
        alloc: PersistentNetAllocator,
    ) -> MappedNetlist:
        netlist = MappedNetlist(aig.name, aig.pi_names, aig.po_names)
        policy = _PersistentNetPolicy(netlist, alloc, hashes)
        return self.mapper._emit_netlist(aig, choices, netlist, policy)

    @staticmethod
    def _remap_choice(choice: NodeChoice, new_of_old: Dict[int, int]) -> NodeChoice:
        if isinstance(choice, ConstantChoice):
            return choice
        if isinstance(choice, AliasChoice):
            return AliasChoice(leaf=new_of_old[choice.leaf], negated=choice.negated)
        return CellChoice(
            match=choice.match,
            leaves=tuple(new_of_old[leaf] for leaf in choice.leaves),
        )

    @staticmethod
    def _hash_index(hashes: Sequence[bytes]) -> Dict[bytes, int]:
        index: Dict[bytes, int] = {}
        for var, digest in enumerate(hashes):
            index.setdefault(digest, var)
        return index
