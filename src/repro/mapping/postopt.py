"""Post-mapping netlist optimization: gate sizing and high-fanout buffering.

Logic synthesis, as the paper's background section describes it, is logic
optimization followed by technology mapping *and post-mapping optimization*.
This module implements the two classic post-mapping moves that our cell
library supports:

* **gate sizing** — swap a cell instance for a functionally identical variant
  at a different drive strength: upsizing critical-path gates reduces their
  load-dependent delay, downsizing off-critical gates recovers area;
* **fanout buffering** — split the sink list of a high-fanout net and drive
  the non-critical sinks through a buffer, reducing the load seen by the
  original driver.

Both moves preserve the netlist function exactly (same Boolean function per
cell, buffers are identity), so the optimizer can be applied after any
mapping run.  Every candidate move is accepted only if a full STA pass
confirms it does not hurt the maximum delay, which keeps the optimizer
simple and trustworthy at the circuit sizes used in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import MappingError
from repro.library.cell import Cell
from repro.library.library import CellLibrary
from repro.mapping.netlist import MappedGate, MappedNetlist
from repro.sta.analysis import TimingReport, analyze_timing


@dataclass
class PostOptOptions:
    """Knobs of the post-mapping optimizer."""

    enable_sizing: bool = True
    enable_area_recovery: bool = True
    enable_buffering: bool = True
    max_passes: int = 3
    buffer_fanout_threshold: int = 6
    max_buffers_per_pass: int = 8

    def __post_init__(self) -> None:
        if self.max_passes < 1:
            raise MappingError("max_passes must be at least 1")
        if self.buffer_fanout_threshold < 2:
            raise MappingError("buffer_fanout_threshold must be at least 2")
        if self.max_buffers_per_pass < 1:
            raise MappingError("max_buffers_per_pass must be at least 1")


@dataclass
class PostOptReport:
    """Before/after summary of one post-mapping optimization run."""

    delay_before_ps: float
    delay_after_ps: float
    area_before_um2: float
    area_after_um2: float
    upsized_gates: int = 0
    downsized_gates: int = 0
    buffers_inserted: int = 0
    passes_run: int = 0

    @property
    def delay_improvement_percent(self) -> float:
        """Relative max-delay reduction achieved."""
        if self.delay_before_ps == 0:
            return 0.0
        return (self.delay_before_ps - self.delay_after_ps) / self.delay_before_ps * 100.0

    @property
    def area_change_percent(self) -> float:
        """Relative area change (positive = area grew)."""
        if self.area_before_um2 == 0:
            return 0.0
        return (self.area_after_um2 - self.area_before_um2) / self.area_before_um2 * 100.0


class PostMappingOptimizer:
    """Sizing and buffering on mapped netlists, driven by full STA checks."""

    def __init__(
        self, library: CellLibrary, options: Optional[PostOptOptions] = None
    ) -> None:
        self.library = library
        self.options = options or PostOptOptions()
        self._variants = _variants_by_function(library)
        self._buffer = library.buffers[0] if library.buffers else None

    # ------------------------------------------------------------------ #
    def optimize(
        self, netlist: MappedNetlist, po_load_ff: Optional[float] = None
    ) -> Tuple[MappedNetlist, PostOptReport]:
        """Return an optimized copy of *netlist* and the before/after report."""
        load = po_load_ff if po_load_ff is not None else self.library.po_load_ff
        current = _clone_netlist(netlist)
        timing = analyze_timing(current, po_load_ff=load, with_critical_path=True)
        report = PostOptReport(
            delay_before_ps=timing.max_delay_ps,
            delay_after_ps=timing.max_delay_ps,
            area_before_um2=current.area_um2(),
            area_after_um2=current.area_um2(),
        )

        for _ in range(self.options.max_passes):
            changed = False
            if self.options.enable_sizing:
                current, timing, upsized = self._upsize_critical_path(current, timing, load)
                report.upsized_gates += upsized
                changed = changed or upsized > 0
            if self.options.enable_buffering and self._buffer is not None:
                current, timing, buffers = self._buffer_high_fanout_nets(current, timing, load)
                report.buffers_inserted += buffers
                changed = changed or buffers > 0
            if self.options.enable_area_recovery:
                current, timing, downsized = self._downsize_off_critical(current, timing, load)
                report.downsized_gates += downsized
                changed = changed or downsized > 0
            report.passes_run += 1
            if not changed:
                break

        report.delay_after_ps = timing.max_delay_ps
        report.area_after_um2 = current.area_um2()
        current.validate()
        return current, report

    # ------------------------------------------------------------------ #
    # Gate sizing
    # ------------------------------------------------------------------ #
    def _upsize_critical_path(
        self, netlist: MappedNetlist, timing: TimingReport, load: float
    ) -> Tuple[MappedNetlist, TimingReport, int]:
        critical_outputs = {arc.output_net for arc in timing.critical_path}
        swaps = 0
        for index, gate in enumerate(netlist.gates):
            if gate.output not in critical_outputs:
                continue
            variants = self._other_variants(gate.cell)
            best_delay = timing.max_delay_ps
            best_cell: Optional[Cell] = None
            for candidate in variants:
                trial = _with_swapped_cell(netlist, index, candidate)
                trial_timing = analyze_timing(trial, po_load_ff=load, with_critical_path=False)
                if trial_timing.max_delay_ps < best_delay - 1e-9:
                    best_delay = trial_timing.max_delay_ps
                    best_cell = candidate
            if best_cell is not None:
                netlist = _with_swapped_cell(netlist, index, best_cell)
                timing = analyze_timing(netlist, po_load_ff=load, with_critical_path=True)
                swaps += 1
        return netlist, timing, swaps

    def _downsize_off_critical(
        self, netlist: MappedNetlist, timing: TimingReport, load: float
    ) -> Tuple[MappedNetlist, TimingReport, int]:
        critical_outputs = {arc.output_net for arc in timing.critical_path}
        baseline_delay = timing.max_delay_ps
        swaps = 0
        for index, gate in enumerate(netlist.gates):
            if gate.output in critical_outputs:
                continue
            smaller = [
                cell
                for cell in self._other_variants(gate.cell)
                if cell.area_um2 < gate.cell.area_um2
            ]
            if not smaller:
                continue
            smaller.sort(key=lambda cell: cell.area_um2)
            for candidate in smaller:
                trial = _with_swapped_cell(netlist, index, candidate)
                trial_timing = analyze_timing(trial, po_load_ff=load, with_critical_path=False)
                if trial_timing.max_delay_ps <= baseline_delay + 1e-9:
                    netlist = trial
                    swaps += 1
                    break
        if swaps:
            timing = analyze_timing(netlist, po_load_ff=load, with_critical_path=True)
        return netlist, timing, swaps

    def _other_variants(self, cell: Cell) -> List[Cell]:
        key = (cell.num_inputs, cell.function)
        return [candidate for candidate in self._variants.get(key, []) if candidate.name != cell.name]

    # ------------------------------------------------------------------ #
    # Fanout buffering
    # ------------------------------------------------------------------ #
    def _buffer_high_fanout_nets(
        self, netlist: MappedNetlist, timing: TimingReport, load: float
    ) -> Tuple[MappedNetlist, TimingReport, int]:
        options = self.options
        inserted = 0
        fanouts = netlist.net_fanout_counts()
        candidates = [
            net
            for net, count in sorted(fanouts.items(), key=lambda item: -item[1])
            if count >= options.buffer_fanout_threshold
            and net not in netlist.constant_nets
        ]
        for net in candidates[: options.max_buffers_per_pass]:
            trial = _with_buffered_net(netlist, net, self._buffer, timing)
            if trial is None:
                continue
            trial_timing = analyze_timing(trial, po_load_ff=load, with_critical_path=False)
            if trial_timing.max_delay_ps < timing.max_delay_ps - 1e-9:
                netlist = trial
                timing = analyze_timing(netlist, po_load_ff=load, with_critical_path=True)
                inserted += 1
        return netlist, timing, inserted


# --------------------------------------------------------------------------- #
# Netlist surgery helpers
# --------------------------------------------------------------------------- #
def _variants_by_function(library: CellLibrary) -> Dict[Tuple[int, int], List[Cell]]:
    """Group library cells implementing the same function (drive variants)."""
    groups: Dict[Tuple[int, int], List[Cell]] = {}
    for cell in library.cells:
        groups.setdefault((cell.num_inputs, cell.function), []).append(cell)
    for cells in groups.values():
        cells.sort(key=lambda cell: cell.area_um2)
    return groups


def _clone_netlist(netlist: MappedNetlist) -> MappedNetlist:
    """Deep-enough copy: gates are immutable, so lists/dicts suffice."""
    clone = MappedNetlist.__new__(MappedNetlist)
    clone.name = netlist.name
    clone.pi_names = list(netlist.pi_names)
    clone.po_names = list(netlist.po_names)
    clone._next_net = netlist.num_nets
    clone.pi_nets = list(netlist.pi_nets)
    clone.po_nets = list(netlist.po_nets)
    clone.gates = list(netlist.gates)
    clone.constant_nets = dict(netlist.constant_nets)
    return clone


def _with_swapped_cell(netlist: MappedNetlist, gate_index: int, cell: Cell) -> MappedNetlist:
    """Copy of *netlist* with gate *gate_index* re-implemented by *cell*."""
    original = netlist.gates[gate_index]
    if cell.num_inputs != original.cell.num_inputs or cell.function != original.cell.function:
        raise MappingError(
            f"cannot swap {original.cell.name} for {cell.name}: different function"
        )
    clone = _clone_netlist(netlist)
    clone.gates[gate_index] = MappedGate(cell=cell, inputs=original.inputs, output=original.output)
    return clone


def _with_buffered_net(
    netlist: MappedNetlist,
    net: int,
    buffer_cell: Cell,
    timing: TimingReport,
) -> Optional[MappedNetlist]:
    """Copy of *netlist* where the less-critical sinks of *net* are buffered.

    Returns ``None`` when the net cannot usefully be buffered (fewer than two
    gate sinks, or the net only feeds primary outputs).
    """
    sink_positions: List[Tuple[int, int]] = []  # (gate index, pin position)
    for gate_index, gate in enumerate(netlist.gates):
        for pin_position, input_net in enumerate(gate.inputs):
            if input_net == net:
                sink_positions.append((gate_index, pin_position))
    if len(sink_positions) < 2:
        return None

    # Keep the sink whose downstream path is the most critical on the direct
    # connection; everything else moves behind the buffer.
    def sink_criticality(position: Tuple[int, int]) -> float:
        gate_index, _ = position
        output_net = netlist.gates[gate_index].output
        return timing.net_required_ps.get(output_net, float("inf"))

    sink_positions.sort(key=sink_criticality)
    rebuffered = sink_positions[1:]
    if not rebuffered:
        return None

    clone = _clone_netlist(netlist)
    buffered_net = clone.new_net()
    buffer_gate = MappedGate(cell=buffer_cell, inputs=(net,), output=buffered_net)

    # Insert the buffer immediately after the driver so topological order holds.
    driver_index = -1
    for gate_index, gate in enumerate(clone.gates):
        if gate.output == net:
            driver_index = gate_index
            break
    insert_at = driver_index + 1
    clone.gates.insert(insert_at, buffer_gate)

    rebuffered_set: Set[Tuple[int, int]] = set(rebuffered)
    for gate_index in range(len(clone.gates)):
        if gate_index == insert_at:
            continue
        original_index = gate_index if gate_index < insert_at else gate_index - 1
        gate = clone.gates[gate_index]
        new_inputs = tuple(
            buffered_net if (original_index, pin) in rebuffered_set else input_net
            for pin, input_net in enumerate(gate.inputs)
        )
        if new_inputs != gate.inputs:
            clone.gates[gate_index] = MappedGate(
                cell=gate.cell, inputs=new_inputs, output=gate.output
            )
    return clone
