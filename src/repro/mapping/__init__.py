"""Technology mapping: Boolean matching, cut covering, netlists, post-mapping opt."""

from repro.mapping.mapper import (
    AliasChoice,
    CellChoice,
    ConstantChoice,
    MappingOptions,
    TechnologyMapper,
    map_aig,
)
from repro.mapping.incremental import (
    IncrementalMapper,
    IncrementalMapStats,
    MappingState,
)
from repro.mapping.matcher import classify_single_input, reduce_to_support
from repro.mapping.netlist import MappedGate, MappedNetlist
from repro.mapping.postopt import PostMappingOptimizer, PostOptOptions, PostOptReport

__all__ = [
    "AliasChoice",
    "CellChoice",
    "ConstantChoice",
    "IncrementalMapStats",
    "IncrementalMapper",
    "MappedGate",
    "MappedNetlist",
    "MappingOptions",
    "PostMappingOptimizer",
    "PostOptOptions",
    "MappingState",
    "PostOptReport",
    "TechnologyMapper",
    "classify_single_input",
    "map_aig",
    "reduce_to_support",
]
