"""Bit-parallel simulation of mapped netlists and mapping verification.

Simulating the mapped netlist against the original AIG is how the test suite
proves the technology mapper preserves functionality (the mapped netlist and
the AIG must agree on every output for every input assignment).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.aig.graph import Aig
from repro.aig.simulate import exhaustive_pi_patterns, random_pi_patterns, simulate_pos
from repro.errors import MappingError
from repro.mapping.netlist import MappedNetlist
from repro.utils.rng import RngLike, ensure_rng


def simulate_netlist(
    netlist: MappedNetlist, pi_values: Sequence[int], num_patterns: int
) -> List[int]:
    """Packed primary-output values of the mapped netlist."""
    if len(pi_values) != len(netlist.pi_nets):
        raise MappingError(
            f"expected {len(netlist.pi_nets)} input words, got {len(pi_values)}"
        )
    mask = (1 << num_patterns) - 1
    values: Dict[int, int] = {}
    for net, word in zip(netlist.pi_nets, pi_values):
        values[net] = word & mask
    for net, constant in netlist.constant_nets.items():
        values[net] = mask if constant else 0
    for gate in netlist.gates:
        inputs = []
        for net in gate.inputs:
            if net not in values:
                raise MappingError(f"net {net} consumed before being driven")
            inputs.append(values[net])
        values[gate.output] = _evaluate_cell(gate.cell.function, inputs, mask)
    outputs = []
    for net in netlist.po_nets:
        if net is None or net not in values:
            raise MappingError("netlist has unconnected primary outputs")
        outputs.append(values[net] & mask)
    return outputs


def _evaluate_cell(function: int, input_words: Sequence[int], mask: int) -> int:
    """Evaluate a cell truth table over packed input words (Shannon expansion)."""
    result = 0
    num_inputs = len(input_words)
    for minterm in range(1 << num_inputs):
        if not (function >> minterm) & 1:
            continue
        term = mask
        for position, word in enumerate(input_words):
            if (minterm >> position) & 1:
                term &= word
            else:
                term &= ~word & mask
        result |= term
    return result & mask


def check_mapping_equivalence(
    aig: Aig,
    netlist: MappedNetlist,
    exact_pi_limit: int = 16,
    num_random_patterns: int = 2048,
    rng: RngLike = None,
) -> bool:
    """True when the mapped netlist matches the AIG on all tested patterns.

    Exhaustive when the design has at most *exact_pi_limit* inputs; random
    otherwise.
    """
    if aig.num_pis != len(netlist.pi_nets) or aig.num_pos != len(netlist.po_nets):
        raise MappingError("AIG and netlist interfaces differ")
    if aig.num_pis <= exact_pi_limit:
        num_patterns = 1 << aig.num_pis
        patterns = exhaustive_pi_patterns(aig.num_pis)
        return simulate_pos(aig, patterns, num_patterns) == simulate_netlist(
            netlist, patterns, num_patterns
        )
    generator = ensure_rng(rng)
    remaining = num_random_patterns
    while remaining > 0:
        batch = min(256, remaining)
        patterns = random_pi_patterns(aig.num_pis, batch, generator)
        if simulate_pos(aig, patterns, batch) != simulate_netlist(netlist, patterns, batch):
            return False
        remaining -= batch
    return True
