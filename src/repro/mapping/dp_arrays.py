"""Vectorized cut-evaluation DP for the technology mapper.

:meth:`TechnologyMapper._select_choices` evaluates every (cut, match)
candidate of every AND node with nested Python loops.  This module computes
the same DP as batched array reductions:

* a module-level **reduction LUT** maps every 4-variable truth table to its
  support mask and support-reduced table in one gather (smaller cuts are
  padded by replication, which adds only non-support variables);
* per library, a **flattened match table** (:class:`MatchTables`) lays the
  Boolean match index out as contiguous arrays: per match row the pin→leaf
  permutation, pin inverter delays, pin delays at the estimated load, and
  the exact scalar-accumulated area base (cell area plus inverter areas in
  scalar addition order);
* per graph snapshot, a **candidate layout** (:class:`CandidateLayout`)
  expands every matchable cut of every node into candidate rows (term leaf
  ids, delay addends, flow leaf ids) — cached on ``AigArrays.dp_cache``
  because it is independent of fanout counts and mapping mode;
* the **wave DP** walks level waves; per wave one gather + reduction chain
  scores all candidates and a stable lexsort picks, per node, the scalar
  tie-break winner: the scalar loop keeps the first strictly-better
  candidate over (cut order, match order), which is exactly the
  lexicographic minimum of ``(key0, key1, candidate position)``.

Float exactness: the scalar evaluation is replicated operation for
operation — ``t = arrival[leaf]; t += inv_delay?; t += pin_delay`` becomes
two separate array adds, leaf flows accumulate in support order with
``+0.0`` pads (exact: flows are never ``-0.0``), and column sums are written
as sequential binary adds, never ``ndarray.sum`` (pairwise association
would differ).  Nodes the vectorized path does not model — constant cuts,
single-input aliases, nodes with no matchable cut — fall back per node to
the scalar :meth:`TechnologyMapper._choose_for_node`, which stays the
reference implementation.  ``tests/test_dp_arrays.py`` asserts bit-equal
choices, arrivals, and netlists against the scalar path.

Env toggle ``REPRO_MAP_DP``: ``"scalar"`` forces the scalar DP,
``"vector"`` or empty uses the array path when supported.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.aig.cut_arrays import (
    SENTINEL,
    CutArrays,
    build_cut_arrays,
    cut_arrays_supported,
)
from repro.aig.cuts import Cut
from repro.aig.graph import Aig
from repro.library.library import CellLibrary

_NEG_INF = float("-inf")

#: Replication multipliers padding an s-variable table to 4 variables
#: (index = s).  Replication repeats the function over the added variables,
#: so the added variables are non-support and reduction is unchanged.
_PAD_MULT = np.asarray([0, 0x5555, 0x1111, 0x0101, 1], dtype=np.int64)

# Lazily built module LUTs over all 65536 4-variable tables (library
# independent).  _REDUCED[t] is the support-reduced table, _SUPMASK[t] the
# support-variable bitmask; _SUPPOS/_SUPCNT decode a 4-bit support mask
# into ascending variable positions / popcount.
_LUTS: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None


def _build_luts() -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    tables = np.arange(65536, dtype=np.int64)
    supmask = np.zeros(65536, dtype=np.int64)
    for var in range(4):
        stride = 1 << var
        # Minterm positions where this variable is 0, as a 16-bit mask.
        var_mask = 0
        for minterm in range(16):
            if not (minterm >> var) & 1:
                var_mask |= 1 << minterm
        depends = (((tables >> stride) ^ tables) & var_mask) != 0
        supmask |= depends.astype(np.int64) << var
    reduced = np.zeros(65536, dtype=np.int64)
    suppos = np.zeros((16, 4), dtype=np.int64)
    supcnt = np.zeros(16, dtype=np.int64)
    for mask in range(16):
        positions = [v for v in range(4) if (mask >> v) & 1]
        supcnt[mask] = len(positions)
        for j, pos in enumerate(positions):
            suppos[mask, j] = pos
        rows = np.nonzero(supmask == mask)[0]
        sub = tables[rows]
        out = np.zeros(len(rows), dtype=np.int64)
        for minterm in range(1 << len(positions)):
            original = 0
            for j, pos in enumerate(positions):
                if (minterm >> j) & 1:
                    original |= 1 << pos
            out |= ((sub >> original) & 1) << minterm
        reduced[rows] = out
    return reduced, supmask, suppos, supcnt


def _luts() -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    global _LUTS
    if _LUTS is None:
        # Benign race: the build is deterministic and idempotent, so
        # concurrent first calls just do redundant work (same idiom as
        # CellLibrary.fingerprint's lazy attribute).
        _LUTS = _build_luts()
    return _LUTS


class MatchTables:
    """A library's Boolean match index, flattened for array evaluation.

    One row per (function class, match) pair, clamped to the first
    ``max_matches`` matches per class — the same prefix of the
    (num_inverters, area)-sorted match list the scalar loop visits.
    """

    __slots__ = (
        "classid",
        "match_start",
        "match_count",
        "pin_to_leaf",
        "pin_inv_add",
        "pin_delay",
        "out_add",
        "area_base",
        "matches",
        "inv_delay",
        "inv_area",
    )

    def __init__(self, library: CellLibrary, load_ff: float, max_matches: int) -> None:
        inv_cell = library.inverter
        self.inv_delay = inv_cell.worst_delay_ps(load_ff)
        self.inv_area = inv_cell.area_um2
        self.classid = np.full((5, 65536), -1, dtype=np.int32)
        starts: List[int] = []
        counts: List[int] = []
        p2l: List[List[int]] = []
        inv_add: List[List[float]] = []
        pdelay: List[List[float]] = []
        out_add: List[float] = []
        base: List[float] = []
        self.matches: List = []
        for num_vars, table, matches in library.match_index_items():
            if not 2 <= num_vars <= 4:
                continue
            cid = len(starts)
            self.classid[num_vars, table] = cid
            clamped = matches[:max_matches]
            starts.append(len(self.matches))
            counts.append(len(clamped))
            for match in clamped:
                self.matches.append(match)
                row_p2l = [0, 0, 0, 0]
                row_inv = [0.0, 0.0, 0.0, 0.0]
                row_del = [0.0, 0.0, 0.0, 0.0]
                inverter_area = 0.0
                for pin_index, pin in enumerate(match.cell.pins):
                    row_p2l[pin_index] = match.pin_to_leaf[pin_index]
                    if match.pin_negated[pin_index]:
                        row_inv[pin_index] = self.inv_delay
                        inverter_area += self.inv_area
                    row_del[pin_index] = pin.delay_ps(load_ff)
                if match.output_negated:
                    out_add.append(self.inv_delay)
                    inverter_area += self.inv_area
                else:
                    out_add.append(0.0)
                # Exact scalar association: (cell.area + inverter_area),
                # the left operand of the later "+ leaf_flow".
                base.append(match.cell.area_um2 + inverter_area)
                p2l.append(row_p2l)
                inv_add.append(row_inv)
                pdelay.append(row_del)
        self.match_start = np.asarray(starts, dtype=np.int64)
        self.match_count = np.asarray(counts, dtype=np.int64)
        self.pin_to_leaf = np.asarray(p2l, dtype=np.int64).reshape(-1, 4)
        self.pin_inv_add = np.asarray(inv_add, dtype=np.float64).reshape(-1, 4)
        self.pin_delay = np.asarray(pdelay, dtype=np.float64).reshape(-1, 4)
        self.out_add = np.asarray(out_add, dtype=np.float64)
        self.area_base = np.asarray(base, dtype=np.float64)


def match_tables(library: CellLibrary, load_ff: float, max_matches: int) -> MatchTables:
    """The (cached) flattened match tables of *library* at *load_ff*."""
    cache: Optional[Dict] = getattr(library, "_dp_match_tables", None)
    if cache is None:
        cache = {}
        # Lazy-attribute idiom (see CellLibrary.fingerprint): libraries are
        # immutable, so a racing duplicate build is redundant, not wrong.
        library._dp_match_tables = cache  # type: ignore[attr-defined]
    key = (load_ff, max_matches)
    tables = cache.get(key)
    if tables is None:
        tables = MatchTables(library, load_ff, max_matches)
        cache[key] = tables
    return tables


class CandidateLayout:
    """Per-snapshot expansion of matchable cuts into DP candidate rows.

    Everything here depends only on the frozen graph prefix, the library
    content, the estimated load, and the match clamp — not on fanout counts
    or mapping mode — so it is cached on ``AigArrays.dp_cache`` alongside
    the :class:`CutArrays` it is derived from.
    """

    __slots__ = (
        "cut_arrays",
        "cand_cut",
        "cand_node",
        "cand_match",
        "term_leaf",
        "term_add0",
        "term_add1",
        "term_active",
        "out_add",
        "area_base",
        "flow_leaf",
        "flow_active",
        "sup_leaf",
        "sup_cnt",
        "wave_bounds",
        "exotic_mask",
        "num_matchable_cuts",
    )

    def __init__(self, aig: Aig, ca: CutArrays, mt: MatchTables) -> None:
        reduced_lut, supmask_lut, suppos_lut, supcnt_lut = _luts()
        arrays = aig.arrays()
        size = arrays.size
        start = ca.start
        count = ca.count
        and_vars = arrays.and_vars

        # Non-trivial AND cut rows, ascending (trivial = last row per node).
        nontrivial = np.zeros(ca.num_rows, dtype=bool)
        if len(and_vars):
            a_start = start[and_vars]
            a_count = count[and_vars]
            spans = a_count - 1
            total = int(spans.sum())
            starts_rep = np.repeat(a_start, spans)
            offs = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(spans) - spans, spans
            )
            nontrivial[starts_rep + offs] = True
        rows = np.nonzero(nontrivial)[0]
        # Per-row owning variable, via rows sorted by block start.
        order_vars = np.argsort(start, kind="stable")
        node_of_row = np.repeat(order_vars, count[order_vars])
        row_node = node_of_row[rows]

        padded = ca.tables[rows] * _PAD_MULT[ca.sizes[rows]]
        supmask = supmask_lut[padded]
        reduced = reduced_lut[padded]
        sup_cnt = supcnt_lut[supmask]
        cid = np.where(
            sup_cnt >= 2, mt.classid[sup_cnt.clip(0, 4), reduced], -1
        )

        # Nodes with a constant or single-input (alias) cut take the scalar
        # reference path wholesale: those candidates never enter the arrays.
        exotic_rows = sup_cnt <= 1
        exotic_mask = np.zeros(size, dtype=bool)
        exotic_mask[row_node[exotic_rows]] = True
        self.exotic_mask = exotic_mask

        usable = (cid >= 0) & ~exotic_mask[row_node]
        sel = np.nonzero(usable)[0]
        sel_rows = rows[sel]
        sel_node = row_node[sel]
        sel_cid = cid[sel]
        sel_cnt = sup_cnt[sel]
        self.num_matchable_cuts = len(sel)

        # Support-ordered leaf columns per selected cut row.
        pos = suppos_lut[supmask[sel]]
        row_leaves = ca.leaves[sel_rows]
        sup_leaf = row_leaves[np.arange(len(sel))[:, None], pos]
        self.sup_leaf = sup_leaf
        self.sup_cnt = sel_cnt

        # Expand matches: one candidate row per (cut, match) pair, in the
        # scalar visit order (cut rows ascending, match prefix order).
        mc = mt.match_count[sel_cid]
        num_cand = int(mc.sum())
        cut_of = np.repeat(np.arange(len(sel), dtype=np.int64), mc)
        local = np.arange(num_cand, dtype=np.int64) - np.repeat(
            np.cumsum(mc) - mc, mc
        )
        mrow = np.repeat(mt.match_start[sel_cid], mc) + local
        self.cand_cut = sel_rows[cut_of]
        self.cand_node = sel_node[cut_of]
        self.cand_match = mrow

        p2l = mt.pin_to_leaf[mrow]
        sup_of_cand = sup_leaf[cut_of]
        self.term_leaf = sup_of_cand[np.arange(num_cand)[:, None], p2l]
        self.term_add0 = mt.pin_inv_add[mrow]
        self.term_add1 = mt.pin_delay[mrow]
        # Active pin columns: every cell pin (num_inputs == support size of
        # its class by construction of the match index).
        self.term_active = (
            np.arange(4, dtype=np.int64)[None, :] < sel_cnt[cut_of][:, None]
        )
        self.out_add = mt.out_add[mrow]
        self.area_base = mt.area_base[mrow]
        self.flow_leaf = sup_of_cand
        self.flow_active = self.term_active

        # Candidate index bounds per level wave (rows of a wave are written
        # contiguously, and cand_cut ascends).
        edges: List[int] = []
        for begin, end in ca.wave_row_ranges:
            edges.append(begin)
            edges.append(end)
        bounds = np.searchsorted(self.cand_cut, np.asarray(edges, dtype=np.int64))
        self.wave_bounds = bounds.reshape(-1, 2)
        self.cut_arrays = ca


def candidate_layout(
    aig: Aig, k: int, max_cuts: int, library: CellLibrary, load_ff: float, max_matches: int
) -> CandidateLayout:
    """Build (or fetch) the cached candidate layout for this configuration."""
    arrays = aig.arrays()
    key = ("dp_layout", k, max_cuts, library.fingerprint(), load_ff, max_matches)
    cached = arrays.dp_cache.get(key)
    if cached is not None:
        return cached  # type: ignore[return-value]
    ca = build_cut_arrays(aig, k, max_cuts)
    mt = match_tables(library, load_ff, max_matches)
    layout = CandidateLayout(aig, ca, mt)
    # repro-lint: ignore[C2] -- candidate_layout owns this dp_cache key
    # (first write), mirroring enumerate_cuts' cut_cache ownership.
    arrays.dp_cache[key] = layout
    return layout


@dataclass
class DpStats:
    """What the vectorized DP actually did (the CI bench gate reads this)."""

    used_vectorized: bool
    total_ands: int = 0
    vector_nodes: int = 0
    scalar_nodes: int = 0
    hazard_fallbacks: int = 0
    reason: str = ""


@dataclass
class DpResult:
    """Full-DP output, structurally identical to the scalar DP's state."""

    choices: Dict[int, object]
    arrival: List[Optional[float]]
    area_flow: List[Optional[float]]
    cut_arrays: CutArrays
    stats: DpStats


def _node_cuts_from_arrays(ca: CutArrays, var: int) -> List[Cut]:
    """Materialise one node's scalar cut list from the array form."""
    begin = int(ca.start[var])
    rows = range(begin, begin + int(ca.count[var]))
    leaves = ca.leaves[list(rows)].tolist()
    sizes = ca.sizes[list(rows)].tolist()
    return [
        Cut(var, tuple(row[:row_size]))
        for row, row_size in zip(leaves, sizes)
    ]


def dp_mode() -> str:
    """The requested DP implementation: '', 'scalar', or 'vector'."""
    return os.environ.get("REPRO_MAP_DP", "").strip().lower()


def try_full_dp(mapper, aig: Aig) -> Optional[DpResult]:
    """Run the full mapping DP with array batching, or ``None`` if the
    configuration is unsupported (caller falls back to the scalar loop).

    The result is bit-identical to :meth:`TechnologyMapper._select_choices`:
    same choices (same Match objects), same arrival and area-flow floats.
    """
    mode = dp_mode()
    if mode == "scalar":
        return None
    opts = mapper.options
    k = mapper.cut_size
    if not cut_arrays_supported(aig, k):
        return None

    layout = candidate_layout(
        aig,
        k,
        opts.max_cuts_per_node,
        mapper.library,
        opts.estimated_load_ff,
        opts.max_matches_per_cut,
    )
    ca = layout.cut_arrays
    mt = match_tables(
        mapper.library, opts.estimated_load_ff, opts.max_matches_per_cut
    )
    arrays = aig.arrays()
    size = arrays.size
    fanout = aig.fanout_counts()
    fan_clip = np.maximum(np.asarray(fanout, dtype=np.int64), 1)

    arrival = np.zeros(size, dtype=np.float64)
    area_flow = np.zeros(size, dtype=np.float64)
    flow_div = np.zeros(size, dtype=np.float64)
    chosen: Dict[int, object] = {}
    got = np.zeros(size, dtype=bool)
    delay_mode = opts.mode == "delay"

    term_leaf = layout.term_leaf
    term_add0 = layout.term_add0
    term_add1 = layout.term_add1
    term_active = layout.term_active
    out_add = layout.out_add
    area_base = layout.area_base
    flow_leaf = layout.flow_leaf
    flow_active = layout.flow_active
    cand_node = layout.cand_node
    winner_cands: List[np.ndarray] = []
    winner_nodes: List[np.ndarray] = []
    scalar_nodes = 0

    wave_groups = arrays.and_level_groups()
    for wave_index, nodes in enumerate(wave_groups):
        lo, hi = layout.wave_bounds[wave_index]
        if hi > lo:
            sl = slice(lo, hi)
            t = arrival[term_leaf[sl]] + term_add0[sl]
            t += term_add1[sl]
            t = np.where(term_active[sl], t, _NEG_INF)
            cand_arr = t.max(axis=1)
            np.maximum(cand_arr, 0.0, out=cand_arr)
            cand_arr += out_add[sl]
            f = np.where(flow_active[sl], flow_div[flow_leaf[sl]], 0.0)
            flow = f[:, 0] + f[:, 1]
            flow += f[:, 2]
            flow += f[:, 3]
            cand_area = area_base[sl] + flow
            w_node = cand_node[sl]
            if delay_mode:
                order = np.lexsort((cand_area, cand_arr, w_node))
            else:
                order = np.lexsort((cand_arr, cand_area, w_node))
            ordered_nodes = w_node[order]
            first = np.empty(len(order), dtype=bool)
            first[0] = True
            first[1:] = ordered_nodes[1:] != ordered_nodes[:-1]
            win = order[first]
            win_nodes = ordered_nodes[first]
            arrival[win_nodes] = cand_arr[win]
            area_flow[win_nodes] = cand_area[win]
            got[win_nodes] = True
            winner_cands.append(win + lo)
            winner_nodes.append(win_nodes)

        rest = nodes[~got[nodes]]
        if len(rest):
            scalar_nodes += len(rest)
            for var in rest.tolist():
                choice, cand_arrival, cand_area_v = mapper._choose_for_node(
                    aig,
                    var,
                    _node_cuts_from_arrays(ca, var),
                    arrival,
                    area_flow,
                    fanout,
                )
                chosen[var] = choice
                arrival[var] = cand_arrival
                area_flow[var] = cand_area_v
        flow_div[nodes] = area_flow[nodes] / fan_clip[nodes]

    # Materialise winner choices (match object + support-ordered leaves).
    _build_winner_choices(layout, mt, winner_cands, winner_nodes, chosen)

    and_list = arrays.and_vars.tolist()
    choices = {var: chosen[var] for var in and_list}
    arrival_list: List[Optional[float]] = arrival.tolist()
    area_list: List[Optional[float]] = area_flow.tolist()

    stats = DpStats(
        used_vectorized=True,
        total_ands=len(and_list),
        vector_nodes=len(and_list) - scalar_nodes,
        scalar_nodes=scalar_nodes,
        hazard_fallbacks=ca.hazard_fallbacks,
    )
    return DpResult(
        choices=choices,
        arrival=arrival_list,
        area_flow=area_list,
        cut_arrays=ca,
        stats=stats,
    )


def _build_winner_choices(
    layout: CandidateLayout,
    mt: MatchTables,
    winner_cands: List[np.ndarray],
    winner_nodes: List[np.ndarray],
    chosen: Dict[int, object],
) -> None:
    """Attach CellChoice objects for every vectorized winner."""
    from repro.mapping.mapper import CellChoice

    if not winner_cands:
        return
    wins = np.concatenate(winner_cands)
    nodes = np.concatenate(winner_nodes)
    # Candidate -> its cut's support leaves: recover the selected-cut index
    # of each candidate by position (cand arrays were built cut-major).
    # layout.flow_leaf rows ARE the support leaves of the candidate's cut.
    leaves_rows = layout.flow_leaf[wins].tolist()
    # Per-candidate support count: number of active flow columns.
    cnt_rows = layout.flow_active[wins].sum(axis=1).tolist()
    match_rows = layout.cand_match[wins].tolist()
    for var, leaves, cnt, mrow in zip(
        nodes.tolist(), leaves_rows, cnt_rows, match_rows
    ):
        chosen[var] = CellChoice(
            match=mt.matches[mrow], leaves=tuple(leaves[:cnt])
        )
