"""Helpers for matching cut functions against library cells.

The mapper computes the exact function of every cut, reduces it to its true
support (mapping does not care about leaves the function ignores), and then
asks the library's match index for realisations.  This module holds the
support-reduction helper and small classification utilities shared between
the mapper and its tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.aig.truth import support, table_mask
from repro.errors import MappingError


def reduce_to_support(table: int, num_vars: int) -> Tuple[int, List[int]]:
    """Re-express *table* over only the variables it depends on.

    Returns ``(reduced_table, support_indices)`` where variable ``j`` of the
    reduced table corresponds to original variable ``support_indices[j]``.
    Constant functions return ``(0 or 1, [])`` (a one-bit table).

    Memoised: the mapper reduces the same small cut functions over and over
    across nodes, designs, and annealing iterations.
    """
    reduced, sup = _reduce_cached(table & table_mask(num_vars), num_vars)
    return reduced, list(sup)


@lru_cache(maxsize=200_000)
def _reduce_cached(table: int, num_vars: int) -> Tuple[int, Tuple[int, ...]]:
    sup = support(table, num_vars)
    if not sup:
        return (1 if table else 0), ()
    reduced = 0
    m = len(sup)
    for minterm in range(1 << m):
        original_minterm = 0
        for j, var in enumerate(sup):
            if (minterm >> j) & 1:
                original_minterm |= 1 << var
        if (table >> original_minterm) & 1:
            reduced |= 1 << minterm
    return reduced, tuple(sup)


def classify_single_input(table: int) -> bool:
    """For a one-variable table, return True when it is the inverter (!x).

    Raises :class:`MappingError` for constant tables (those must be handled
    as constants, not aliases).
    """
    table &= 0b11
    if table == 0b10:
        return False
    if table == 0b01:
        return True
    raise MappingError(f"single-input table {table:#04b} is constant, not a wire")
