"""Control-logic generators: decoders, multiplexers, parity, priority logic."""

from __future__ import annotations

from typing import List, Sequence

from repro.aig.graph import Aig
from repro.aig.literals import CONST0, negate
from repro.errors import DesignError


def decoder(aig: Aig, select: Sequence[int]) -> List[int]:
    """Full binary decoder: ``2**len(select)`` one-hot outputs."""
    if not select:
        raise DesignError("decoder needs at least one select bit")
    outputs: List[int] = []
    for code in range(1 << len(select)):
        terms = []
        for position, bit in enumerate(select):
            terms.append(bit if (code >> position) & 1 else negate(bit))
        outputs.append(aig.add_and_multi(terms))
    return outputs


def mux_tree(aig: Aig, data: Sequence[int], select: Sequence[int]) -> int:
    """Select one of ``len(data)`` literals with a binary select bus."""
    if len(data) != 1 << len(select):
        raise DesignError(
            f"mux needs {1 << len(select)} data inputs for {len(select)} select bits, "
            f"got {len(data)}"
        )
    current = list(data)
    for bit in select:
        current = [
            aig.add_mux(bit, current[i + 1], current[i]) for i in range(0, len(current), 2)
        ]
    return current[0]


def parity_tree(aig: Aig, bits: Sequence[int]) -> int:
    """XOR-reduce a list of literals (even parity)."""
    if not bits:
        return CONST0
    current = list(bits)
    while len(current) > 1:
        nxt = []
        for i in range(0, len(current) - 1, 2):
            nxt.append(aig.add_xor(current[i], current[i + 1]))
        if len(current) % 2 == 1:
            nxt.append(current[-1])
        current = nxt
    return current[0]


def priority_encoder(aig: Aig, requests: Sequence[int]) -> List[int]:
    """One-hot grant vector: grant[i] is high for the lowest-index active request."""
    grants: List[int] = []
    nobody_before = None
    for index, request in enumerate(requests):
        if index == 0:
            grants.append(request)
            nobody_before = negate(request)
            continue
        grants.append(aig.add_and(request, nobody_before))
        nobody_before = aig.add_and(nobody_before, negate(request))
    return grants


def popcount(aig: Aig, bits: Sequence[int]) -> List[int]:
    """Population count of a bit list, as a little-endian bus."""
    from repro.designs.arithmetic import ripple_adder

    if not bits:
        return [CONST0]
    buses: List[List[int]] = [[bit] for bit in bits]
    while len(buses) > 1:
        merged: List[List[int]] = []
        for i in range(0, len(buses) - 1, 2):
            a, b = buses[i], buses[i + 1]
            width = max(len(a), len(b)) + 1
            a = a + [CONST0] * (width - len(a))
            b = b + [CONST0] * (width - len(b))
            total, _ = ripple_adder(aig, a, b)
            merged.append(total)
        if len(buses) % 2 == 1:
            merged.append(buses[-1])
        buses = merged
    return buses[0]
