"""Synthetic benchmark designs standing in for the paper's IWLS suite."""

from repro.designs.arithmetic import (
    array_multiplier,
    equality,
    full_adder,
    half_adder,
    less_than,
    ripple_adder,
    ripple_subtractor,
)
from repro.designs.control import (
    decoder,
    mux_tree,
    parity_tree,
    popcount,
    priority_encoder,
)
from repro.designs.generators import (
    DesignSpec,
    adder_design,
    build_from_spec,
    multiplier_design,
)
from repro.designs.random_logic import grow_to_target, mixing_layer
from repro.designs.registry import (
    ALL_DESIGNS,
    DESIGN_SPECS,
    TEST_DESIGNS,
    TRAIN_DESIGNS,
    build_design,
    clear_design_cache,
    design_names,
    design_spec,
)

__all__ = [
    "ALL_DESIGNS",
    "DESIGN_SPECS",
    "DesignSpec",
    "TEST_DESIGNS",
    "TRAIN_DESIGNS",
    "adder_design",
    "array_multiplier",
    "build_design",
    "build_from_spec",
    "clear_design_cache",
    "decoder",
    "design_names",
    "design_spec",
    "equality",
    "full_adder",
    "grow_to_target",
    "half_adder",
    "less_than",
    "mixing_layer",
    "multiplier_design",
    "mux_tree",
    "parity_tree",
    "popcount",
    "priority_encoder",
    "ripple_adder",
    "ripple_subtractor",
]
