"""Arithmetic circuit generators (adders, multipliers, comparators).

These generators produce the word-level blocks used to assemble the
benchmark designs of :mod:`repro.designs.generators`.  Each builder works on
an existing :class:`~repro.aig.graph.Aig` and operates on *buses*: plain
Python lists of literals, least-significant bit first.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.aig.graph import Aig
from repro.aig.literals import CONST0
from repro.errors import DesignError


def half_adder(aig: Aig, a: int, b: int) -> Tuple[int, int]:
    """Return ``(sum, carry)`` of two literals."""
    return aig.add_xor(a, b), aig.add_and(a, b)


def full_adder(aig: Aig, a: int, b: int, cin: int) -> Tuple[int, int]:
    """Return ``(sum, carry)`` of three literals."""
    ab = aig.add_xor(a, b)
    total = aig.add_xor(ab, cin)
    carry = aig.add_or(aig.add_and(a, b), aig.add_and(ab, cin))
    return total, carry


def ripple_adder(
    aig: Aig, a: Sequence[int], b: Sequence[int], cin: int = CONST0
) -> Tuple[List[int], int]:
    """Ripple-carry addition of two equal-width buses; returns (sum bus, carry out)."""
    if len(a) != len(b):
        raise DesignError(f"adder operand widths differ: {len(a)} vs {len(b)}")
    carry = cin
    total: List[int] = []
    for bit_a, bit_b in zip(a, b):
        s, carry = full_adder(aig, bit_a, bit_b, carry)
        total.append(s)
    return total, carry


def ripple_subtractor(
    aig: Aig, a: Sequence[int], b: Sequence[int]
) -> Tuple[List[int], int]:
    """Two's-complement subtraction ``a - b``; returns (difference, borrow-free flag)."""
    from repro.aig.literals import negate

    inverted_b = [negate(bit) for bit in b]
    diff, carry = ripple_adder(aig, list(a), inverted_b, cin=1)
    return diff, carry


def array_multiplier(aig: Aig, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Unsigned array multiplier; returns the ``len(a) + len(b)``-bit product."""
    if not a or not b:
        raise DesignError("multiplier operands must be non-empty")
    width = len(a) + len(b)
    rows: List[List[int]] = []
    for j, bit_b in enumerate(b):
        row = [CONST0] * j + [aig.add_and(bit_a, bit_b) for bit_a in a]
        row += [CONST0] * (width - len(row))
        rows.append(row)
    accumulator = rows[0]
    for row in rows[1:]:
        accumulator, carry = ripple_adder(aig, accumulator, row)
        # The carry out of the full-width addition is always zero for the
        # sized accumulator; keep the bus width fixed.
    return accumulator[:width]


def less_than(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned comparison ``a < b`` of two equal-width buses."""
    if len(a) != len(b):
        raise DesignError(f"comparator operand widths differ: {len(a)} vs {len(b)}")
    from repro.aig.literals import negate

    result = CONST0
    for bit_a, bit_b in zip(a, b):  # LSB to MSB; later bits override earlier ones
        bit_lt = aig.add_and(negate(bit_a), bit_b)
        bit_eq = aig.add_xnor(bit_a, bit_b)
        result = aig.add_or(bit_lt, aig.add_and(bit_eq, result))
    return result


def equality(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Bitwise equality of two equal-width buses."""
    if len(a) != len(b):
        raise DesignError(f"comparator operand widths differ: {len(a)} vs {len(b)}")
    bits = [aig.add_xnor(bit_a, bit_b) for bit_a, bit_b in zip(a, b)]
    return aig.add_and_multi(bits)


def add_constant(aig: Aig, a: Sequence[int], constant: int) -> List[int]:
    """Add an integer constant to a bus (modulo the bus width)."""
    const_bits = [(1 if (constant >> i) & 1 else 0) for i in range(len(a))]
    const_lits = [bit for bit in const_bits]
    total, _ = ripple_adder(aig, list(a), const_lits)
    return total
