"""Random mixing logic used to scale benchmark designs to a target size.

The synthetic EXxx designs combine real arithmetic/control blocks with
*mixing layers*: deterministic pseudo-random layers of XOR/MAJ/MUX/AOI
structures that add reconvergent logic until the design reaches its target
node count.  The layers are seeded, so a given design name always produces
exactly the same graph.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.aig.graph import Aig
from repro.aig.literals import negate_if
from repro.errors import DesignError
from repro.utils.rng import RngLike, ensure_rng


def mixing_layer(
    aig: Aig,
    signals: Sequence[int],
    rng: RngLike = None,
    width: int = 16,
) -> List[int]:
    """Create one layer of mixed logic over *signals*; returns the new signals."""
    if len(signals) < 3:
        raise DesignError("mixing layer needs at least three input signals")
    generator = ensure_rng(rng)
    outputs: List[int] = []
    pool = list(signals)
    for _ in range(width):
        a = negate_if(pool[generator.randrange(len(pool))], generator.random() < 0.5)
        b = negate_if(pool[generator.randrange(len(pool))], generator.random() < 0.5)
        c = negate_if(pool[generator.randrange(len(pool))], generator.random() < 0.5)
        kind = generator.randrange(5)
        if kind == 0:
            out = aig.add_xor(a, b)
        elif kind == 1:
            out = aig.add_maj(a, b, c)
        elif kind == 2:
            out = aig.add_mux(a, b, c)
        elif kind == 3:
            out = aig.add_or(aig.add_and(a, b), c)
        else:
            out = aig.add_and(aig.add_or(a, b), aig.add_xor(b, c))
        outputs.append(out)
    return outputs


def grow_to_target(
    aig: Aig,
    signals: Sequence[int],
    target_ands: int,
    rng: RngLike = None,
    layer_width: int = 16,
) -> List[int]:
    """Keep adding mixing layers until the AIG reaches *target_ands* nodes.

    Returns the signals of the final layer (candidates for primary outputs).
    The loop feeds each new layer with a window over recent signals so depth
    grows steadily, giving the designs realistic long paths.
    """
    generator = ensure_rng(rng)
    current = list(signals)
    guard = 0
    while aig.num_ands < target_ands:
        window = current[-max(3 * layer_width, 24):]
        layer = mixing_layer(aig, window, generator, width=layer_width)
        current.extend(layer)
        guard += 1
        if guard > 10_000:
            raise DesignError(
                "grow_to_target failed to converge; target node count too large"
            )
    return current
