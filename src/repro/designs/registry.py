"""Registry of the eight EXxx benchmark designs used in the paper.

The PI/PO counts follow Table III of the paper exactly; the target AND-node
counts are scaled to roughly half the paper's medians so that the full
benchmark harness completes in minutes on a laptop (the relative size
ordering between designs, which drives the runtime trends of Fig. 2 and
Table IV, is preserved).  EX00/EX08/EX28/EX68 form the training split and
EX02/EX11/EX16/EX54 the unseen-design test split, matching the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aig.graph import Aig
from repro.designs.generators import DesignSpec, build_from_spec, multiplier_design
from repro.errors import DesignError

#: Table III design specs (PI/PO exact; sizes scaled, see module docstring).
DESIGN_SPECS: Dict[str, DesignSpec] = {
    spec.name: spec
    for spec in (
        DesignSpec("EX00", num_pis=16, num_pos=7, target_ands=110, core="add", seed=100, role="train"),
        DesignSpec("EX08", num_pis=18, num_pos=5, target_ands=850, core="mul", seed=108, role="train"),
        DesignSpec("EX28", num_pis=17, num_pos=7, target_ands=950, core="mixed", seed=128, role="train"),
        DesignSpec("EX68", num_pis=14, num_pos=7, target_ands=80, core="control", seed=168, role="train"),
        DesignSpec("EX02", num_pis=18, num_pos=6, target_ands=650, core="control", seed=102, role="test"),
        DesignSpec("EX11", num_pis=17, num_pos=7, target_ands=900, core="mul", seed=111, role="test"),
        DesignSpec("EX16", num_pis=16, num_pos=5, target_ands=950, core="mixed", seed=116, role="test"),
        DesignSpec("EX54", num_pis=17, num_pos=7, target_ands=1200, core="mul", seed=154, role="test"),
    )
}

TRAIN_DESIGNS: List[str] = [n for n, s in DESIGN_SPECS.items() if s.role == "train"]
TEST_DESIGNS: List[str] = [n for n, s in DESIGN_SPECS.items() if s.role == "test"]
ALL_DESIGNS: List[str] = TRAIN_DESIGNS + TEST_DESIGNS

_CACHE: Dict[tuple, Aig] = {}


def design_names(role: Optional[str] = None) -> List[str]:
    """Names of registered designs, optionally filtered by role (train/test)."""
    if role is None:
        return list(ALL_DESIGNS)
    if role not in ("train", "test"):
        raise DesignError(f"role must be 'train' or 'test', got {role!r}")
    return [name for name in ALL_DESIGNS if DESIGN_SPECS[name].role == role]


def design_spec(name: str) -> DesignSpec:
    """Spec of a registered design."""
    key = name.upper()
    if key == "MULT":
        raise DesignError("use build_design('mult') for the multiplier workload")
    if key not in DESIGN_SPECS:
        raise DesignError(f"unknown design {name!r}; known: {ALL_DESIGNS} + ['mult']")
    return DESIGN_SPECS[key]


def build_design(name: str, seed: Optional[int] = None, use_cache: bool = True) -> Aig:
    """Build a benchmark design by name.

    ``name`` is one of the EXxx names or ``"mult"`` for the plain multiplier
    used in the proxy-correlation study (Fig. 1 / Table I).  The optional
    *seed* overrides the registered seed (useful for generating design
    variants in tests); the multiplier is fully deterministic, so passing a
    seed for it is rejected rather than silently ignored.  Results are
    cached per (name, effective seed) — passing the registered seed
    explicitly hits the same entry as passing ``None`` — and cloned on
    return so callers can mutate them freely.
    """
    key_name = name.upper() if name.lower() != "mult" else "mult"
    if key_name == "mult":
        if seed is not None:
            raise DesignError(
                "the 'mult' workload is deterministic and takes no seed; "
                "pass seed=None"
            )
        cache_key = ("mult", None)
        if use_cache and cache_key in _CACHE:
            return _CACHE[cache_key].clone()
        aig = multiplier_design(bits=7, name="mult")
    else:
        spec = design_spec(key_name)
        effective_seed = spec.seed if seed is None else seed
        cache_key = (key_name, effective_seed)
        if use_cache and cache_key in _CACHE:
            return _CACHE[cache_key].clone()
        if effective_seed != spec.seed:
            spec = DesignSpec(
                spec.name,
                spec.num_pis,
                spec.num_pos,
                spec.target_ands,
                spec.core,
                effective_seed,
                spec.role,
            )
        aig = build_from_spec(spec)
    if use_cache:
        _CACHE[cache_key] = aig.clone()
    return aig


def clear_design_cache() -> None:
    """Drop all cached design AIGs (mainly for tests)."""
    _CACHE.clear()
