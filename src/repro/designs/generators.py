"""Benchmark design generators.

The paper's experiments run on eight IWLS-2024 contest designs (EX00, EX02,
EX08, EX11, EX16, EX28, EX54, EX68).  Those files are not redistributable, so
this module synthesises stand-in designs with the same PI/PO counts and
comparable node-count scale (see DESIGN.md for the documented substitution).
Each design combines arithmetic cores (multipliers, adders, comparators) with
control logic and seeded mixing layers that bring it to its target size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.aig.graph import Aig
from repro.designs.arithmetic import (
    array_multiplier,
    equality,
    less_than,
    ripple_adder,
    ripple_subtractor,
)
from repro.designs.control import decoder, mux_tree, parity_tree, popcount, priority_encoder
from repro.designs.random_logic import grow_to_target
from repro.errors import DesignError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class DesignSpec:
    """Recipe for one synthetic benchmark design."""

    name: str
    num_pis: int
    num_pos: int
    target_ands: int
    core: str
    seed: int
    role: str = "train"

    def __post_init__(self) -> None:
        if self.num_pis < 4:
            raise DesignError(f"{self.name}: designs need at least 4 PIs")
        if self.num_pos < 1:
            raise DesignError(f"{self.name}: designs need at least 1 PO")


def multiplier_design(bits: int = 7, name: str = "mult") -> Aig:
    """A plain unsigned multiplier (the Fig. 1 / Table I workload)."""
    if bits < 2:
        raise DesignError("multiplier needs at least 2-bit operands")
    aig = Aig(name)
    a = [aig.add_pi(f"a{i}") for i in range(bits)]
    b = [aig.add_pi(f"b{i}") for i in range(bits)]
    product = array_multiplier(aig, a, b)
    for index, bit in enumerate(product):
        aig.add_po(bit, f"p{index}")
    return aig


def adder_design(bits: int = 8, name: str = "add") -> Aig:
    """A ripple-carry adder design."""
    aig = Aig(name)
    a = [aig.add_pi(f"a{i}") for i in range(bits)]
    b = [aig.add_pi(f"b{i}") for i in range(bits)]
    total, carry = ripple_adder(aig, a, b)
    for index, bit in enumerate(total):
        aig.add_po(bit, f"s{index}")
    aig.add_po(carry, "cout")
    return aig


def build_from_spec(spec: DesignSpec) -> Aig:
    """Build the AIG described by *spec* (deterministic for a given spec)."""
    rng = ensure_rng(spec.seed)
    aig = Aig(spec.name)
    pis = [aig.add_pi(f"x{i}") for i in range(spec.num_pis)]
    half = spec.num_pis // 2
    a, b = pis[:half], pis[half : 2 * half]

    candidates: List[int] = []
    if spec.core in ("mul", "mixed"):
        product = array_multiplier(aig, a, b)
        candidates.extend(product)
    if spec.core in ("add", "mixed"):
        total, carry = ripple_adder(aig, a, b)
        diff, borrow = ripple_subtractor(aig, a, b)
        candidates.extend(total)
        candidates.append(carry)
        candidates.extend(diff)
        candidates.append(borrow)
    if spec.core in ("control", "mixed"):
        candidates.append(less_than(aig, a, b))
        candidates.append(equality(aig, a, b))
        candidates.append(parity_tree(aig, pis))
        candidates.extend(priority_encoder(aig, pis[: min(8, len(pis))]))
        candidates.extend(popcount(aig, pis))
        select_bits = pis[: max(2, min(3, len(pis) // 4))]
        data = decoder(aig, select_bits)
        candidates.append(mux_tree(aig, data[: 1 << len(select_bits)], select_bits))

    if not candidates:
        raise DesignError(f"{spec.name}: unknown core kind {spec.core!r}")

    signals = list(pis) + candidates
    grown = grow_to_target(aig, signals, spec.target_ands, rng)
    # Signals created by the mixing layers (exclude the seed signals so PIs
    # are not XORed straight into outputs).
    layer_signals = grown[len(signals):] or list(candidates)

    # Primary outputs: partition every generated signal into num_pos groups
    # and XOR-reduce each group, so the whole grown structure stays in the
    # transitive fanin of the outputs (otherwise cleanup would throw most of
    # it away and the design would undershoot its target size).
    grouped_signals = list(layer_signals + candidates)
    rng.shuffle(grouped_signals)
    groups: List[List[int]] = [[] for _ in range(spec.num_pos)]
    for index, lit in enumerate(grouped_signals):
        groups[index % spec.num_pos].append(lit)
    for index, group in enumerate(groups):
        if not group:
            group = [candidates[index % len(candidates)]]
        aig.add_po(parity_tree(aig, group), f"y{index}")
    cleaned = aig.cleanup()
    return cleaned
