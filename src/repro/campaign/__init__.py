"""Campaign engine: resumable, process-parallel suite runs.

The paper's headline results are suite-level — every flow × optimizer ×
seed over the benchmark designs.  This package turns that sweep into a
first-class, declarative object:

* :class:`CampaignSpec` — the designs × flows × optimizers × evaluators ×
  seeds matrix, expanded into independent :class:`CampaignCell` units keyed
  by a deterministic content hash;
* :class:`ResultStore` — a crash-safe, append-only JSONL store so a killed
  campaign resumes by executing only the missing cells;
* :func:`run_campaign` / :func:`run_cells` — the process-parallel engine,
  bitwise-reproducible at any worker count thanks to per-cell
  :func:`~repro.utils.rng.spawn_rng` streams;
* :func:`campaign_report` — per-design medians, train/test splits, and
  stage-time breakdowns derived from a store.
"""

from repro.campaign.report import CampaignReport, campaign_report, design_role
from repro.campaign.runner import (
    CampaignStatus,
    EngineCell,
    EngineSummary,
    campaign_status,
    engine_cells,
    execute_cell,
    run_campaign,
    run_cells,
)
from repro.campaign.spec import (
    OPTIMIZERS,
    CampaignCell,
    CampaignSpec,
    cell_id_for,
    design_token,
)
from repro.campaign.store import TIMING_FIELDS, ResultStore, strip_timing

__all__ = [
    "OPTIMIZERS",
    "TIMING_FIELDS",
    "CampaignCell",
    "CampaignReport",
    "CampaignSpec",
    "CampaignStatus",
    "EngineCell",
    "EngineSummary",
    "ResultStore",
    "campaign_report",
    "campaign_status",
    "cell_id_for",
    "design_role",
    "design_token",
    "engine_cells",
    "execute_cell",
    "run_campaign",
    "run_cells",
    "strip_timing",
]
