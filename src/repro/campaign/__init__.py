"""Campaign engine: resumable, process-parallel, multi-machine suite runs.

The paper's headline results are suite-level — every flow × optimizer ×
seed over the benchmark designs.  This package turns that sweep into a
first-class, declarative object:

* :class:`CampaignSpec` — the designs × flows × optimizers × evaluators ×
  seeds matrix, expanded into independent :class:`CampaignCell` units keyed
  by a deterministic content hash;
* :class:`ResultStore` / :class:`ShardedResultStore` — crash-safe,
  append-only JSONL stores; the sharded variant keeps one single-writer
  file per worker/machine in a shared directory, merged on read, so
  several machines can chew on one spec (``repro campaign merge`` compacts
  the shards into one canonical file);
* :func:`run_campaign` / :func:`run_cells` — the process-parallel engine
  with a pluggable :class:`~repro.campaign.schedule.Scheduler` seam
  (``"matrix"`` legacy order, ``"cost"`` slowest-expected-first), appending
  records in canonical matrix order so stores are bitwise-reproducible —
  modulo timing fields — at any worker count, under either scheduler, and
  across shard layouts;
* :func:`campaign_report` / :func:`diff_stores` — per-design medians,
  train/test splits, stage-time breakdowns, and store-vs-baseline diffs
  with per-cell regressions highlighted.

Cells executing in pool workers share per-worker persistent
:class:`~repro.api.session.SynthesisSession` state (library index, mapper,
PPA cache) through :func:`repro.api.session.worker_session_pool`, keyed by
evaluation context so different libraries never share a session.
"""

from repro.campaign.report import (
    CampaignDiff,
    CampaignReport,
    CellDelta,
    campaign_report,
    design_role,
    diff_stores,
)
from repro.campaign.runner import (
    CampaignStatus,
    EngineCell,
    EngineSummary,
    campaign_status,
    engine_cells,
    execute_cell,
    execute_cell_with_policy,
    in_pooled_worker,
    run_campaign,
    run_cells,
)
from repro.campaign.schedule import (
    CostScheduler,
    MatrixScheduler,
    Scheduler,
    resolve_scheduler,
)
from repro.campaign.shards import (
    ShardedResultStore,
    default_shard_name,
    merge_store,
    open_store,
)
from repro.campaign.spec import (
    OPTIMIZERS,
    CampaignCell,
    CampaignSpec,
    cell_id_for,
    design_token,
)
from repro.campaign.store import (
    TIMING_FIELDS,
    CellResultStore,
    ResultStore,
    canonical_records,
    compact_store,
    strip_timing,
)

__all__ = [
    "OPTIMIZERS",
    "TIMING_FIELDS",
    "CampaignCell",
    "CampaignDiff",
    "CampaignReport",
    "CampaignSpec",
    "CampaignStatus",
    "CellDelta",
    "CellResultStore",
    "CostScheduler",
    "EngineCell",
    "EngineSummary",
    "MatrixScheduler",
    "ResultStore",
    "Scheduler",
    "ShardedResultStore",
    "campaign_report",
    "campaign_status",
    "canonical_records",
    "cell_id_for",
    "compact_store",
    "default_shard_name",
    "design_role",
    "design_token",
    "diff_stores",
    "engine_cells",
    "execute_cell",
    "execute_cell_with_policy",
    "in_pooled_worker",
    "merge_store",
    "open_store",
    "resolve_scheduler",
    "run_campaign",
    "run_cells",
    "strip_timing",
]
