"""Campaign engine: resumable, process-parallel, multi-machine suite runs.

The paper's headline results are suite-level — every flow × optimizer ×
seed over the benchmark designs.  This package turns that sweep into a
first-class, declarative object:

* :class:`CampaignSpec` — the designs × flows × optimizers × evaluators ×
  seeds matrix, expanded into independent :class:`CampaignCell` units keyed
  by a deterministic content hash;
* :class:`ResultStore` / :class:`ShardedResultStore` — crash-safe,
  append-only JSONL stores; the sharded variant keeps one single-writer
  file per worker/machine in a shared directory, merged on read, so
  several machines can chew on one spec (``repro campaign merge`` compacts
  the shards into one canonical file);
* :func:`run_campaign` / :func:`run_cells` — the process-parallel engine
  with a pluggable :class:`~repro.campaign.schedule.Scheduler` seam
  (``"matrix"`` legacy order, ``"cost"`` slowest-expected-first), appending
  records in canonical matrix order so stores are bitwise-reproducible —
  modulo timing fields — at any worker count, under either scheduler, and
  across shard layouts;
* :func:`campaign_report` / :func:`diff_stores` — per-design medians,
  train/test splits, stage-time breakdowns, and store-vs-baseline diffs
  with per-cell regressions highlighted.

Failure handling is part of the engine contract: TTL'd cell leases with
work stealing (:class:`LeaseManager`) let concurrent writers split one spec
with zero duplicate executions, poison cells are quarantined after a
configurable failure count (:func:`requeue_cells` re-arms them), and
out-of-order completed records are journaled durably
(:class:`ProgressJournal`) so crashes re-execute nothing.  The
:mod:`repro.devtools.faults` harness injects deterministic failures at the
engine's fault sites to prove all of it converges to the fault-free store.

Cells executing in pool workers share per-worker persistent
:class:`~repro.api.session.SynthesisSession` state (library index, mapper,
PPA cache) through :func:`repro.api.session.worker_session_pool`, keyed by
evaluation context so different libraries never share a session.
"""

from repro.campaign.leases import Lease, LeaseManager, lease_manager_for
from repro.campaign.progress import ProgressJournal, progress_journal_for
from repro.campaign.quarantine import (
    DEFAULT_QUARANTINE_AFTER,
    effective_failures,
    mark_quarantined,
    quarantine_markers,
    quarantined_ids,
    requeue_cells,
)
from repro.campaign.report import (
    CampaignDiff,
    CampaignReport,
    CellDelta,
    campaign_report,
    design_role,
    diff_stores,
)
from repro.campaign.runner import (
    CampaignStatus,
    EngineCell,
    EngineSummary,
    campaign_status,
    engine_cells,
    execute_cell,
    execute_cell_with_policy,
    in_pooled_worker,
    run_campaign,
    run_cells,
)
from repro.campaign.schedule import (
    CostScheduler,
    MatrixScheduler,
    Scheduler,
    resolve_scheduler,
)
from repro.campaign.shards import (
    ShardedResultStore,
    default_shard_name,
    merge_store,
    open_store,
)
from repro.campaign.spec import (
    OPTIMIZERS,
    CampaignCell,
    CampaignSpec,
    cell_id_for,
    design_token,
)
from repro.campaign.store import (
    TIMING_FIELDS,
    CellResultStore,
    ResultStore,
    canonical_records,
    compact_store,
    strip_timing,
)
from repro.campaign.warmstart import (
    costs_path_for,
    ground_truth_evaluations,
    load_costs,
    merge_costs,
    save_snapshot,
    seed_session,
    warmstart_dir_for,
)

__all__ = [
    "DEFAULT_QUARANTINE_AFTER",
    "OPTIMIZERS",
    "TIMING_FIELDS",
    "CampaignCell",
    "CampaignDiff",
    "CampaignReport",
    "CampaignSpec",
    "CampaignStatus",
    "CellDelta",
    "CellResultStore",
    "CostScheduler",
    "EngineCell",
    "EngineSummary",
    "Lease",
    "LeaseManager",
    "MatrixScheduler",
    "ProgressJournal",
    "ResultStore",
    "Scheduler",
    "ShardedResultStore",
    "campaign_report",
    "campaign_status",
    "canonical_records",
    "cell_id_for",
    "compact_store",
    "costs_path_for",
    "default_shard_name",
    "design_role",
    "design_token",
    "diff_stores",
    "effective_failures",
    "engine_cells",
    "execute_cell",
    "ground_truth_evaluations",
    "load_costs",
    "merge_costs",
    "execute_cell_with_policy",
    "in_pooled_worker",
    "lease_manager_for",
    "mark_quarantined",
    "merge_store",
    "open_store",
    "progress_journal_for",
    "quarantine_markers",
    "quarantined_ids",
    "requeue_cells",
    "resolve_scheduler",
    "run_campaign",
    "run_cells",
    "save_snapshot",
    "seed_session",
    "strip_timing",
    "warmstart_dir_for",
]
