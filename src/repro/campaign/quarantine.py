"""Poison-cell quarantine: stop retrying cells that fail every writer.

The engine retries failed cells on every resume — correct for transient
failures, pathological for a *poison* cell (one that crashes or times out
its worker deterministically): each resume of each writer re-executes it,
so one bad cell pins a worker slot per run forever.

Quarantine turns the retry loop into a bounded one.  A cell's **failed
attempts** are counted across the whole store — every ``status: "error"``
record any writer appended (timeouts included: they carry
``timed_out: true`` on an error record) plus the crash markers the lease
layer appends when it reclaims a dead writer's cell.  Once the count
reaches the configured threshold, the detecting writer appends a
``status: "quarantined"`` marker record, and every lease-fabric run skips
the cell from then on — the campaign completes around it, and ``repro
campaign status`` / ``report`` surface it.

``repro campaign requeue`` clears quarantine by appending a
``status: "requeued"`` marker carrying ``cleared: <count>`` — the number of
failures it forgives.  The authoritative predicate is therefore a pure
function of the store's record *multiset*::

    quarantined(cell)  ⇔  errors(cell) − max(cleared markers)  ≥  threshold

which is independent of shard scan order, so concurrent writers on a
sharded store always agree on which cells are quarantined, no matter whose
marker records land where.  Marker records themselves never count as
failures, and a successful record ends the question entirely (completed
cells are never quarantined).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.campaign.store import CellResultStore

#: threshold used by the CLI when ``--quarantine-after`` is not given.
DEFAULT_QUARANTINE_AFTER = 3

#: record status marking a cell as quarantined (skipped by lease-fabric runs).
QUARANTINED_STATUS = "quarantined"

#: record status clearing a quarantine (the cell runs again).
REQUEUED_STATUS = "requeued"

#: statuses that are fabric control markers, not execution outcomes.
CONTROL_STATUSES = (QUARANTINED_STATUS, REQUEUED_STATUS)


def effective_failures(store: CellResultStore) -> Dict[str, int]:
    """Uncleared failed-attempt count per cell id, across every writer.

    Counts ``status: "error"`` records (worker exceptions, timeouts, and
    the lease layer's crash markers) and subtracts the largest
    ``cleared`` value among the cell's requeue markers.
    """
    errors: Dict[str, int] = {}
    cleared: Dict[str, int] = {}
    for record in store.records:
        cell_id = str(record.get("cell_id", ""))
        status = record.get("status")
        if status == "error":
            errors[cell_id] = errors.get(cell_id, 0) + 1
        elif status == REQUEUED_STATUS:
            amount = record.get("cleared")
            if isinstance(amount, int) and amount > cleared.get(cell_id, 0):
                cleared[cell_id] = amount
    return {
        cell_id: count - cleared.get(cell_id, 0)
        for cell_id, count in errors.items()
        if count - cleared.get(cell_id, 0) > 0
    }


def quarantined_ids(
    store: CellResultStore, threshold: Optional[int]
) -> Set[str]:
    """Cells at/over the failure *threshold* with no successful record."""
    if not threshold or threshold <= 0:
        return set()
    completed = store.completed_ids()
    return {
        cell_id
        for cell_id, failures in effective_failures(store).items()
        if failures >= threshold and cell_id not in completed
    }


def quarantine_markers(store: CellResultStore) -> List[Dict[str, object]]:
    """Cells whose winning record is an (uncleared) quarantine marker.

    This is the *display* view (``campaign status`` / ``report``); the
    skip decision itself always re-derives from :func:`quarantined_ids`.
    """
    markers = []
    for cell_id, record in sorted(store.latest().items()):
        if record.get("status") == QUARANTINED_STATUS:
            markers.append(record)
    return markers


def mark_quarantined(
    store: CellResultStore, cell_id: str, failures: int, error: object = None
) -> Dict[str, object]:
    """Append the visible ``status: "quarantined"`` marker for *cell_id*."""
    record: Dict[str, object] = {
        "cell_id": cell_id,
        "status": QUARANTINED_STATUS,
        "failed_attempts": failures,
    }
    if error is not None:
        record["error"] = error
    store.append(record)
    return record


def requeue_cells(
    store: CellResultStore,
    cell_ids: Optional[Iterable[str]] = None,
    threshold: int = DEFAULT_QUARANTINE_AFTER,
) -> List[str]:
    """Clear quarantine for *cell_ids* (default: every quarantined cell).

    Appends one ``status: "requeued"`` marker per cell, forgiving all of
    its current failures, and returns the cleared cell ids (sorted).  Ids
    that are not currently quarantined are left untouched — requeueing is
    idempotent and never manufactures markers for healthy cells.
    """
    quarantined = quarantined_ids(store, threshold)
    targets = sorted(quarantined if cell_ids is None else set(cell_ids) & quarantined)
    failures = effective_failures(store)
    for cell_id in targets:
        store.append(
            {
                "cell_id": cell_id,
                "status": REQUEUED_STATUS,
                "cleared": failures.get(cell_id, 0),
            }
        )
    return targets
