"""Declarative campaign specifications and their expansion into cells.

A :class:`CampaignSpec` describes a *suite-level* run — the cross product of
designs × flows × optimizers × evaluator kinds × seeds that the paper's
headline tables sweep — and expands it into independent
:class:`CampaignCell` units of work.  Each cell is identified by a
deterministic content hash of everything that affects its result (design
identity, flow, optimizer, evaluator kind, seed, iteration budget, cost
weights, model paths, and the library/mapping-options context), so a
crash-safe result store can skip completed cells on resume and two runs of
the same matrix always agree on which cell is which.

Designs are ``DesignLike``: a registered benchmark name (``EX00`` … ``EX68``,
``mult``) or a path to an external ``.aag``/``.aig``/``.bench``/``.blif``/
``.v`` netlist.  File designs are fingerprinted by content, so editing the
file changes the cell id and invalidates any stale results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import CampaignError

#: search algorithms a campaign cell can drive (all share the flow's cost).
OPTIMIZERS: Tuple[str, ...] = ("sa", "greedy", "genetic")

#: file suffixes accepted as external design references.
DESIGN_FILE_SUFFIXES: Tuple[str, ...] = (".aag", ".aig", ".bench", ".blif", ".v")

DesignRef = Union[str, Path]


def canonical_name(name: str) -> str:
    """Normalise a flow/optimizer/evaluator name ("-" and "_" match)."""
    return name.strip().lower().replace("-", "_")


def cell_id_for(identity: Mapping[str, object]) -> str:
    """Deterministic id of a cell: SHA-256 over its canonical identity JSON."""
    material = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:20]


def design_token(design: DesignRef) -> Tuple[str, str]:
    """Resolve a design reference to a ``(token, fingerprint)`` pair.

    Registry names normalise to their canonical form and fingerprint as
    ``registry:<NAME>``; external netlist files keep their path as the token
    and fingerprint by file content, opening the campaign runner to
    arbitrary third-party designs.
    """
    text = str(design)
    suffix = Path(text).suffix.lower()
    if suffix in DESIGN_FILE_SUFFIXES:
        path = Path(text)
        if not path.is_file():
            raise CampaignError(f"design file not found: {path}")
        digest = hashlib.sha256(path.read_bytes()).hexdigest()[:16]
        return str(path), f"file:{digest}"
    name = "mult" if text.lower() == "mult" else text.upper()
    if name != "mult":
        from repro.designs.registry import design_spec

        design_spec(name)  # raises DesignError for unknown names
    return name, f"registry:{name}"


def model_fingerprint(model: object) -> Optional[str]:
    """Content identity of a trained model (or model file) for cell ids.

    A path is hashed by file content — retraining a model in place must
    invalidate the cells that used it, exactly like editing a design file.
    A model object is hashed through its JSON serialisation when it is a
    GBDT; other model types fall back to their class name, which at least
    separates cells across model implementations.
    """
    if model is None:
        return None
    if isinstance(model, (str, Path)):
        path = Path(model)
        if path.is_file():
            return f"file:{hashlib.sha256(path.read_bytes()).hexdigest()[:16]}"
        return f"path:{path}"
    try:
        from repro.ml.model_io import gbdt_to_dict

        payload = json.dumps(gbdt_to_dict(model), sort_keys=True)
        return f"gbdt:{hashlib.sha256(payload.encode('utf-8')).hexdigest()[:16]}"
    # repro-lint: ignore[C3] -- the fallback fingerprint IS the record: an
    # unserialisable model is identified by its type, which is all the cache
    # key needs to stay sound.
    except Exception:
        return f"type:{type(model).__module__}.{type(model).__qualname__}"


def default_context_fingerprint() -> str:
    """Identity of the default library + mapper configuration.

    Folded into every cell id so results computed against one cell library
    can never satisfy a campaign run against another.
    """
    from repro.library.sky130_lite import load_sky130_lite

    return f"{load_sky130_lite().fingerprint()}|default-mapping"


@dataclass(frozen=True)
class CampaignCell:
    """One independent unit of campaign work.

    ``design`` is the canonical design token (registry name or file path);
    ``design_fingerprint`` pins the design content.  The remaining fields
    mirror :class:`CampaignSpec` for a single matrix point.
    """

    design: str
    design_fingerprint: str
    flow: str
    optimizer: str
    evaluator: str
    seed: int
    iterations: int
    delay_weight: float
    area_weight: float
    context: str
    delay_model: Optional[str] = None
    area_model: Optional[str] = None
    delay_model_fingerprint: Optional[str] = None
    area_model_fingerprint: Optional[str] = None

    def identity(self) -> Dict[str, object]:
        """Everything that affects this cell's result, JSON-canonical."""
        return {
            "design": self.design,
            "design_fingerprint": self.design_fingerprint,
            "flow": self.flow,
            "optimizer": self.optimizer,
            "evaluator": self.evaluator,
            "seed": self.seed,
            "iterations": self.iterations,
            "delay_weight": self.delay_weight,
            "area_weight": self.area_weight,
            "context": self.context,
            "delay_model": self.delay_model,
            "area_model": self.area_model,
            "delay_model_fingerprint": self.delay_model_fingerprint,
            "area_model_fingerprint": self.area_model_fingerprint,
        }

    @property
    def cell_id(self) -> str:
        """Deterministic content hash identifying this cell."""
        return cell_id_for(self.identity())

    def payload(self) -> Dict[str, object]:
        """The picklable work order handed to the cell worker."""
        payload = self.identity()
        payload["cell_id"] = self.cell_id
        return payload


@dataclass
class CampaignSpec:
    """The declarative matrix of a suite run."""

    designs: Sequence[DesignRef]
    flows: Sequence[str] = ("baseline",)
    optimizers: Sequence[str] = ("sa",)
    evaluators: Sequence[str] = ("cached",)
    seeds: Sequence[int] = (0,)
    iterations: int = 12
    delay_weight: float = 1.0
    area_weight: float = 1.0
    delay_model: Optional[str] = None
    area_model: Optional[str] = None
    #: library/options fingerprint; resolved lazily when left empty.
    context: str = field(default="")

    def validate(self) -> None:
        """Reject empty or unknown matrix axes before any work starts."""
        from repro.api.registry import available_evaluators, available_flows

        if not self.designs:
            raise CampaignError("campaign needs at least one design")
        if not self.flows or not self.optimizers or not self.evaluators:
            raise CampaignError("flows, optimizers, and evaluators must be non-empty")
        if not self.seeds:
            raise CampaignError("campaign needs at least one seed")
        known_flows = set(available_flows())
        for flow in self.flows:
            key = canonical_name(flow)
            if key not in known_flows:
                raise CampaignError(
                    f"unknown flow {flow!r}; available: {sorted(known_flows)}"
                )
            if key in ("ml", "hybrid") and not self.delay_model:
                raise CampaignError(
                    f"flow {flow!r} needs a trained delay model (delay_model=...)"
                )
        for optimizer in self.optimizers:
            if canonical_name(optimizer) not in OPTIMIZERS:
                raise CampaignError(
                    f"unknown optimizer {optimizer!r}; available: {list(OPTIMIZERS)}"
                )
        known_evaluators = set(available_evaluators())
        for evaluator in self.evaluators:
            if canonical_name(evaluator) not in known_evaluators:
                raise CampaignError(
                    f"unknown evaluator {evaluator!r}; available: {sorted(known_evaluators)}"
                )
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise CampaignError(f"seeds must be integers, got {seed!r}")
        if self.iterations < 1:
            raise CampaignError("iterations must be at least 1")

    def expand(self) -> List[CampaignCell]:
        """Expand the matrix into its independent cells (validated, deduped)."""
        self.validate()
        context = self.context or default_context_fingerprint()
        tokens = [design_token(design) for design in self.designs]
        delay_model_fp = model_fingerprint(self.delay_model)
        area_model_fp = model_fingerprint(self.area_model)
        cells: List[CampaignCell] = []
        seen: set = set()
        for token, fingerprint in tokens:
            for flow in self.flows:
                for optimizer in self.optimizers:
                    for evaluator in self.evaluators:
                        for seed in self.seeds:
                            cell = CampaignCell(
                                design=token,
                                design_fingerprint=fingerprint,
                                flow=canonical_name(flow),
                                optimizer=canonical_name(optimizer),
                                evaluator=canonical_name(evaluator),
                                seed=seed,
                                iterations=self.iterations,
                                delay_weight=self.delay_weight,
                                area_weight=self.area_weight,
                                context=context,
                                delay_model=self.delay_model,
                                area_model=self.area_model,
                                delay_model_fingerprint=delay_model_fp,
                                area_model_fingerprint=area_model_fp,
                            )
                            if cell.cell_id in seen:
                                continue
                            seen.add(cell.cell_id)
                            cells.append(cell)
        return cells
