"""The campaign execution engine: resumable, process-parallel cell runs.

The engine is deliberately generic: a cell is just a deterministic id, a
fully-qualified worker function (``"package.module:function"``), and a
picklable payload.  :func:`run_cells` skips every cell whose id already has
a successful record in the result store (single-file
:class:`~repro.campaign.store.ResultStore` or sharded
:class:`~repro.campaign.shards.ShardedResultStore`), hands the remainder to
a pluggable :class:`~repro.campaign.schedule.Scheduler` for submission
ordering, runs them — across a process pool when asked — and appends each
outcome as it lands, so a killed run resumes by executing only the missing
cells.

Records are appended in **canonical matrix order** regardless of the
scheduler's submission order or which worker finishes first, and each cell
derives all of its randomness from its own id and seed (via non-consuming
:func:`repro.utils.rng.spawn_rng` streams), so single-file store contents
are identical — modulo wall-clock fields — at any worker count and under
any scheduler, and sharded runs agree on their canonical view.

Failure is a first-class input to the engine, not an afterthought:

* ``lease_ttl_s`` turns a sharded run into a **fabric writer** that claims
  cells through :class:`~repro.campaign.leases.LeaseManager` — concurrent
  writers split the pending set with zero duplicate executions, and a
  ``kill -9``'d writer's cells are stolen by survivors after the TTL.
* ``quarantine_after`` bounds the retry loop for **poison cells**: a cell
  with that many uncleared failed attempts across all writers (timeouts and
  reclaim crash markers included) is marked ``status: "quarantined"`` and
  skipped until ``repro campaign requeue`` clears it.
* Out-of-order completed records buffered for canonical order are journaled
  durably (:class:`~repro.campaign.progress.ProgressJournal`) and folded
  back in on resume, so a crash mid-pool re-executes nothing.
* :func:`repro.devtools.faults.fault_hook` sites (``cell``, ``flush``, and
  the stores' ``store_append``) let the chaos differential suite inject
  deterministic failures and assert the whole fabric converges to the
  fault-free store.

On top of the generic engine, :func:`run_campaign` executes a
:class:`~repro.campaign.spec.CampaignSpec` with the standard optimize-cell
worker, and :func:`campaign_status` reports completed/failed/pending counts
for a spec against a store.  The experiment modules (Fig. 2, Fig. 5,
Table IV, the optimizer comparison, the learning curve) drive their own
cell kinds through the same engine.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.campaign.leases import LeaseManager, lease_manager_for
from repro.campaign.progress import ProgressJournal, progress_journal_for
from repro.campaign.quarantine import (
    effective_failures,
    mark_quarantined,
    quarantine_markers,
    quarantined_ids,
)
from repro.campaign.schedule import (
    SchedulerLike,
    _cell_budget,
    _cost_group,
    resolve_scheduler,
)
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CellResultStore
from repro.campaign.warmstart import (
    WARMSTART_PAYLOAD_KEY,
    costs_path_for,
    load_costs,
    merge_costs,
    warmstart_dir_for,
)
from repro.devtools.faults import fault_hook
from repro.errors import CampaignError

#: worker function used for standard campaign optimize cells.
OPTIMIZE_CELL_FN = "repro.campaign.cells:run_optimize_cell"

#: set to "1" in pool-worker processes so cell code can detect that it is
#: already running under the engine's process pool (the nested-pool guard).
POOLED_ENV = "REPRO_CAMPAIGN_POOLED"


def in_pooled_worker() -> bool:
    """Whether this process is a campaign-engine pool worker."""
    return os.environ.get(POOLED_ENV) == "1"


@dataclass(frozen=True)
class EngineCell:
    """One schedulable unit: id + worker function + picklable payload."""

    cell_id: str
    fn: str
    payload: Dict[str, Any]


@dataclass
class EngineSummary:
    """Outcome of one :func:`run_cells` invocation."""

    total: int
    skipped: int
    executed: int
    failed: List[str] = field(default_factory=list)
    #: cells whose completed records were folded back from a progress
    #: journal instead of re-executing (crash recovery).
    recovered: int = 0
    #: cells skipped (or newly marked) as quarantined poison cells.
    quarantined: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every executed cell succeeded."""
        return not self.failed


def _resolve_fn(path: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    module_name, _, func_name = path.partition(":")
    if not module_name or not func_name:
        raise CampaignError(f"cell fn must be 'module:function', got {path!r}")
    module = importlib.import_module(module_name)
    fn = getattr(module, func_name, None)
    if not callable(fn):
        raise CampaignError(f"cell fn {path!r} does not resolve to a callable")
    return fn


def execute_cell(cell_id: str, fn_path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell (in whatever process this is) and return its record.

    Worker exceptions become ``status: "error"`` records rather than
    propagating, so one bad cell never aborts the rest of a campaign.
    """
    # repro-lint: ignore[D4] -- this IS the timing plumbing: the elapsed
    # time lands in "cell_seconds", a TIMING_FIELDS member every comparison
    # strips; Timer is not importable in spawn-context pool workers before
    # _pool_worker_init runs.
    start = time.perf_counter()
    try:
        # Fault site "cell": inside the try, so an injected transient error
        # becomes an ordinary error record; an injected crash kills this
        # (worker) process; an injected hang overruns the cell timeout.
        fault_hook("cell", key=cell_id)
        result = _resolve_fn(fn_path)(payload) or {}
        record: Dict[str, Any] = {"cell_id": cell_id, "status": "ok"}
        record.update(result)
    except Exception as exc:
        record = {
            "cell_id": cell_id,
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
        }
    record["cell_seconds"] = time.perf_counter() - start  # repro-lint: ignore[D4] -- see above
    return record


def _timeout_child(conn, cell_id: str, fn_path: str, payload: Dict[str, Any]) -> None:
    """Subprocess entry point for timeout-enforced cell execution."""
    try:
        record = execute_cell(cell_id, fn_path, payload)
    except BaseException as exc:  # execute_cell already catches Exception
        record = {
            "cell_id": cell_id,
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
        }
    try:
        conn.send(record)
    finally:
        conn.close()


def _execute_with_timeout(
    cell_id: str, fn_path: str, payload: Dict[str, Any], timeout_s: float
) -> Dict[str, Any]:
    """Run one cell in a child process, killing it after *timeout_s* seconds.

    A dedicated (spawned) child per cell is the only way to actually free a
    slot pinned by a hung worker — threads cannot be killed, and a pool
    worker stuck in C code ignores everything short of SIGKILL.  Where
    subprocesses are unavailable (sandboxes, or a daemonic pool worker that
    may not fork) the cell runs in-process and the timeout is best-effort
    unenforced — results are identical either way, only the hang protection
    is lost.
    """
    import multiprocessing

    # repro-lint: ignore[D4] -- feeds the "cell_seconds" TIMING_FIELDS
    # member (stripped by every comparison), same as execute_cell.
    start = time.perf_counter()
    try:
        # spawn, not fork: the service calls this from worker threads, and
        # forking a multi-threaded process can deadlock the child.
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_timeout_child, args=(child_conn, cell_id, fn_path, payload)
        )
        proc.start()
    # repro-lint: ignore[C3] -- spawn-unavailable platforms fall back to
    # in-process execution; the cell still runs and records its own status.
    except Exception:
        return execute_cell(cell_id, fn_path, payload)
    child_conn.close()
    try:
        if parent_conn.poll(timeout_s):
            try:
                record: Dict[str, Any] = parent_conn.recv()
            except (EOFError, OSError):
                record = {
                    "cell_id": cell_id,
                    "status": "error",
                    "error": "WorkerDied: cell worker exited without a result",
                }
        else:
            record = {
                "cell_id": cell_id,
                "status": "error",
                "error": f"TimeoutError: cell exceeded timeout_s={timeout_s}",
                "timed_out": True,
            }
    finally:
        if proc.is_alive():
            proc.terminate()
            proc.join(5.0)
            if proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
                proc.kill()
                proc.join(5.0)
        else:
            proc.join()
        parent_conn.close()
    record.setdefault("cell_seconds", time.perf_counter() - start)  # repro-lint: ignore[D4] -- see above
    return record


def _retry_jitter(cell_id: str, attempt: int) -> float:
    """Deterministic backoff jitter in ``[0.5, 1.5)``, keyed by cell id.

    Pool workers retrying simultaneously-failed cells would otherwise sleep
    in lockstep and hammer whatever shared resource failed them, all at the
    same instant; hashing the cell id (PYTHONHASHSEED-independent) spreads
    the retries while keeping every run of the same cell identical.
    """
    material = f"{cell_id}:{attempt}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return 0.5 + int.from_bytes(digest[:8], "big") / float(1 << 64)


def execute_cell_with_policy(
    cell_id: str,
    fn_path: str,
    payload: Dict[str, Any],
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
) -> Dict[str, Any]:
    """Run one cell under an opt-in timeout/retry policy.

    With *timeout_s* set, the cell runs in a dedicated child process that is
    terminated at the deadline, so a hung cell records an ``error`` result
    (with ``timed_out: true``) and frees its slot instead of pinning a
    worker forever.  A failing cell is re-executed up to *retries* times
    with exponential backoff (``retry_backoff_s * 2**attempt``, jittered
    per cell id by :func:`_retry_jitter`); when any retry policy is active
    the returned record carries an ``attempts`` count, and if any attempt
    failed, an ``attempt_errors`` list preserving every failed attempt's
    error in order — so a flaky-then-ok cell is distinguishable from a
    clean one, and a hard failure shows its full history instead of only
    the last message.  With the default arguments this is exactly
    :func:`execute_cell`.
    """
    if timeout_s is not None and timeout_s <= 0:
        raise CampaignError("timeout_s must be positive (or None to disable)")
    if retries < 0:
        raise CampaignError("retries must be >= 0")
    if retry_backoff_s < 0:
        raise CampaignError("retry_backoff_s must be >= 0")
    attempt = 0
    attempt_errors: List[str] = []
    while True:
        if timeout_s is None:
            record = execute_cell(cell_id, fn_path, payload)
        else:
            record = _execute_with_timeout(cell_id, fn_path, payload, timeout_s)
        if record.get("status") != "ok":
            attempt_errors.append(str(record.get("error", "")))
        if record.get("status") == "ok" or attempt >= retries:
            if retries:
                record["attempts"] = attempt + 1
                if attempt_errors:
                    record["attempt_errors"] = list(attempt_errors)
            return record
        backoff = retry_backoff_s * (2.0**attempt) * _retry_jitter(cell_id, attempt)
        if backoff > 0:
            time.sleep(backoff)
        attempt += 1


def _pool_worker_init() -> None:
    """Mark pool workers so nested-parallelism guards can trigger."""
    os.environ[POOLED_ENV] = "1"


class _CanonicalAppender:
    """Flushes completed records to the store in canonical matrix order.

    Cells may *execute* in any order (cost scheduling, pool racing); the
    store layout must not depend on that, so records are buffered until
    every earlier-in-matrix record has landed.  With a *journal*, each
    successful record that has to wait is appended durably the moment it
    lands, and :meth:`fold_journal` replays those records on resume — so a
    crash under a cost-scheduled pool (where the buffered region is large)
    re-executes nothing, while the store layout stays identical to an
    uninterrupted run.  A record is only dropped from the buffer once the
    store accepted it, so a failing ``append`` propagates without losing
    anything.
    """

    def __init__(
        self,
        canonical: Sequence[EngineCell],
        record_result: Callable[[Dict[str, Any]], None],
        journal: Optional[ProgressJournal] = None,
    ) -> None:
        self._order = [cell.cell_id for cell in canonical]
        self._record_result = record_result
        self._journal = journal
        self._pending: Dict[str, Dict[str, Any]] = {}
        self._next = 0
        self.added: set = set()
        #: cells satisfied from the journal rather than executed.
        self.recovered: set = set()

    def add(self, record: Dict[str, Any], from_journal: bool = False) -> None:
        cell_id = str(record["cell_id"])
        self.added.add(cell_id)
        if from_journal:
            self.recovered.add(cell_id)
        self._pending[cell_id] = record
        while self._next < len(self._order):
            ready = self._pending.get(self._order[self._next])
            if ready is None:
                break
            self._record_result(ready)
            del self._pending[self._order[self._next]]
            self._next += 1
        if (
            self._journal is not None
            and not from_journal
            and cell_id in self._pending
            and record.get("status") == "ok"
        ):
            # The record is waiting for earlier-in-matrix cells: make it
            # durable now so a crash does not force its re-execution.
            self._journal.append(record)

    def fold_journal(self, eligible: Set[str]) -> int:
        """Replay journalled records for *eligible* cells; returns the count."""
        if self._journal is None:
            return 0
        folded = 0
        for record in self._journal.load():
            cell_id = str(record["cell_id"])
            if cell_id in eligible and cell_id not in self.added:
                self.add(record, from_journal=True)
                folded += 1
        return folded

    @property
    def drained(self) -> bool:
        return self._next == len(self._order)


def _run_pool(
    scheduled: Sequence[EngineCell],
    workers: int,
    appender: _CanonicalAppender,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
) -> List[EngineCell]:
    """Execute *scheduled* on a process pool; return cells that did not land.

    Pool-level failures (no subprocess support, broken pool mid-run) are
    swallowed — the caller re-runs the leftovers serially, so results never
    depend on whether a pool was actually available.  Store failures while
    flushing a record are *not* swallowed: a store that cannot record is
    fatal to the campaign, and nothing buffered is lost on the way out.
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=workers, initializer=_pool_worker_init)
    # repro-lint: ignore[C3] -- no pool means nothing ran: every cell is
    # returned unexecuted and the caller runs them serially.
    except Exception:
        return list(scheduled)
    with pool:
        futures = []
        try:
            for cell in scheduled:
                futures.append(
                    (
                        pool.submit(
                            execute_cell_with_policy,
                            cell.cell_id,
                            cell.fn,
                            cell.payload,
                            timeout_s=timeout_s,
                            retries=retries,
                            retry_backoff_s=retry_backoff_s,
                        ),
                        cell,
                    )
                )
        # repro-lint: ignore[C3] -- submission failure is recovered, not
        # swallowed: submitted futures are still collected, the remainder
        # is re-run serially by the caller.
        except Exception:
            # Submission failed (broken/unsupported pool); whatever was
            # submitted is still collected below, the rest runs serially.
            pass
        # Collect in submission order; the appender re-serialises the
        # store layout to canonical matrix order either way.
        for future, cell in futures:
            try:
                record = future.result()
            # repro-lint: ignore[C3] -- a crashed worker leaves its cell in
            # the unexecuted remainder, which re-runs serially with per-cell
            # error recording; nothing is lost.
            except Exception:
                continue
            appender.add(record)
    return [cell for cell in scheduled if cell.cell_id not in appender.added]


def _ordered(
    policy, to_run: Sequence[EngineCell], store: CellResultStore
) -> List[EngineCell]:
    """Apply *policy* to *to_run*, enforcing the permutation contract."""
    scheduled = policy.order(list(to_run), store)
    if sorted(cell.cell_id for cell in scheduled) != sorted(
        cell.cell_id for cell in to_run
    ):
        raise CampaignError(
            f"scheduler {type(policy).__name__} must return a permutation of "
            "the pending cells"
        )
    return scheduled


def _execute_batch(
    batch: Sequence[EngineCell],
    store: CellResultStore,
    appender: _CanonicalAppender,
    policy,
    max_workers: int,
    timeout_s: Optional[float],
    retries: int,
    retry_backoff_s: float,
) -> int:
    """Run one canonical-order batch (pool first, serial leftovers).

    The appender may already hold journal-recovered records for some of the
    batch; only the rest execute.  Returns the number of cells executed.
    """
    to_run = [cell for cell in batch if cell.cell_id not in appender.recovered]
    scheduled = _ordered(policy, to_run, store)
    leftover: Sequence[EngineCell] = to_run
    if max_workers > 1 and len(scheduled) > 1:
        pooled_leftover = _run_pool(
            scheduled,
            min(max_workers, len(scheduled)),
            appender,
            timeout_s=timeout_s,
            retries=retries,
            retry_backoff_s=retry_backoff_s,
        )
        leftover_ids = {cell.cell_id for cell in pooled_leftover}
        # Serial fallback keeps canonical order so appends stay prompt.
        leftover = [cell for cell in to_run if cell.cell_id in leftover_ids]
    for cell in leftover:
        appender.add(
            execute_cell_with_policy(
                cell.cell_id,
                cell.fn,
                cell.payload,
                timeout_s=timeout_s,
                retries=retries,
                retry_backoff_s=retry_backoff_s,
            )
        )
    if batch and not appender.drained:
        raise CampaignError("engine bug: not every pending cell produced a record")
    return len(to_run)


def _run_leased(
    pending: Sequence[EngineCell],
    store: CellResultStore,
    manager: LeaseManager,
    policy,
    record_result: Callable[[Dict[str, Any]], None],
    journal: Optional[ProgressJournal],
    max_workers: int,
    timeout_s: Optional[float],
    retries: int,
    retry_backoff_s: float,
    quarantine_after: Optional[int],
    poll_s: float,
    newly_quarantined: List[str],
) -> Dict[str, int]:
    """Drain *pending* as one writer of a multi-writer lease fabric.

    Cells are claimed in rounds of a few pool-widths, so concurrent writers
    split the work dynamically instead of one greedy writer hoarding the
    whole pending list.  Cells held by a *live* writer are left alone and
    re-polled; cells whose lease expired (dead writer) are stolen, charged
    one crash-marker failure, and executed here.  The loop ends when every
    pending cell is completed, quarantined, or failed by some writer this
    run — an error landed by any writer is not retried again within the
    same invocation, mirroring the single-writer engine's one-execution-
    per-cell-per-run semantics.
    """
    chunk = max(4, max_workers * 2)
    initial_failed = store.failed_ids()
    executed_ids: Set[str] = set()
    recovered = 0
    executed = 0
    with manager:
        while True:
            completed_now = store.completed_ids()
            quarantined_now = quarantined_ids(store, quarantine_after)
            # Failures that appeared after this run started (any writer's)
            # are final for this invocation; pre-existing ones are retried.
            fresh_failures = store.failed_ids() - initial_failed
            remaining = [
                cell
                for cell in pending
                if cell.cell_id not in completed_now
                and cell.cell_id not in executed_ids
                and cell.cell_id not in quarantined_now
                and cell.cell_id not in fresh_failures
            ]
            if not remaining:
                break
            mine: List[EngineCell] = []
            for cell in remaining:
                if len(mine) >= chunk:
                    break
                if manager.acquire(cell.cell_id):
                    mine.append(cell)
            if not mine:
                # Everything left is held by live writers: wait for their
                # records (or their TTL expiry) and look again.
                time.sleep(poll_s)
                continue
            batch: List[EngineCell] = []
            for cell in mine:
                thief_victim = manager.stolen_from(cell.cell_id)
                if thief_victim is not None:
                    # A reclaimed cell was in flight on a dead writer:
                    # charge one failed attempt so repeat offenders (cells
                    # that *kill* their writers) reach quarantine.
                    store.append(
                        {
                            "cell_id": cell.cell_id,
                            "status": "error",
                            "error": (
                                "WriterCrashed: lease held by "
                                f"{thief_victim!r} expired"
                            ),
                            "crashed": True,
                            "stolen_from": thief_victim,
                        }
                    )
                    if quarantine_after:
                        failures = effective_failures(store).get(cell.cell_id, 0)
                        if failures >= quarantine_after:
                            mark_quarantined(
                                store,
                                cell.cell_id,
                                failures,
                                error="WriterCrashed: repeatedly killed its writer",
                            )
                            newly_quarantined.append(cell.cell_id)
                            manager.release(cell.cell_id)
                            continue
                batch.append(cell)
            if not batch:
                continue
            appender = _CanonicalAppender(batch, record_result, journal=journal)
            recovered += appender.fold_journal({cell.cell_id for cell in batch})
            executed += _execute_batch(
                batch,
                store,
                appender,
                policy,
                max_workers,
                timeout_s,
                retries,
                retry_backoff_s,
            )
            executed_ids.update(cell.cell_id for cell in batch)
    if journal is not None:
        journal.clear()
    return {"recovered": recovered, "executed": executed}


def run_cells(
    cells: Sequence[EngineCell],
    store: CellResultStore,
    max_workers: int = 1,
    on_record: Optional[Callable[[Dict[str, Any]], None]] = None,
    scheduler: SchedulerLike = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
    lease_ttl_s: Optional[float] = None,
    lease_poll_s: Optional[float] = None,
    quarantine_after: Optional[int] = None,
    warm_start: bool = True,
) -> EngineSummary:
    """Execute every cell not already completed in *store*.

    Duplicate ids are executed once; completed ids are skipped; failed ids
    are retried.  *scheduler* (``"matrix"``, ``"cost"``, or a
    :class:`~repro.campaign.schedule.Scheduler` instance) picks the pool
    *submission* order of the pending cells; records always land in the
    store in canonical matrix order, so the resulting store is scheduler-
    and worker-count-independent.  Serial execution (``max_workers == 1``,
    or pool leftovers) runs in canonical order directly — cost scheduling
    only helps a pool drain, and canonical serial order keeps every record
    durable the moment its cell completes.

    *timeout_s* / *retries* / *retry_backoff_s* opt each cell into the
    :func:`execute_cell_with_policy` timeout/retry policy: a cell that
    exceeds *timeout_s* records an ``error`` result (``timed_out: true``)
    and frees its slot, and failing cells are re-executed up to *retries*
    times with jittered exponential backoff before their error record is
    final.

    *lease_ttl_s* opts a **sharded** store into the multi-writer lease
    fabric: cells are claimed via TTL'd leases before executing, so
    concurrent writers on one store directory never execute the same cell
    twice and a dead writer's cells migrate to survivors (see
    :mod:`repro.campaign.leases`); *lease_poll_s* tunes how often a writer
    re-checks cells other writers hold.  *quarantine_after* bounds poison
    cells: a cell with that many uncleared failures across writers is
    marked quarantined and skipped until requeued (see
    :mod:`repro.campaign.quarantine`).

    *warm_start* (default on, file-backed stores only) maintains the
    :mod:`repro.campaign.warmstart` sidecars: each cell payload is handed
    the snapshot directory (under :data:`~repro.campaign.warmstart.
    WARMSTART_PAYLOAD_KEY`) so workers seed their pooled evaluator caches
    from previous runs and persist what they learn, and observed cell
    runtimes are folded into the ``costs.json`` calibration sidecar that a
    resuming ``cost`` scheduler loads.  Warm starting never changes any
    record (caches return exactly what recomputation would); it only
    removes repeated ground-truth evaluations and improves scheduling.
    """
    if max_workers < 1:
        raise CampaignError("max_workers must be at least 1")
    if timeout_s is not None and timeout_s <= 0:
        raise CampaignError("timeout_s must be positive (or None to disable)")
    if retries < 0:
        raise CampaignError("retries must be >= 0")
    if retry_backoff_s < 0:
        raise CampaignError("retry_backoff_s must be >= 0")
    if lease_ttl_s is not None and lease_ttl_s <= 0:
        raise CampaignError("lease_ttl_s must be positive (or None to disable)")
    if lease_poll_s is not None and lease_poll_s <= 0:
        raise CampaignError("lease_poll_s must be positive (or None for default)")
    if quarantine_after is not None and quarantine_after < 1:
        raise CampaignError("quarantine_after must be >= 1 (or None to disable)")
    policy = resolve_scheduler(scheduler)
    warm_dir = warmstart_dir_for(store) if warm_start else None
    costs_path = costs_path_for(store) if warm_start else None
    if costs_path is not None and hasattr(policy, "set_calibration"):
        calibration = load_costs(costs_path)
        if calibration:
            policy.set_calibration(calibration)
    cost_observations: Dict[Any, Any] = {}
    lease_manager: Optional[LeaseManager] = None
    if lease_ttl_s is not None:
        # Raises for single-writer stores, which have nothing to lease.
        lease_manager = lease_manager_for(store, lease_ttl_s)
    unique: List[EngineCell] = []
    seen: set = set()
    for cell in cells:
        if cell.cell_id in seen:
            continue
        seen.add(cell.cell_id)
        unique.append(cell)
    completed = store.completed_ids()
    quarantined_at_entry = quarantined_ids(store, quarantine_after)
    pending = [
        cell
        for cell in unique
        if cell.cell_id not in completed and cell.cell_id not in quarantined_at_entry
    ]
    if warm_dir is not None:
        # Hand every worker the snapshot directory through its payload;
        # cell functions that do not understand the key ignore it.
        pending = [
            EngineCell(
                cell_id=cell.cell_id,
                fn=cell.fn,
                payload={**cell.payload, WARMSTART_PAYLOAD_KEY: str(warm_dir)},
            )
            for cell in pending
        ]
    skipped = sum(1 for cell in unique if cell.cell_id in completed)
    quarantined_cells = sorted(
        cell.cell_id
        for cell in unique
        if cell.cell_id in quarantined_at_entry and cell.cell_id not in completed
    )
    journal = progress_journal_for(store)
    failed: List[str] = []

    def record_result(record: Dict[str, Any]) -> None:
        cell_id = str(record["cell_id"])
        # Fault site "flush": an injected crash here dies between execution
        # and durability — exactly the window the progress journal covers.
        fault_hook("flush", key=cell_id)
        store.append(record)
        if costs_path is not None and record.get("status") == "ok":
            seconds = record.get("cell_seconds")
            if isinstance(seconds, (int, float)) and not isinstance(
                seconds, bool
            ) and seconds > 0:
                group = _cost_group(record)
                total, count = cost_observations.get(group, (0.0, 0))
                cost_observations[group] = (
                    total + float(seconds) / _cell_budget(record),
                    count + 1,
                )
        if record.get("status") != "ok":
            failed.append(cell_id)
            if quarantine_after:
                failures = effective_failures(store).get(cell_id, 0)
                if failures >= quarantine_after:
                    mark_quarantined(
                        store, cell_id, failures, error=record.get("error")
                    )
                    quarantined_cells.append(cell_id)
        if lease_manager is not None:
            lease_manager.release(cell_id)
        if on_record is not None:
            on_record(record)

    if lease_manager is not None:
        poll_s = (
            lease_poll_s
            if lease_poll_s is not None
            else min(0.5, lease_manager.ttl_s / 4.0)
        )
        outcome = _run_leased(
            pending,
            store,
            lease_manager,
            policy,
            record_result,
            journal,
            max_workers,
            timeout_s,
            retries,
            retry_backoff_s,
            quarantine_after,
            poll_s,
            quarantined_cells,
        )
        recovered = outcome["recovered"]
        executed = outcome["executed"]
    else:
        appender = _CanonicalAppender(pending, record_result, journal=journal)
        recovered = appender.fold_journal({cell.cell_id for cell in pending})
        executed = _execute_batch(
            pending,
            store,
            appender,
            policy,
            max_workers,
            timeout_s,
            retries,
            retry_backoff_s,
        )
        if journal is not None and appender.drained:
            journal.clear()
    if costs_path is not None and cost_observations:
        merge_costs(costs_path, cost_observations)
    return EngineSummary(
        total=len(unique),
        skipped=skipped,
        executed=executed,
        failed=failed,
        recovered=recovered,
        quarantined=sorted(set(quarantined_cells)),
    )


# --------------------------------------------------------------------------- #
# Campaign-level wrappers
# --------------------------------------------------------------------------- #
def engine_cells(spec: CampaignSpec) -> List[EngineCell]:
    """The spec's cells wired to the standard optimize-cell worker."""
    return [
        EngineCell(cell_id=cell.cell_id, fn=OPTIMIZE_CELL_FN, payload=cell.payload())
        for cell in spec.expand()
    ]


def run_campaign(
    spec: CampaignSpec,
    store: CellResultStore,
    max_workers: int = 1,
    on_record: Optional[Callable[[Dict[str, Any]], None]] = None,
    scheduler: SchedulerLike = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
    lease_ttl_s: Optional[float] = None,
    lease_poll_s: Optional[float] = None,
    quarantine_after: Optional[int] = None,
    warm_start: bool = True,
) -> EngineSummary:
    """Run (or resume) *spec* against *store*; only missing cells execute."""
    return run_cells(
        engine_cells(spec),
        store,
        max_workers=max_workers,
        on_record=on_record,
        scheduler=scheduler,
        timeout_s=timeout_s,
        retries=retries,
        retry_backoff_s=retry_backoff_s,
        lease_ttl_s=lease_ttl_s,
        lease_poll_s=lease_poll_s,
        quarantine_after=quarantine_after,
        warm_start=warm_start,
    )


@dataclass
class CampaignStatus:
    """Progress of a spec against a store."""

    total: int
    completed: int
    failed: int
    pending_ids: List[str] = field(default_factory=list)
    #: quarantined poison cells — excluded from pending, so a campaign can
    #: reach ``done`` around them; ``repro campaign requeue`` re-arms them.
    quarantined_ids: List[str] = field(default_factory=list)

    @property
    def pending(self) -> int:
        """Number of cells still to run (includes failed cells to retry)."""
        return len(self.pending_ids)

    @property
    def quarantined(self) -> int:
        """Number of quarantined cells awaiting a requeue."""
        return len(self.quarantined_ids)

    @property
    def done(self) -> bool:
        """Whether every non-quarantined cell has a successful record."""
        return self.pending == 0


def campaign_status(
    spec: CampaignSpec,
    store: CellResultStore,
    quarantine_after: Optional[int] = None,
) -> CampaignStatus:
    """How much of *spec* the *store* already covers.

    With *quarantine_after* set, quarantine is derived from the failure
    counts (the same predicate the engine skips by); without it, cells
    whose winning record is a quarantine marker are surfaced.
    """
    ids = [cell.cell_id for cell in spec.expand()]
    completed = store.completed_ids()
    failed = store.failed_ids()
    if quarantine_after:
        quarantined = quarantined_ids(store, quarantine_after)
    else:
        quarantined = {
            str(record["cell_id"]) for record in quarantine_markers(store)
        }
    quarantined = (quarantined & set(ids)) - completed
    pending_ids = [
        cell_id
        for cell_id in ids
        if cell_id not in completed and cell_id not in quarantined
    ]
    return CampaignStatus(
        total=len(ids),
        completed=sum(1 for cell_id in ids if cell_id in completed),
        failed=sum(1 for cell_id in ids if cell_id in failed),
        pending_ids=pending_ids,
        quarantined_ids=sorted(quarantined),
    )
