"""The campaign execution engine: resumable, process-parallel cell runs.

The engine is deliberately generic: a cell is just a deterministic id, a
fully-qualified worker function (``"package.module:function"``), and a
picklable payload.  :func:`run_cells` skips every cell whose id already has
a successful record in the result store (single-file
:class:`~repro.campaign.store.ResultStore` or sharded
:class:`~repro.campaign.shards.ShardedResultStore`), hands the remainder to
a pluggable :class:`~repro.campaign.schedule.Scheduler` for submission
ordering, runs them — across a process pool when asked — and appends each
outcome as it lands, so a killed run resumes by executing only the missing
cells.

Records are appended in **canonical matrix order** regardless of the
scheduler's submission order or which worker finishes first, and each cell
derives all of its randomness from its own id and seed (via non-consuming
:func:`repro.utils.rng.spawn_rng` streams), so single-file store contents
are identical — modulo wall-clock fields — at any worker count and under
any scheduler, and sharded runs agree on their canonical view.

On top of the generic engine, :func:`run_campaign` executes a
:class:`~repro.campaign.spec.CampaignSpec` with the standard optimize-cell
worker, and :func:`campaign_status` reports completed/failed/pending counts
for a spec against a store.  The experiment modules (Fig. 2, Fig. 5,
Table IV, the optimizer comparison, the learning curve) drive their own
cell kinds through the same engine.
"""

from __future__ import annotations

import importlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.schedule import SchedulerLike, resolve_scheduler
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CellResultStore
from repro.errors import CampaignError

#: worker function used for standard campaign optimize cells.
OPTIMIZE_CELL_FN = "repro.campaign.cells:run_optimize_cell"

#: set to "1" in pool-worker processes so cell code can detect that it is
#: already running under the engine's process pool (the nested-pool guard).
POOLED_ENV = "REPRO_CAMPAIGN_POOLED"


def in_pooled_worker() -> bool:
    """Whether this process is a campaign-engine pool worker."""
    return os.environ.get(POOLED_ENV) == "1"


@dataclass(frozen=True)
class EngineCell:
    """One schedulable unit: id + worker function + picklable payload."""

    cell_id: str
    fn: str
    payload: Dict[str, Any]


@dataclass
class EngineSummary:
    """Outcome of one :func:`run_cells` invocation."""

    total: int
    skipped: int
    executed: int
    failed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every executed cell succeeded."""
        return not self.failed


def _resolve_fn(path: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    module_name, _, func_name = path.partition(":")
    if not module_name or not func_name:
        raise CampaignError(f"cell fn must be 'module:function', got {path!r}")
    module = importlib.import_module(module_name)
    fn = getattr(module, func_name, None)
    if not callable(fn):
        raise CampaignError(f"cell fn {path!r} does not resolve to a callable")
    return fn


def execute_cell(cell_id: str, fn_path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell (in whatever process this is) and return its record.

    Worker exceptions become ``status: "error"`` records rather than
    propagating, so one bad cell never aborts the rest of a campaign.
    """
    # repro-lint: ignore[D4] -- this IS the timing plumbing: the elapsed
    # time lands in "cell_seconds", a TIMING_FIELDS member every comparison
    # strips; Timer is not importable in spawn-context pool workers before
    # _pool_worker_init runs.
    start = time.perf_counter()
    try:
        result = _resolve_fn(fn_path)(payload) or {}
        record: Dict[str, Any] = {"cell_id": cell_id, "status": "ok"}
        record.update(result)
    except Exception as exc:
        record = {
            "cell_id": cell_id,
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
        }
    record["cell_seconds"] = time.perf_counter() - start  # repro-lint: ignore[D4] -- see above
    return record


def _timeout_child(conn, cell_id: str, fn_path: str, payload: Dict[str, Any]) -> None:
    """Subprocess entry point for timeout-enforced cell execution."""
    try:
        record = execute_cell(cell_id, fn_path, payload)
    except BaseException as exc:  # execute_cell already catches Exception
        record = {
            "cell_id": cell_id,
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
        }
    try:
        conn.send(record)
    finally:
        conn.close()


def _execute_with_timeout(
    cell_id: str, fn_path: str, payload: Dict[str, Any], timeout_s: float
) -> Dict[str, Any]:
    """Run one cell in a child process, killing it after *timeout_s* seconds.

    A dedicated (spawned) child per cell is the only way to actually free a
    slot pinned by a hung worker — threads cannot be killed, and a pool
    worker stuck in C code ignores everything short of SIGKILL.  Where
    subprocesses are unavailable (sandboxes, or a daemonic pool worker that
    may not fork) the cell runs in-process and the timeout is best-effort
    unenforced — results are identical either way, only the hang protection
    is lost.
    """
    import multiprocessing

    # repro-lint: ignore[D4] -- feeds the "cell_seconds" TIMING_FIELDS
    # member (stripped by every comparison), same as execute_cell.
    start = time.perf_counter()
    try:
        # spawn, not fork: the service calls this from worker threads, and
        # forking a multi-threaded process can deadlock the child.
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_timeout_child, args=(child_conn, cell_id, fn_path, payload)
        )
        proc.start()
    # repro-lint: ignore[C3] -- spawn-unavailable platforms fall back to
    # in-process execution; the cell still runs and records its own status.
    except Exception:
        return execute_cell(cell_id, fn_path, payload)
    child_conn.close()
    try:
        if parent_conn.poll(timeout_s):
            try:
                record: Dict[str, Any] = parent_conn.recv()
            except (EOFError, OSError):
                record = {
                    "cell_id": cell_id,
                    "status": "error",
                    "error": "WorkerDied: cell worker exited without a result",
                }
        else:
            record = {
                "cell_id": cell_id,
                "status": "error",
                "error": f"TimeoutError: cell exceeded timeout_s={timeout_s}",
                "timed_out": True,
            }
    finally:
        if proc.is_alive():
            proc.terminate()
            proc.join(5.0)
            if proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
                proc.kill()
                proc.join(5.0)
        else:
            proc.join()
        parent_conn.close()
    record.setdefault("cell_seconds", time.perf_counter() - start)  # repro-lint: ignore[D4] -- see above
    return record


def execute_cell_with_policy(
    cell_id: str,
    fn_path: str,
    payload: Dict[str, Any],
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
) -> Dict[str, Any]:
    """Run one cell under an opt-in timeout/retry policy.

    With *timeout_s* set, the cell runs in a dedicated child process that is
    terminated at the deadline, so a hung cell records an ``error`` result
    (with ``timed_out: true``) and frees its slot instead of pinning a
    worker forever.  A failing cell is re-executed up to *retries* times
    with exponential backoff (``retry_backoff_s * 2**attempt``); when any
    retry policy is active the returned record carries an ``attempts``
    count.  With the default arguments this is exactly :func:`execute_cell`.
    """
    if timeout_s is not None and timeout_s <= 0:
        raise CampaignError("timeout_s must be positive (or None to disable)")
    if retries < 0:
        raise CampaignError("retries must be >= 0")
    if retry_backoff_s < 0:
        raise CampaignError("retry_backoff_s must be >= 0")
    attempt = 0
    while True:
        if timeout_s is None:
            record = execute_cell(cell_id, fn_path, payload)
        else:
            record = _execute_with_timeout(cell_id, fn_path, payload, timeout_s)
        if record.get("status") == "ok" or attempt >= retries:
            if retries:
                record["attempts"] = attempt + 1
            return record
        backoff = retry_backoff_s * (2.0**attempt)
        if backoff > 0:
            time.sleep(backoff)
        attempt += 1


def _pool_worker_init() -> None:
    """Mark pool workers so nested-parallelism guards can trigger."""
    os.environ[POOLED_ENV] = "1"


class _CanonicalAppender:
    """Flushes completed records to the store in canonical matrix order.

    Cells may *execute* in any order (cost scheduling, pool racing); the
    store layout must not depend on that, so records are buffered until
    every earlier-in-matrix record has landed.  A crash loses the buffered
    out-of-order records, which the next run simply re-executes — under a
    cost-scheduled pool, where submission order is roughly anti-correlated
    with matrix order, that buffered region can be large (the ROADMAP's
    completion-sidecar item would make it durable too); matrix-scheduled
    and serial runs flush promptly.  A record is only dropped from the
    buffer once the store accepted it, so a failing ``append`` propagates
    without losing anything.
    """

    def __init__(
        self,
        canonical: Sequence[EngineCell],
        record_result: Callable[[Dict[str, Any]], None],
    ) -> None:
        self._order = [cell.cell_id for cell in canonical]
        self._record_result = record_result
        self._pending: Dict[str, Dict[str, Any]] = {}
        self._next = 0
        self.added: set = set()

    def add(self, record: Dict[str, Any]) -> None:
        cell_id = str(record["cell_id"])
        self.added.add(cell_id)
        self._pending[cell_id] = record
        while self._next < len(self._order):
            ready = self._pending.get(self._order[self._next])
            if ready is None:
                break
            self._record_result(ready)
            del self._pending[self._order[self._next]]
            self._next += 1

    @property
    def drained(self) -> bool:
        return self._next == len(self._order)


def _run_pool(
    scheduled: Sequence[EngineCell],
    workers: int,
    appender: _CanonicalAppender,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
) -> List[EngineCell]:
    """Execute *scheduled* on a process pool; return cells that did not land.

    Pool-level failures (no subprocess support, broken pool mid-run) are
    swallowed — the caller re-runs the leftovers serially, so results never
    depend on whether a pool was actually available.  Store failures while
    flushing a record are *not* swallowed: a store that cannot record is
    fatal to the campaign, and nothing buffered is lost on the way out.
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=workers, initializer=_pool_worker_init)
    # repro-lint: ignore[C3] -- no pool means nothing ran: every cell is
    # returned unexecuted and the caller runs them serially.
    except Exception:
        return list(scheduled)
    with pool:
        futures = []
        try:
            for cell in scheduled:
                futures.append(
                    (
                        pool.submit(
                            execute_cell_with_policy,
                            cell.cell_id,
                            cell.fn,
                            cell.payload,
                            timeout_s=timeout_s,
                            retries=retries,
                            retry_backoff_s=retry_backoff_s,
                        ),
                        cell,
                    )
                )
        # repro-lint: ignore[C3] -- submission failure is recovered, not
        # swallowed: submitted futures are still collected, the remainder
        # is re-run serially by the caller.
        except Exception:
            # Submission failed (broken/unsupported pool); whatever was
            # submitted is still collected below, the rest runs serially.
            pass
        # Collect in submission order; the appender re-serialises the
        # store layout to canonical matrix order either way.
        for future, cell in futures:
            try:
                record = future.result()
            # repro-lint: ignore[C3] -- a crashed worker leaves its cell in
            # the unexecuted remainder, which re-runs serially with per-cell
            # error recording; nothing is lost.
            except Exception:
                continue
            appender.add(record)
    return [cell for cell in scheduled if cell.cell_id not in appender.added]


def run_cells(
    cells: Sequence[EngineCell],
    store: CellResultStore,
    max_workers: int = 1,
    on_record: Optional[Callable[[Dict[str, Any]], None]] = None,
    scheduler: SchedulerLike = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
) -> EngineSummary:
    """Execute every cell not already completed in *store*.

    Duplicate ids are executed once; completed ids are skipped; failed ids
    are retried.  *scheduler* (``"matrix"``, ``"cost"``, or a
    :class:`~repro.campaign.schedule.Scheduler` instance) picks the pool
    *submission* order of the pending cells; records always land in the
    store in canonical matrix order, so the resulting store is scheduler-
    and worker-count-independent.  Serial execution (``max_workers == 1``,
    or pool leftovers) runs in canonical order directly — cost scheduling
    only helps a pool drain, and canonical serial order keeps every record
    durable the moment its cell completes.

    *timeout_s* / *retries* / *retry_backoff_s* opt each cell into the
    :func:`execute_cell_with_policy` timeout/retry policy: a cell that
    exceeds *timeout_s* records an ``error`` result (``timed_out: true``)
    and frees its slot, and failing cells are re-executed up to *retries*
    times with exponential backoff before their error record is final.
    """
    if max_workers < 1:
        raise CampaignError("max_workers must be at least 1")
    if timeout_s is not None and timeout_s <= 0:
        raise CampaignError("timeout_s must be positive (or None to disable)")
    if retries < 0:
        raise CampaignError("retries must be >= 0")
    if retry_backoff_s < 0:
        raise CampaignError("retry_backoff_s must be >= 0")
    policy = resolve_scheduler(scheduler)
    unique: List[EngineCell] = []
    seen: set = set()
    for cell in cells:
        if cell.cell_id in seen:
            continue
        seen.add(cell.cell_id)
        unique.append(cell)
    completed = store.completed_ids()
    pending = [cell for cell in unique if cell.cell_id not in completed]
    scheduled = policy.order(pending, store)
    if sorted(cell.cell_id for cell in scheduled) != sorted(
        cell.cell_id for cell in pending
    ):
        raise CampaignError(
            f"scheduler {type(policy).__name__} must return a permutation of "
            "the pending cells"
        )
    failed: List[str] = []

    def record_result(record: Dict[str, Any]) -> None:
        store.append(record)
        if record.get("status") != "ok":
            failed.append(str(record["cell_id"]))
        if on_record is not None:
            on_record(record)

    appender = _CanonicalAppender(pending, record_result)
    leftover: Sequence[EngineCell] = pending
    if max_workers > 1 and len(scheduled) > 1:
        pooled_leftover = _run_pool(
            scheduled,
            min(max_workers, len(scheduled)),
            appender,
            timeout_s=timeout_s,
            retries=retries,
            retry_backoff_s=retry_backoff_s,
        )
        leftover_ids = {cell.cell_id for cell in pooled_leftover}
        # Serial fallback keeps canonical order so appends stay prompt.
        leftover = [cell for cell in pending if cell.cell_id in leftover_ids]
    for cell in leftover:
        appender.add(
            execute_cell_with_policy(
                cell.cell_id,
                cell.fn,
                cell.payload,
                timeout_s=timeout_s,
                retries=retries,
                retry_backoff_s=retry_backoff_s,
            )
        )
    if pending and not appender.drained:
        raise CampaignError("engine bug: not every pending cell produced a record")
    return EngineSummary(
        total=len(unique),
        skipped=len(unique) - len(pending),
        executed=len(pending),
        failed=failed,
    )


# --------------------------------------------------------------------------- #
# Campaign-level wrappers
# --------------------------------------------------------------------------- #
def engine_cells(spec: CampaignSpec) -> List[EngineCell]:
    """The spec's cells wired to the standard optimize-cell worker."""
    return [
        EngineCell(cell_id=cell.cell_id, fn=OPTIMIZE_CELL_FN, payload=cell.payload())
        for cell in spec.expand()
    ]


def run_campaign(
    spec: CampaignSpec,
    store: CellResultStore,
    max_workers: int = 1,
    on_record: Optional[Callable[[Dict[str, Any]], None]] = None,
    scheduler: SchedulerLike = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    retry_backoff_s: float = 0.05,
) -> EngineSummary:
    """Run (or resume) *spec* against *store*; only missing cells execute."""
    return run_cells(
        engine_cells(spec),
        store,
        max_workers=max_workers,
        on_record=on_record,
        scheduler=scheduler,
        timeout_s=timeout_s,
        retries=retries,
        retry_backoff_s=retry_backoff_s,
    )


@dataclass
class CampaignStatus:
    """Progress of a spec against a store."""

    total: int
    completed: int
    failed: int
    pending_ids: List[str] = field(default_factory=list)

    @property
    def pending(self) -> int:
        """Number of cells still to run (includes failed cells to retry)."""
        return len(self.pending_ids)

    @property
    def done(self) -> bool:
        """Whether every cell of the spec has a successful record."""
        return self.pending == 0


def campaign_status(spec: CampaignSpec, store: CellResultStore) -> CampaignStatus:
    """How much of *spec* the *store* already covers."""
    ids = [cell.cell_id for cell in spec.expand()]
    completed = store.completed_ids()
    failed = store.failed_ids()
    pending_ids = [cell_id for cell_id in ids if cell_id not in completed]
    return CampaignStatus(
        total=len(ids),
        completed=len(ids) - len(pending_ids),
        failed=sum(1 for cell_id in ids if cell_id in failed),
        pending_ids=pending_ids,
    )
